#![warn(missing_docs)]
//! Alerting service (S21 in `DESIGN.md`).
//!
//! CEEMS turns its attributed power/energy series into operator alerts:
//! "project over its energy budget", "emission-factor feed down", "node
//! drawing anomalous power", "replica falling behind on WAL replay". This
//! crate reproduces that last mile as a self-contained service in the
//! Prometheus Alertmanager mold, adapted to the simulated stack:
//!
//! * [`rules`] — alert rules are PromQL expressions over the TSDB
//!   (comparisons like `sum by(uuid)(uuid:ceems_power:watts) > 900` yield
//!   the violating series) with `for:` hold durations, static labels and
//!   annotation templates. Rules compile into a dependency-leveled DAG
//!   with the same static analysis the S3 recording-rule engine uses, so
//!   meta-alerts over the synthetic `ALERTS` series evaluate after the
//!   alerts they read.
//! * [`query`] — rule expressions evaluate either in-process against the
//!   hot TSDB or over HTTP against the qfe/replica read path, behind the
//!   S19 retry/circuit-breaker discipline.
//! * [`state`] — alert lifecycle (pending → firing → resolved) persisted
//!   in `ceems-relstore`, so a restart mid-incident neither re-fires nor
//!   forgets active alerts.
//! * [`pipeline`] — label-fingerprint dedup, `group_by` grouping with
//!   `group_wait`/`group_interval`/`repeat_interval`, matcher-based
//!   silences with expiry, and a routing tree mapping alerts to sinks.
//! * [`sink`] — webhook and structured-log notification sinks; webhook
//!   deliveries retry with backoff and honor `Retry-After`.
//! * [`service`] — ties it together: [`service::AlertService::tick`]
//!   drives evaluation off the simulated clock, `/metrics` exposes S17
//!   instruments, and a small HTTP API lists alerts and manages silences.

pub mod packs;
pub mod pipeline;
pub mod query;
pub mod rules;
pub mod service;
pub mod sink;
pub mod state;

pub use pipeline::{Route, RoutingTree};
pub use query::{HttpQuerySource, LocalQuerySource, QuerySource, UrlResolver};
pub use rules::{AlertRule, RuleSet, ALERTS_METRIC};
pub use service::{AlertConfig, AlertService, TickStats};
pub use sink::{LogSink, Notification, NotificationSink, SinkError, WebhookSink};
pub use state::{AlertInstance, AlertState, Silence};
