//! Built-in rule packs over the stack's own signals.
//!
//! Each pack is one rule over series the stack already produces — the S3
//! attribution records, the emissions exporter's staleness gauge, or the
//! LB's replica health gauges (the latter two must be scraped into the
//! TSDB the alert source queries).

use crate::rules::AlertRule;

/// Per-project energy budget: fires per `uuid` whose attributed power
/// (summed over the nodes it runs on) exceeds `budget_watts`.
pub fn energy_budget(budget_watts: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "ProjectEnergyBudgetExceeded",
        &format!("sum by(uuid) (uuid:ceems_power:watts) > {budget_watts}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "energy_budget")
    .with_annotation(
        "summary",
        "project {{ $labels.uuid }} draws {{ $value }} W, over its energy budget",
    )
}

/// Emission-factor source down: fires per zone whose factor age exceeds
/// `max_age_s` seconds — the provider chain has been serving retained
/// (last-known-good) values for that long.
pub fn emission_factor_stale(max_age_s: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "EmissionFactorSourceDown",
        &format!("ceems_emissions_factor_age_seconds > {max_age_s}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "emission_factor")
    .with_annotation(
        "summary",
        "emission factors for {{ $labels.country_code }} are {{ $value }} s stale",
    )
}

/// Node power anomaly: fires per node whose total attributed power
/// exceeds `max_watts`.
pub fn node_power_anomaly(max_watts: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "NodePowerAnomaly",
        &format!("instance:ceems_total:watts > {max_watts}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "critical")
    .with_label("pack", "node_power")
    .with_annotation(
        "summary",
        "node {{ $labels.instance }} draws {{ $value }} W",
    )
}

/// Replica WAL lag: fires per LB backend lagging more than `max_records`
/// WAL records behind the freshest replica.
pub fn replica_wal_lag(max_records: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "ReplicaWalLagHigh",
        &format!("ceems_lb_backend_wal_lag_records > {max_records}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "replica_lag")
    .with_annotation(
        "summary",
        "replica {{ $labels.backend }} lags {{ $value }} WAL records",
    )
}

/// Meta-monitoring (S22): a stack component stopped answering its own
/// `/metrics` self-scrape — `ceems_meta_up` (written per target by the
/// meta-monitor into the `__ceems_meta__` tenant) dropped to zero.
pub fn component_down(for_ms: i64) -> AlertRule {
    AlertRule::new("ComponentDown", "ceems_meta_up == 0", for_ms)
        .expect("built-in rule must parse")
        .with_label("severity", "critical")
        .with_label("pack", "meta")
        .with_annotation(
            "summary",
            "component {{ $labels.component }} ({{ $labels.instance }}) is not answering its metrics scrape",
        )
}

/// Meta-monitoring (S22): a component's self-scrape data has gone stale —
/// the last successful scrape is more than `max_age_s` seconds old even
/// though meta passes keep running.
pub fn meta_scrape_stale(max_age_s: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "MetaScrapeStale",
        &format!("ceems_meta_scrape_staleness_seconds > {max_age_s}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "meta")
    .with_annotation(
        "summary",
        "self-scrape of {{ $labels.component }} ({{ $labels.instance }}) is {{ $value }} s stale",
    )
}

/// Meta-monitoring (S22): circuit breakers at the LB are opening in a
/// storm — more than `max_opens` opens over the last five minutes of
/// self-scraped LB telemetry.
pub fn breaker_open_storm(max_opens: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "BreakerOpenStorm",
        &format!(
            "sum by(backend) (increase(ceems_lb_breaker_events_total{{event=\"open\"}}[5m])) > {max_opens}"
        ),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "critical")
    .with_label("pack", "meta")
    .with_annotation(
        "summary",
        "backend {{ $labels.backend }} breaker opened {{ $value }} times in 5m",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    #[test]
    fn packs_parse_and_level_flat() {
        let set = RuleSet::compile(vec![
            energy_budget(900.0, 60_000),
            emission_factor_stale(600.0, 0),
            node_power_anomaly(1200.0, 30_000),
            replica_wal_lag(100.0, 0),
            component_down(0),
            meta_scrape_stale(90.0, 0),
            breaker_open_storm(3.0, 0),
        ]);
        // None of the packs read ALERTS: a single level, seven rules.
        assert_eq!(set.depth(), 1);
        assert_eq!(set.levels[0].len(), 7);
        for i in 0..7 {
            assert!(!set.is_meta(i));
        }
    }

    #[test]
    fn thresholds_land_in_the_expression() {
        let r = energy_budget(512.0, 0);
        assert!(r.expr_src.contains("> 512"));
        assert_eq!(r.name, "ProjectEnergyBudgetExceeded");
        assert!(r.labels.iter().any(|(k, v)| k == "severity" && v == "warning"));
    }
}
