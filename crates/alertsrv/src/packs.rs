//! Built-in rule packs over the stack's own signals.
//!
//! Each pack is one rule over series the stack already produces — the S3
//! attribution records, the emissions exporter's staleness gauge, or the
//! LB's replica health gauges (the latter two must be scraped into the
//! TSDB the alert source queries).

use crate::rules::AlertRule;

/// Per-project energy budget: fires per `uuid` whose attributed power
/// (summed over the nodes it runs on) exceeds `budget_watts`.
pub fn energy_budget(budget_watts: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "ProjectEnergyBudgetExceeded",
        &format!("sum by(uuid) (uuid:ceems_power:watts) > {budget_watts}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "energy_budget")
    .with_annotation(
        "summary",
        "project {{ $labels.uuid }} draws {{ $value }} W, over its energy budget",
    )
}

/// Emission-factor source down: fires per zone whose factor age exceeds
/// `max_age_s` seconds — the provider chain has been serving retained
/// (last-known-good) values for that long.
pub fn emission_factor_stale(max_age_s: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "EmissionFactorSourceDown",
        &format!("ceems_emissions_factor_age_seconds > {max_age_s}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "emission_factor")
    .with_annotation(
        "summary",
        "emission factors for {{ $labels.country_code }} are {{ $value }} s stale",
    )
}

/// Node power anomaly: fires per node whose total attributed power
/// exceeds `max_watts`.
pub fn node_power_anomaly(max_watts: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "NodePowerAnomaly",
        &format!("instance:ceems_total:watts > {max_watts}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "critical")
    .with_label("pack", "node_power")
    .with_annotation(
        "summary",
        "node {{ $labels.instance }} draws {{ $value }} W",
    )
}

/// Replica WAL lag: fires per LB backend lagging more than `max_records`
/// WAL records behind the freshest replica.
pub fn replica_wal_lag(max_records: f64, for_ms: i64) -> AlertRule {
    AlertRule::new(
        "ReplicaWalLagHigh",
        &format!("ceems_lb_backend_wal_lag_records > {max_records}"),
        for_ms,
    )
    .expect("built-in rule must parse")
    .with_label("severity", "warning")
    .with_label("pack", "replica_lag")
    .with_annotation(
        "summary",
        "replica {{ $labels.backend }} lags {{ $value }} WAL records",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    #[test]
    fn packs_parse_and_level_flat() {
        let set = RuleSet::compile(vec![
            energy_budget(900.0, 60_000),
            emission_factor_stale(600.0, 0),
            node_power_anomaly(1200.0, 30_000),
            replica_wal_lag(100.0, 0),
        ]);
        // None of the packs read ALERTS: a single level, four rules.
        assert_eq!(set.depth(), 1);
        assert_eq!(set.levels[0].len(), 4);
        for i in 0..4 {
            assert!(!set.is_meta(i));
        }
    }

    #[test]
    fn thresholds_land_in_the_expression() {
        let r = energy_budget(512.0, 0);
        assert!(r.expr_src.contains("> 512"));
        assert_eq!(r.name, "ProjectEnergyBudgetExceeded");
        assert!(r.labels.iter().any(|(k, v)| k == "severity" && v == "warning"));
    }
}
