//! Notification routing and grouping.
//!
//! Alerts flow: dedup (label fingerprint) → silence filter → routing tree
//! (first matching route wins) → grouping (`group_by` labels) →
//! timed delivery (`group_wait` / `group_interval` / `repeat_interval`,
//! applied by the service). This module owns the routing/grouping half;
//! the timers live with the service's durable group state.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::LabelMatcher;

/// One route: matchers that claim alerts, the sink they go to, and an
/// optional `group_by` override.
#[derive(Clone, Debug)]
pub struct Route {
    /// Route name (prefixes group keys, so per-route groups never merge).
    pub name: String,
    /// An alert takes this route when every matcher matches.
    pub matchers: Vec<LabelMatcher>,
    /// Sink name deliveries go to.
    pub sink: String,
    /// Override of the tree-level `group_by` labels.
    pub group_by: Option<Vec<String>>,
}

/// The routing tree: ordered routes with a default fallback.
#[derive(Clone, Debug)]
pub struct RoutingTree {
    /// Routes, tried in order; first match wins.
    pub routes: Vec<Route>,
    /// Sink for alerts no route claims.
    pub default_sink: String,
    /// Labels notifications group by (default: `alertname`).
    pub group_by: Vec<String>,
}

impl RoutingTree {
    /// A tree with no routes: everything goes to `default_sink`, grouped
    /// by `alertname`.
    pub fn new(default_sink: impl Into<String>) -> RoutingTree {
        RoutingTree {
            routes: Vec::new(),
            default_sink: default_sink.into(),
            group_by: vec!["alertname".to_string()],
        }
    }

    /// Appends a route.
    pub fn with_route(mut self, route: Route) -> RoutingTree {
        self.routes.push(route);
        self
    }

    /// Replaces the tree-level `group_by` labels.
    pub fn with_group_by(mut self, labels: Vec<String>) -> RoutingTree {
        self.group_by = labels;
        self
    }

    /// Resolves an alert's route: `(route_name, sink, group_by)`.
    pub fn route_for(&self, labels: &LabelSet) -> (&str, &str, &[String]) {
        for r in &self.routes {
            if r.matchers.iter().all(|m| m.matches(labels)) {
                return (
                    r.name.as_str(),
                    r.sink.as_str(),
                    r.group_by.as_deref().unwrap_or(&self.group_by),
                );
            }
        }
        ("default", self.default_sink.as_str(), &self.group_by)
    }

    /// The group key for an alert on a route: route name plus the sorted
    /// `group_by` label values. Stable across runs and restarts.
    pub fn group_key(route: &str, labels: &LabelSet, group_by: &[String]) -> String {
        let restricted = labels.restrict_to(group_by);
        let mut pairs: Vec<(&str, &str)> = restricted.iter().collect();
        pairs.sort();
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        format!("{route}:{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    #[test]
    fn first_matching_route_wins() {
        let tree = RoutingTree::new("log")
            .with_route(Route {
                name: "pages".into(),
                matchers: vec![LabelMatcher::eq("severity", "critical")],
                sink: "webhook".into(),
                group_by: Some(vec!["alertname".into(), "nodegroup".into()]),
            })
            .with_route(Route {
                name: "tickets".into(),
                matchers: vec![LabelMatcher::eq("severity", "warning")],
                sink: "log".into(),
                group_by: None,
            });

        let crit = labels! {"alertname" => "A", "severity" => "critical", "nodegroup" => "gpu"};
        let (route, sink, group_by) = tree.route_for(&crit);
        assert_eq!((route, sink), ("pages", "webhook"));
        assert_eq!(group_by, &["alertname".to_string(), "nodegroup".to_string()]);

        let warn = labels! {"alertname" => "A", "severity" => "warning"};
        assert_eq!(tree.route_for(&warn).0, "tickets");

        let other = labels! {"alertname" => "A"};
        let (route, sink, _) = tree.route_for(&other);
        assert_eq!((route, sink), ("default", "log"));
    }

    #[test]
    fn group_keys_are_stable_and_scoped() {
        let a = labels! {"alertname" => "X", "instance" => "n1", "uuid" => "u1"};
        let b = labels! {"alertname" => "X", "instance" => "n2", "uuid" => "u2"};
        let by = vec!["alertname".to_string()];
        // Same alertname → same group regardless of other labels.
        assert_eq!(
            RoutingTree::group_key("default", &a, &by),
            RoutingTree::group_key("default", &b, &by)
        );
        // Different routes never share groups.
        assert_ne!(
            RoutingTree::group_key("default", &a, &by),
            RoutingTree::group_key("pages", &a, &by)
        );
        // Finer group_by splits.
        let fine = vec!["alertname".to_string(), "instance".to_string()];
        assert_ne!(
            RoutingTree::group_key("default", &a, &fine),
            RoutingTree::group_key("default", &b, &fine)
        );
    }
}
