//! Where alert-rule expressions get their data.
//!
//! Mirrors the qfe `Downstream` split: an in-process source over the hot
//! TSDB for the embedded stack, and an HTTP source for running the
//! alerting service against the qfe/LB read path — pooled keep-alive
//! client, retries, and a circuit breaker so a dead read path degrades to
//! "evaluation errors" instead of a stalled tick.

use std::sync::Arc;

use ceems_http::client::Client;
use ceems_http::resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};
use ceems_http::url::encode_component;
use ceems_metrics::labels::LabelSet;
use ceems_obs::{trace, TRACE_HEADER};
use ceems_tsdb::promql::{instant_query_with_lookback, Expr, Value};
use ceems_tsdb::Tsdb;

/// A source of instant-query results for rule evaluation.
pub trait QuerySource: Send + Sync {
    /// Source name, for logs and metrics.
    fn name(&self) -> &'static str;

    /// Evaluates an expression at `now_ms`, returning the result vector.
    /// Scalar results become a single sample with empty labels.
    fn query(&self, expr_src: &str, expr: &Expr, now_ms: i64) -> Result<Vec<(LabelSet, f64)>, String>;
}

/// Converts an evaluation [`Value`] into the alert result vector.
pub(crate) fn value_to_vector(v: Value) -> Result<Vec<(LabelSet, f64)>, String> {
    match v {
        Value::Vector(v) => Ok(v),
        Value::Scalar(x) => Ok(vec![(LabelSet::empty(), x)]),
        Value::Matrix(_) => Err("alert expression returned a range vector; \
             wrap it in a *_over_time or rate function"
            .into()),
    }
}

/// Evaluates in-process against a [`Tsdb`] — what the embedded stack uses.
pub struct LocalQuerySource {
    db: Arc<Tsdb>,
    lookback_ms: i64,
}

impl LocalQuerySource {
    /// A source over `db` with the given instant-selector lookback.
    /// Like the recording-rule engine, alerting wants a tight lookback so
    /// series that stopped being written resolve promptly.
    pub fn new(db: Arc<Tsdb>, lookback_ms: i64) -> LocalQuerySource {
        LocalQuerySource { db, lookback_ms }
    }
}

impl QuerySource for LocalQuerySource {
    fn name(&self) -> &'static str {
        "local"
    }

    fn query(
        &self,
        _expr_src: &str,
        expr: &Expr,
        now_ms: i64,
    ) -> Result<Vec<(LabelSet, f64)>, String> {
        let v = instant_query_with_lookback(self.db.as_ref(), expr, now_ms, self.lookback_ms)
            .map_err(|e| e.to_string())?;
        value_to_vector(v)
    }
}

/// Resolves the query endpoint per request — e.g. following a failover
/// routing table so evaluation re-targets the new leader without rebuilding
/// the source. `None` means "no endpoint known right now".
pub type UrlResolver = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Evaluates over HTTP against a Prometheus-compatible `/api/v1/query`
/// endpoint (the TSDB API, the LB, or the query frontend).
pub struct HttpQuerySource {
    base_url: String,
    resolver: Option<UrlResolver>,
    client: Client,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
}

impl HttpQuerySource {
    /// A source against `base_url` (e.g. `http://127.0.0.1:9090`) with
    /// default retry (2 attempts) and breaker settings.
    pub fn new(base_url: impl Into<String>) -> HttpQuerySource {
        HttpQuerySource {
            base_url: base_url.into(),
            resolver: None,
            client: Client::new(),
            retry: RetryPolicy::new(2),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
        }
    }

    /// Resolves the endpoint per query instead of pinning `base_url` — the
    /// S24 failover hook: hand it the replication group's routing table and
    /// rule evaluation follows the elected leader. A `None` resolution
    /// falls back to the pinned `base_url`.
    pub fn with_resolver(mut self, resolver: UrlResolver) -> HttpQuerySource {
        self.resolver = Some(resolver);
        self
    }

    /// Replaces the HTTP client (pool size, timeout, fault plan).
    pub fn with_client(mut self, client: Client) -> HttpQuerySource {
        self.client = client;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> HttpQuerySource {
        self.retry = retry;
        self
    }

    /// Replaces the circuit breaker.
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> HttpQuerySource {
        self.breaker = breaker;
        self
    }

    /// Breaker state, for tests and introspection.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }
}

impl QuerySource for HttpQuerySource {
    fn name(&self) -> &'static str {
        "http"
    }

    fn query(
        &self,
        expr_src: &str,
        _expr: &Expr,
        now_ms: i64,
    ) -> Result<Vec<(LabelSet, f64)>, String> {
        if !self.breaker.try_acquire() {
            return Err("read path circuit breaker is open".into());
        }
        let base = self
            .resolver
            .as_ref()
            .and_then(|r| r())
            .unwrap_or_else(|| self.base_url.clone());
        let url = format!(
            "{}/api/v1/query?query={}&time={}",
            base,
            encode_component(expr_src),
            now_ms as f64 / 1000.0,
        );
        // Propagate the tick's trace id so the TSDB's per-stage breakdown
        // joins up with the alert_eval stage.
        let client = match trace::current() {
            Some(t) => self.client.clone().with_header(TRACE_HEADER, t.id()),
            None => self.client.clone(),
        };
        let result = self.retry.run(|_attempt| {
            let resp = client.get(&url).map_err(|e| e.to_string())?;
            if !resp.status.is_success() {
                return Err(format!(
                    "query endpoint returned {}: {}",
                    resp.status.0,
                    resp.body_string().chars().take(200).collect::<String>()
                ));
            }
            Ok(resp)
        });
        let resp = match result {
            Ok(r) => {
                self.breaker.on_success();
                r
            }
            Err(e) => {
                self.breaker.on_failure();
                return Err(e);
            }
        };
        parse_query_envelope(&resp.body)
    }
}

/// Parses the Prometheus instant-query JSON envelope into a result vector.
fn parse_query_envelope(body: &[u8]) -> Result<Vec<(LabelSet, f64)>, String> {
    let v: serde_json::Value =
        serde_json::from_slice(body).map_err(|e| format!("bad query response JSON: {e}"))?;
    if v["status"] != "success" {
        return Err(format!(
            "query failed: {}",
            v["error"].as_str().unwrap_or("unknown error")
        ));
    }
    let data = &v["data"];
    match data["resultType"].as_str() {
        Some("vector") => {
            let mut out = Vec::new();
            for item in data["result"].as_array().into_iter().flatten() {
                let mut pairs: Vec<(String, String)> = Vec::new();
                if let Some(metric) = item["metric"].as_object() {
                    for (k, val) in metric {
                        if let Some(s) = val.as_str() {
                            pairs.push((k.clone(), s.to_string()));
                        }
                    }
                }
                let value = item["value"][1]
                    .as_str()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or("missing sample value in query response")?;
                out.push((LabelSet::from_pairs(pairs), value));
            }
            Ok(out)
        }
        Some("scalar") => {
            let value = data["result"][1]
                .as_str()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or("missing scalar value in query response")?;
            Ok(vec![(LabelSet::empty(), value)])
        }
        other => Err(format!(
            "unsupported resultType {other:?} for alert evaluation"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_tsdb::promql::parse_expr;

    #[test]
    fn local_source_filters_with_comparisons() {
        let db = Arc::new(Tsdb::default());
        db.append(&labels! {"__name__" => "watts", "instance" => "n1"}, 1_000, 100.0);
        db.append(&labels! {"__name__" => "watts", "instance" => "n2"}, 1_000, 900.0);
        let src = LocalQuerySource::new(db, 60_000);
        let expr = parse_expr("watts > 500").unwrap();
        let v = src.query("watts > 500", &expr, 2_000).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("instance"), Some("n2"));
        assert_eq!(v[0].1, 900.0);
    }

    #[test]
    fn http_source_follows_a_url_resolver() {
        use ceems_http::{HttpServer, ServerConfig};
        use ceems_tsdb::httpapi::api_router;
        use parking_lot::Mutex;

        let serve = |value: f64| {
            let db = Arc::new(Tsdb::default());
            db.append(&labels! {"__name__" => "watts", "instance" => "n1"}, 1_000, value);
            HttpServer::serve(ServerConfig::ephemeral(), api_router(db, Arc::new(|| 2_000)))
                .unwrap()
        };
        let old_leader = serve(100.0);
        let new_leader = serve(200.0);

        let target = Arc::new(Mutex::new(old_leader.base_url()));
        let t = target.clone();
        let src = HttpQuerySource::new("http://127.0.0.1:1")
            .with_resolver(Arc::new(move || Some(t.lock().clone())));
        let expr = parse_expr("watts").unwrap();
        let v = src.query("watts", &expr, 2_000).unwrap();
        assert_eq!(v[0].1, 100.0);

        // Failover: the routing table now points at the new leader; the
        // same source follows it without being rebuilt.
        *target.lock() = new_leader.base_url();
        let v = src.query("watts", &expr, 2_000).unwrap();
        assert_eq!(v[0].1, 200.0);
        old_leader.shutdown();
        new_leader.shutdown();
    }

    #[test]
    fn envelope_parses_vector_and_scalar() {
        let body = br#"{"status":"success","data":{"resultType":"vector","result":[
            {"metric":{"instance":"n1"},"value":[12.5,"300"]}]}}"#;
        let v = parse_query_envelope(body).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("instance"), Some("n1"));
        assert_eq!(v[0].1, 300.0);

        let body = br#"{"status":"success","data":{"resultType":"scalar","result":[12.5,"7"]}}"#;
        let v = parse_query_envelope(body).unwrap();
        assert_eq!(v[0].1, 7.0);

        assert!(parse_query_envelope(br#"{"status":"error","error":"boom"}"#).is_err());
        assert!(parse_query_envelope(b"not json").is_err());
        let matrix = br#"{"status":"success","data":{"resultType":"matrix","result":[]}}"#;
        assert!(parse_query_envelope(matrix).is_err());
    }
}
