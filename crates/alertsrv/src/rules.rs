//! Alert rules and their dependency-leveled evaluation DAG.
//!
//! An alert rule is a PromQL expression whose result vector is the set of
//! currently violating series — comparisons (`expr > threshold`) filter a
//! signal down to exactly that set. Each violating series becomes one
//! alert, labeled with the series labels plus `alertname` and the rule's
//! static labels.
//!
//! Rules form a DAG: a rule may read the synthetic [`ALERTS_METRIC`]
//! series that earlier rules produce (meta-alerts like "three or more
//! nodes firing power anomalies"). The DAG is leveled with
//! [`ceems_tsdb::rules::dependency_levels_by`] — the same static analysis
//! the S3 recording-rule engine uses — so every rule evaluates after the
//! rules it reads.

use ceems_metrics::labels::LabelSet;
use ceems_tsdb::promql::{parse_expr, Expr};
use ceems_tsdb::rules::{dependency_levels_by, referenced_names};

/// Name of the synthetic series alert rules produce and meta-rules read.
/// Mirrors Prometheus: one `ALERTS{alertname=..., alertstate=...}` sample
/// per active alert per evaluation.
pub const ALERTS_METRIC: &str = "ALERTS";

/// One alert rule.
#[derive(Clone, Debug)]
pub struct AlertRule {
    /// Alert name (`alertname` label on every alert it raises).
    pub name: String,
    /// Source form of the expression (sent verbatim to remote query
    /// sources).
    pub expr_src: String,
    /// Parsed expression (evaluated directly by local sources).
    pub expr: Expr,
    /// How long a series must stay violating before the alert transitions
    /// from pending to firing. `0` fires immediately.
    pub for_ms: i64,
    /// Static labels stamped on every alert from this rule (e.g.
    /// `severity`). Routing and silencing match on these.
    pub labels: Vec<(String, String)>,
    /// Annotations; values are templates over `{{ $labels.x }}` and
    /// `{{ $value }}`, rendered per alert.
    pub annotations: Vec<(String, String)>,
}

impl AlertRule {
    /// Parses `expr` and builds a rule. Fails on invalid PromQL or an
    /// empty name.
    pub fn new(name: impl Into<String>, expr: &str, for_ms: i64) -> Result<AlertRule, String> {
        let name = name.into();
        if name.is_empty() {
            return Err("alert rule needs a name".into());
        }
        if for_ms < 0 {
            return Err(format!("alert rule {name:?}: negative for duration"));
        }
        let parsed = parse_expr(expr).map_err(|e| format!("alert rule {name:?}: {e}"))?;
        Ok(AlertRule {
            name,
            expr_src: expr.to_string(),
            expr: parsed,
            for_ms,
            labels: Vec::new(),
            annotations: Vec::new(),
        })
    }

    /// Adds a static label.
    pub fn with_label(mut self, name: impl Into<String>, value: impl Into<String>) -> AlertRule {
        self.labels.push((name.into(), value.into()));
        self
    }

    /// Adds an annotation template.
    pub fn with_annotation(
        mut self,
        name: impl Into<String>,
        template: impl Into<String>,
    ) -> AlertRule {
        self.annotations.push((name.into(), template.into()));
        self
    }
}

/// A compiled set of alert rules: the rules plus their evaluation levels.
#[derive(Clone, Debug)]
pub struct RuleSet {
    /// The rules, in declaration order.
    pub rules: Vec<AlertRule>,
    /// Indices into `rules`, leveled so level `k` only reads what levels
    /// `< k` produced. Rules within a level are independent.
    pub levels: Vec<Vec<usize>>,
    /// Whether each rule reads the `ALERTS` series (evaluated against the
    /// service's local alert-state store rather than the query source).
    meta: Vec<bool>,
}

impl RuleSet {
    /// Levels the rules into an evaluation DAG.
    ///
    /// Every alert rule conceptually produces `ALERTS`, so a rule whose
    /// expression reads `ALERTS` is ordered after every earlier rule;
    /// rules with statically unknowable read sets (nameless or regex
    /// selectors) are conservatively ordered after everything too, exactly
    /// like the recording-rule engine.
    pub fn compile(rules: Vec<AlertRule>) -> RuleSet {
        let produces: Vec<Option<&str>> = rules.iter().map(|_| Some(ALERTS_METRIC)).collect();
        let mut meta = Vec::with_capacity(rules.len());
        let reads: Vec<Option<Vec<String>>> = rules
            .iter()
            .map(|r| {
                let mut names = Vec::new();
                let known = referenced_names(&r.expr, &mut names);
                meta.push(names.iter().any(|n| n == ALERTS_METRIC));
                if known {
                    Some(names)
                } else {
                    None
                }
            })
            .collect();
        let levels = dependency_levels_by(&produces, &reads);
        RuleSet {
            rules,
            levels,
            meta,
        }
    }

    /// Number of DAG levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Whether rule `i` reads the `ALERTS` series. Meta-rules may only
    /// reference `ALERTS`; other selectors in the same expression resolve
    /// against the alert-state store and come back empty.
    pub fn is_meta(&self, i: usize) -> bool {
        self.meta[i]
    }
}

/// Renders an annotation template: `{{ $labels.name }}` substitutes the
/// alert's label, `{{ $value }}` the violating sample value. Unknown
/// placeholders render empty; text outside `{{ }}` passes through.
pub fn render_template(template: &str, labels: &LabelSet, value: f64) -> String {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let Some(end) = after.find("}}") else {
            // Unterminated placeholder: emit verbatim.
            out.push_str(&rest[start..]);
            return out;
        };
        let inner = after[..end].trim();
        if inner == "$value" {
            // Shortest round-trip form, like the normalizer renders
            // numbers, so traces stay byte-stable across runs.
            out.push_str(&format!("{value:?}"));
        } else if let Some(name) = inner.strip_prefix("$labels.") {
            if let Some(v) = labels.get(name.trim()) {
                out.push_str(v);
            }
        }
        rest = &after[end + 2..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    #[test]
    fn rule_parses_and_carries_metadata() {
        let r = AlertRule::new("HighPower", "instance:ceems_total:watts > 500", 60_000)
            .unwrap()
            .with_label("severity", "warning")
            .with_annotation("summary", "{{ $labels.instance }} at {{ $value }} W");
        assert_eq!(r.name, "HighPower");
        assert_eq!(r.for_ms, 60_000);
        assert!(AlertRule::new("", "up", 0).is_err());
        assert!(AlertRule::new("x", "up{", 0).is_err());
        assert!(AlertRule::new("x", "up", -1).is_err());
    }

    #[test]
    fn meta_rules_level_after_plain_rules() {
        let rules = vec![
            AlertRule::new("A", "watts > 1", 0).unwrap(),
            AlertRule::new("B", "joules > 2", 0).unwrap(),
            AlertRule::new(
                "ManyFiring",
                "sum(ALERTS{alertstate=\"firing\"}) >= 3",
                0,
            )
            .unwrap(),
        ];
        let set = RuleSet::compile(rules);
        assert_eq!(set.depth(), 2);
        assert_eq!(set.levels[0], vec![0, 1]);
        assert_eq!(set.levels[1], vec![2]);
        assert!(!set.is_meta(0));
        assert!(set.is_meta(2));
    }

    #[test]
    fn independent_rules_share_one_level() {
        let rules = vec![
            AlertRule::new("A", "watts > 1", 0).unwrap(),
            AlertRule::new("B", "joules > 2", 0).unwrap(),
        ];
        let set = RuleSet::compile(rules);
        assert_eq!(set.depth(), 1);
    }

    #[test]
    fn meta_chain_deepens_the_dag() {
        // A meta-rule after a meta-rule: three levels.
        let rules = vec![
            AlertRule::new("A", "watts > 1", 0).unwrap(),
            AlertRule::new("M1", "sum(ALERTS) > 1", 0).unwrap(),
            AlertRule::new("M2", "sum(ALERTS) > 2", 0).unwrap(),
        ];
        let set = RuleSet::compile(rules);
        assert_eq!(set.depth(), 3);
    }

    #[test]
    fn templates_render_labels_and_value() {
        let ls = labels! {"instance" => "n3", "uuid" => "slurm-9"};
        assert_eq!(
            render_template("{{ $labels.instance }}: {{$value}} W", &ls, 512.5),
            "n3: 512.5 W"
        );
        assert_eq!(render_template("{{ $labels.missing }}!", &ls, 0.0), "!");
        assert_eq!(render_template("no placeholders", &ls, 0.0), "no placeholders");
        assert_eq!(render_template("{{ broken", &ls, 0.0), "{{ broken");
    }
}
