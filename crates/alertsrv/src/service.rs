//! The alerting service: DAG evaluation, lifecycle, grouped delivery.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ceems_http::resilience::fnv1a;
use ceems_http::router::Router;
use ceems_http::types::{Response, Status};
use ceems_metrics::instruments::{Counter, CounterVec, GaugeVec, Histogram};
use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_metrics::matcher::{LabelMatcher, MatchOp};
use ceems_obs::trace::QueryTrace;
use ceems_obs::{add_metrics_route, trace, Obs, TraceSink};
use ceems_tsdb::promql::instant_query_with_lookback;
use ceems_tsdb::Tsdb;
use parking_lot::Mutex;

use crate::pipeline::RoutingTree;
use crate::query::{value_to_vector, QuerySource};
use crate::rules::{render_template, RuleSet, ALERTS_METRIC};
use crate::sink::{Notification, NotificationAlert, NotificationSink};
use crate::state::{AlertInstance, AlertState, AlertStore, GroupState, Silence};

/// Service timing knobs (all ms, sim clock).
#[derive(Clone, Debug)]
pub struct AlertConfig {
    /// How long after the first alert a new group waits before its first
    /// notification, letting related alerts batch.
    pub group_wait_ms: i64,
    /// Minimum spacing between notifications for a changed group.
    pub group_interval_ms: i64,
    /// Re-notification interval for an unchanged, still-firing group.
    pub repeat_interval_ms: i64,
    /// How long resolved alerts are retained (and notifiable) before GC.
    pub resolved_retention_ms: i64,
    /// Instant-selector lookback for rule evaluation.
    pub lookback_ms: i64,
}

impl Default for AlertConfig {
    fn default() -> AlertConfig {
        AlertConfig {
            group_wait_ms: 15_000,
            group_interval_ms: 60_000,
            repeat_interval_ms: 4 * 3_600_000,
            resolved_retention_ms: 300_000,
            lookback_ms: 45_000,
        }
    }
}

/// What one [`AlertService::tick`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickStats {
    /// Rules evaluated.
    pub rules_evaluated: usize,
    /// Rule evaluations that errored (query failures included).
    pub eval_errors: usize,
    /// Alerts pending after the tick.
    pub pending: usize,
    /// Alerts firing after the tick.
    pub firing: usize,
    /// Notifications delivered.
    pub notifications_sent: usize,
    /// Deliveries that failed (will be retried).
    pub notifications_failed: usize,
    /// Alerts suppressed by silences this tick.
    pub silenced: usize,
}

struct Inner {
    store: AlertStore,
    alerts: BTreeMap<String, AlertInstance>,
    groups: BTreeMap<String, GroupState>,
    silences: BTreeMap<String, Silence>,
    /// In-memory `ALERTS` series store for meta-rules.
    alerts_db: Tsdb,
    /// Ordered record of every delivery attempt, for determinism checks.
    notification_trace: Vec<serde_json::Value>,
}

/// The alerting service. Drive it with [`AlertService::tick`] on the sim
/// clock; share it behind an [`Arc`] to serve its HTTP API.
pub struct AlertService {
    rules: RuleSet,
    source: Arc<dyn QuerySource>,
    sinks: Vec<Arc<dyn NotificationSink>>,
    routing: RoutingTree,
    cfg: AlertConfig,
    obs: Obs,
    inner: Mutex<Inner>,
    eval_hist: Histogram,
    alerts_gauge: GaugeVec,
    notifications: CounterVec,
    eval_errors: Counter,
    trace_sink: Option<Arc<TraceSink>>,
}

impl AlertService {
    /// Builds a service with durable state under `state_dir`.
    ///
    /// Restart-safe: alerts, group notification times and silences load
    /// from the store, so an alert firing before a restart does not
    /// re-notify after it.
    pub fn new(
        rules: RuleSet,
        source: Arc<dyn QuerySource>,
        sinks: Vec<Arc<dyn NotificationSink>>,
        routing: RoutingTree,
        cfg: AlertConfig,
        state_dir: &Path,
    ) -> Result<AlertService, String> {
        let store = AlertStore::open(state_dir)?;
        let alerts = store.load_alerts();
        let groups = store.load_groups();
        let silences = store.load_silences();
        let obs = Obs::new();
        let eval_hist = obs.histogram(
            "ceems_alertsrv_rule_eval_duration_seconds",
            "Wall time evaluating one alert rule.",
            Histogram::duration_buckets(),
        );
        let alerts_gauge = obs.gauge_vec(
            "ceems_alertsrv_alerts",
            "Current alerts by lifecycle state.",
            &["state"],
        );
        let notifications = obs.counter_vec(
            "ceems_alertsrv_notifications_total",
            "Notification pipeline outcomes.",
            &["outcome"],
        );
        let eval_errors = obs.counter(
            "ceems_alertsrv_rule_eval_failures_total",
            "Alert-rule evaluations that failed.",
        );
        ceems_obs::register_build_info(obs.registry(), "alertsrv");
        Ok(AlertService {
            rules,
            source,
            sinks,
            routing,
            cfg,
            obs,
            inner: Mutex::new(Inner {
                store,
                alerts,
                groups,
                silences,
                alerts_db: Tsdb::default(),
                notification_trace: Vec::new(),
            }),
            eval_hist,
            alerts_gauge,
            notifications,
            eval_errors,
            trace_sink: None,
        })
    }

    /// Attaches a trace sink (S22): every tick's evaluation trace is
    /// offered to it; head sampling or tail (slow-tick) capture decides
    /// whether the trace is persisted.
    pub fn with_trace_sink(mut self, sink: Arc<TraceSink>) -> AlertService {
        self.trace_sink = Some(sink);
        self
    }

    /// The service's metrics registry (serve with
    /// [`ceems_obs::metrics_handler`] or [`Self::router`]).
    pub fn registry(&self) -> ceems_metrics::registry::Registry {
        self.obs.registry().clone()
    }

    /// Evaluates every rule level by level, advances alert lifecycles,
    /// and drives grouped notification delivery.
    pub fn tick(&self, now_ms: i64) -> TickStats {
        let mut stats = TickStats::default();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let qtrace = QueryTrace::begin(None);
        let _cur = trace::enter(Some(qtrace.clone()));

        // Expired silences drop out before evaluation.
        let expired: Vec<String> = inner
            .silences
            .iter()
            .filter(|(_, s)| s.ends_ms <= now_ms)
            .map(|(id, _)| id.clone())
            .collect();
        for id in expired {
            inner.silences.remove(&id);
            inner.store.delete_silence(&id);
        }

        for level in &self.rules.levels {
            for &ri in level {
                let rule = &self.rules.rules[ri];
                stats.rules_evaluated += 1;
                let stage = qtrace.stage("alert_eval");
                let t0 = Instant::now();
                let result = if self.rules.is_meta(ri) {
                    instant_query_with_lookback(
                        &inner.alerts_db,
                        &rule.expr,
                        now_ms,
                        self.cfg.lookback_ms,
                    )
                    .map_err(|e| e.to_string())
                    .and_then(value_to_vector)
                } else {
                    self.source.query(&rule.expr_src, &rule.expr, now_ms)
                };
                self.eval_hist.observe(t0.elapsed().as_secs_f64());
                stage.finish();

                let mut vector = match result {
                    Ok(v) => v,
                    Err(_) => {
                        // A failed evaluation neither fires nor resolves:
                        // existing alerts for the rule hold their state
                        // until data comes back.
                        stats.eval_errors += 1;
                        self.eval_errors.inc();
                        continue;
                    }
                };
                vector.sort_by_key(|(labels, _)| labels.fingerprint());

                let mut seen: BTreeSet<String> = BTreeSet::new();
                for (series_labels, value) in vector {
                    let mut b = LabelSetBuilder::from(series_labels.without(METRIC_NAME_LABEL))
                        .label("alertname", &rule.name);
                    for (k, v) in &rule.labels {
                        b = b.label(k, v);
                    }
                    let labels = b.build();
                    let fp = AlertInstance::fingerprint_of(&labels);
                    // Label-fingerprint dedup: two rules (or one rule's
                    // duplicate series) producing identical labels
                    // collapse into one alert.
                    if !seen.insert(fp.clone()) {
                        continue;
                    }
                    let firing_now = rule.for_ms == 0;
                    let alert = inner.alerts.entry(fp.clone()).or_insert(AlertInstance {
                        fingerprint: fp.clone(),
                        rule: rule.name.clone(),
                        labels: labels.clone(),
                        state: if firing_now {
                            AlertState::Firing
                        } else {
                            AlertState::Pending
                        },
                        active_since_ms: now_ms,
                        firing_since_ms: firing_now.then_some(now_ms),
                        resolved_at_ms: None,
                        value,
                    });
                    if alert.state == AlertState::Resolved {
                        // Re-violation after resolution restarts the hold.
                        alert.state = if firing_now {
                            AlertState::Firing
                        } else {
                            AlertState::Pending
                        };
                        alert.active_since_ms = now_ms;
                        alert.firing_since_ms = firing_now.then_some(now_ms);
                        alert.resolved_at_ms = None;
                    }
                    alert.value = value;
                    if alert.state == AlertState::Pending
                        && now_ms - alert.active_since_ms >= rule.for_ms
                    {
                        alert.state = AlertState::Firing;
                        alert.firing_since_ms = Some(now_ms);
                    }
                    let snapshot = alert.clone();
                    let _ = inner.store.save_alert(&snapshot);
                }

                // Series that stopped violating resolve.
                let to_resolve: Vec<String> = inner
                    .alerts
                    .values()
                    .filter(|a| {
                        a.rule == rule.name
                            && a.state != AlertState::Resolved
                            && !seen.contains(&a.fingerprint)
                    })
                    .map(|a| a.fingerprint.clone())
                    .collect();
                for fp in to_resolve {
                    let a = inner.alerts.get_mut(&fp).unwrap();
                    a.state = AlertState::Resolved;
                    a.resolved_at_ms = Some(now_ms);
                    let snapshot = a.clone();
                    let _ = inner.store.save_alert(&snapshot);
                }

                // Materialize this rule's active alerts as ALERTS samples
                // so later levels (meta-rules) see them at this tick.
                for a in inner.alerts.values() {
                    if a.rule != rule.name || a.state == AlertState::Resolved {
                        continue;
                    }
                    let ls = LabelSetBuilder::from(a.labels.clone())
                        .label(METRIC_NAME_LABEL, ALERTS_METRIC)
                        .label("alertstate", a.state.as_str())
                        .build();
                    inner.alerts_db.append(&ls, now_ms, 1.0);
                }
            }
        }

        // GC resolved alerts past retention.
        let gc: Vec<String> = inner
            .alerts
            .values()
            .filter(|a| {
                a.resolved_at_ms
                    .is_some_and(|t| now_ms - t >= self.cfg.resolved_retention_ms)
            })
            .map(|a| a.fingerprint.clone())
            .collect();
        for fp in gc {
            inner.alerts.remove(&fp);
            inner.store.delete_alert(&fp);
        }

        self.notify(inner, now_ms, &mut stats);

        stats.pending = inner
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Pending)
            .count();
        stats.firing = inner
            .alerts
            .values()
            .filter(|a| a.state == AlertState::Firing)
            .count();
        self.alerts_gauge
            .with_label_values(&["pending"])
            .set(stats.pending as f64);
        self.alerts_gauge
            .with_label_values(&["firing"])
            .set(stats.firing as f64);
        self.alerts_gauge.with_label_values(&["resolved"]).set(
            inner
                .alerts
                .values()
                .filter(|a| a.state == AlertState::Resolved)
                .count() as f64,
        );
        if let Some(sink) = &self.trace_sink {
            sink.offer("alertsrv", "tick", "system", &qtrace.report());
        }
        stats
    }

    /// Grouping, silence filtering, and timed delivery.
    fn notify(&self, inner: &mut Inner, now_ms: i64, stats: &mut TickStats) {
        // Firing and resolved alerts are notifiable; pending never is.
        // Silenced alerts drop out here but keep their lifecycle state.
        let mut groups: BTreeMap<String, (String, Vec<AlertInstance>)> = BTreeMap::new();
        for a in inner.alerts.values() {
            if a.state == AlertState::Pending {
                continue;
            }
            if inner
                .silences
                .values()
                .any(|s| s.matches(&a.labels, now_ms))
            {
                stats.silenced += 1;
                self.notifications.with_label_values(&["silenced"]).inc();
                continue;
            }
            let (route, sink, group_by) = self.routing.route_for(&a.labels);
            let key = RoutingTree::group_key(route, &a.labels, group_by);
            groups
                .entry(key)
                .or_insert_with(|| (sink.to_string(), Vec::new()))
                .1
                .push(a.clone());
        }

        for (key, (sink_name, mut alerts)) in groups {
            alerts.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
            let firing = alerts
                .iter()
                .filter(|a| a.state == AlertState::Firing)
                .count();
            let hash = {
                let body: Vec<String> = alerts
                    .iter()
                    .map(|a| format!("{}:{}", a.fingerprint, a.state.as_str()))
                    .collect();
                format!("{:016x}", fnv1a(body.join(",").as_bytes()))
            };
            let g = inner.groups.entry(key.clone()).or_insert(GroupState {
                key: key.clone(),
                sink: sink_name.clone(),
                first_active_ms: now_ms,
                last_notified_ms: None,
                next_attempt_ms: None,
                last_hash: String::new(),
            });
            let changed = g.last_hash != hash;
            if !changed && firing == 0 {
                // Resolution already delivered; the group dies once its
                // alerts are GC'd.
                continue;
            }
            let due = if let Some(na) = g.next_attempt_ms {
                // A failed delivery is pending; retry when the receiver
                // said to, not on the group timers.
                now_ms >= na
            } else {
                match g.last_notified_ms {
                    None => now_ms - g.first_active_ms >= self.cfg.group_wait_ms,
                    Some(last) => {
                        if changed {
                            now_ms - last >= self.cfg.group_interval_ms
                        } else {
                            firing > 0 && now_ms - last >= self.cfg.repeat_interval_ms
                        }
                    }
                }
            };
            if !due {
                if !changed && firing > 0 && g.last_notified_ms.is_some() {
                    self.notifications.with_label_values(&["deduped"]).inc();
                }
                continue;
            }

            let rendered: Vec<NotificationAlert> = alerts
                .iter()
                .map(|a| {
                    let annotations = self
                        .rules
                        .rules
                        .iter()
                        .find(|r| r.name == a.rule)
                        .map(|r| {
                            r.annotations
                                .iter()
                                .map(|(k, tpl)| {
                                    (k.clone(), render_template(tpl, &a.labels, a.value))
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    NotificationAlert::from_instance(a, annotations)
                })
                .collect();
            let n = Notification {
                group_key: key.clone(),
                status: if firing > 0 { "firing" } else { "resolved" }.to_string(),
                alerts: rendered,
                at_ms: now_ms,
            };
            let sink = self.sinks.iter().find(|s| s.name() == sink_name);
            let outcome = match sink {
                Some(sink) => sink.deliver(&n),
                None => Err(crate::sink::SinkError {
                    message: format!("no sink named {sink_name:?}"),
                    retry_after_ms: None,
                }),
            };
            match outcome {
                Ok(()) => {
                    stats.notifications_sent += 1;
                    self.notifications.with_label_values(&["sent"]).inc();
                    g.last_notified_ms = Some(now_ms);
                    g.last_hash = hash;
                    g.next_attempt_ms = None;
                    inner.notification_trace.push(serde_json::json!({
                        "t": now_ms,
                        "group": key,
                        "status": n.status,
                        "alerts": n.alerts.iter().map(|a| {
                            let m: BTreeMap<&str, &str> = a.labels.iter().collect();
                            serde_json::json!(m)
                        }).collect::<Vec<_>>(),
                        "sink": sink_name,
                        "outcome": "sent",
                    }));
                }
                Err(e) => {
                    stats.notifications_failed += 1;
                    self.notifications.with_label_values(&["failed"]).inc();
                    // Come back when told to, else at the next tick.
                    g.next_attempt_ms = Some(now_ms + e.retry_after_ms.unwrap_or(0).max(0));
                    inner.notification_trace.push(serde_json::json!({
                        "t": now_ms,
                        "group": key,
                        "status": n.status,
                        "sink": sink_name,
                        "outcome": "failed",
                    }));
                }
            }
            let snapshot = g.clone();
            let _ = inner.store.save_group(&snapshot);
        }

        // Groups whose alerts are all gone have nothing left to say.
        let dead: Vec<String> = inner
            .groups
            .keys()
            .filter(|k| {
                !inner.alerts.values().any(|a| {
                    let (route, _, group_by) = self.routing.route_for(&a.labels);
                    RoutingTree::group_key(route, &a.labels, group_by) == **k
                })
            })
            .cloned()
            .collect();
        for k in dead {
            inner.groups.remove(&k);
            inner.store.delete_group(&k);
        }
    }

    /// Current alerts, sorted by fingerprint.
    pub fn alerts(&self) -> Vec<AlertInstance> {
        self.inner.lock().alerts.values().cloned().collect()
    }

    /// Active silences, sorted by id.
    pub fn silences(&self) -> Vec<Silence> {
        self.inner.lock().silences.values().cloned().collect()
    }

    /// Creates a silence; returns its (deterministic) id.
    pub fn add_silence(
        &self,
        matchers: Vec<LabelMatcher>,
        ends_ms: i64,
        comment: impl Into<String>,
    ) -> Result<String, String> {
        if matchers.is_empty() {
            return Err("silence needs at least one matcher".into());
        }
        let comment = comment.into();
        let mut key = String::new();
        for m in &matchers {
            key.push_str(&format!("{}{}{};", m.name, m.op.as_str(), m.value));
        }
        key.push_str(&ends_ms.to_string());
        let id = format!("s{:016x}", fnv1a(key.as_bytes()));
        let s = Silence {
            id: id.clone(),
            matchers,
            ends_ms,
            comment,
        };
        let mut inner = self.inner.lock();
        inner.store.save_silence(&s)?;
        inner.silences.insert(id.clone(), s);
        Ok(id)
    }

    /// Removes a silence. Returns whether it existed.
    pub fn remove_silence(&self, id: &str) -> bool {
        let mut inner = self.inner.lock();
        inner.silences.remove(id);
        inner.store.delete_silence(id)
    }

    /// Ordered record of every delivery attempt (sim time, group, alerts,
    /// outcome) — the determinism tests' ground truth.
    pub fn notification_trace(&self) -> Vec<serde_json::Value> {
        self.inner.lock().notification_trace.clone()
    }

    /// Compacts the durable store's WAL into a snapshot.
    pub fn checkpoint(&self) -> Result<(), String> {
        self.inner.lock().store.snapshot()
    }

    /// HTTP API: `/metrics`, `GET /api/v1/alerts`,
    /// `GET|POST /api/v1/silences`, `DELETE /api/v1/silences/{id}`.
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        add_metrics_route(&mut router, self.registry());

        let svc = self.clone();
        router.get("/api/v1/alerts", move |_req| {
            let alerts: Vec<serde_json::Value> = svc
                .alerts()
                .iter()
                .map(|a| {
                    let labels: BTreeMap<&str, &str> = a.labels.iter().collect();
                    serde_json::json!({
                        "fingerprint": a.fingerprint,
                        "rule": a.rule,
                        "labels": labels,
                        "state": a.state.as_str(),
                        "activeSince": a.active_since_ms,
                        "value": a.value,
                    })
                })
                .collect();
            Response::json(
                serde_json::json!({"status": "success", "data": alerts}).to_string(),
            )
        });

        let svc = self.clone();
        router.get("/api/v1/silences", move |_req| {
            let silences: Vec<serde_json::Value> = svc
                .silences()
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "id": s.id,
                        "matchers": s.matchers.iter().map(|m| serde_json::json!({
                            "name": m.name, "op": m.op.as_str(), "value": m.value,
                        })).collect::<Vec<_>>(),
                        "endsAt": s.ends_ms,
                        "comment": s.comment,
                    })
                })
                .collect();
            Response::json(
                serde_json::json!({"status": "success", "data": silences}).to_string(),
            )
        });

        let svc = self.clone();
        router.post("/api/v1/silences", move |req| {
            let Ok(body) = serde_json::from_slice::<serde_json::Value>(&req.body) else {
                return Response::error(Status::BAD_REQUEST, "invalid JSON body");
            };
            let Some(ends_ms) = body["endsAt"].as_i64() else {
                return Response::error(Status::BAD_REQUEST, "missing endsAt (ms)");
            };
            let mut matchers = Vec::new();
            for m in body["matchers"].as_array().into_iter().flatten() {
                let (Some(name), Some(value)) = (m["name"].as_str(), m["value"].as_str())
                else {
                    return Response::error(Status::BAD_REQUEST, "matcher needs name and value");
                };
                let op = match m["op"].as_str().unwrap_or("=") {
                    "=" => MatchOp::Eq,
                    "!=" => MatchOp::Ne,
                    "=~" => MatchOp::Re,
                    "!~" => MatchOp::Nre,
                    other => {
                        return Response::error(
                            Status::BAD_REQUEST,
                            format!("unknown matcher op {other:?}"),
                        )
                    }
                };
                match LabelMatcher::new(name, op, value) {
                    Ok(m) => matchers.push(m),
                    Err(e) => {
                        return Response::error(Status::BAD_REQUEST, format!("bad matcher: {e}"))
                    }
                }
            }
            let comment = body["comment"].as_str().unwrap_or("").to_string();
            match svc.add_silence(matchers, ends_ms, comment) {
                Ok(id) => Response::json(
                    serde_json::json!({"status": "success", "data": {"id": id}}).to_string(),
                ),
                Err(e) => Response::error(Status::BAD_REQUEST, e),
            }
        });

        let svc = self.clone();
        router.delete("/api/v1/silences/:id", move |req| {
            match req.path_param("id") {
                Some(id) if svc.remove_silence(id) => {
                    Response::json(r#"{"status":"success"}"#.to_string())
                }
                Some(_) => Response::error(Status::NOT_FOUND, "no such silence"),
                None => Response::error(Status::BAD_REQUEST, "missing id"),
            }
        });

        router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packs;
    use crate::query::LocalQuerySource;
    use crate::rules::AlertRule;
    use crate::sink::LogSink;
    use ceems_metrics::labels;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alertsrv-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    fn test_cfg() -> AlertConfig {
        AlertConfig {
            group_wait_ms: 0,
            group_interval_ms: 10_000,
            repeat_interval_ms: 1_000_000,
            resolved_retention_ms: 60_000,
            lookback_ms: 15_000,
        }
    }

    fn power_rule(for_ms: i64) -> AlertRule {
        AlertRule::new("HotNode", "power > 50", for_ms)
            .unwrap()
            .with_annotation("summary", "{{ $labels.instance }} at {{ $value }} W")
    }

    fn service_over(
        db: &Arc<Tsdb>,
        rules: Vec<AlertRule>,
        dir: &Path,
    ) -> (AlertService, Arc<LogSink>) {
        let sink = LogSink::new();
        let svc = AlertService::new(
            RuleSet::compile(rules),
            Arc::new(LocalQuerySource::new(db.clone(), 15_000)),
            vec![sink.clone()],
            RoutingTree::new("log"),
            test_cfg(),
            dir,
        )
        .unwrap();
        (svc, sink)
    }

    #[test]
    fn lifecycle_pending_firing_notify_resolve() {
        let db = Arc::new(Tsdb::default());
        let dir = tempdir("lifecycle");
        let (svc, sink) = service_over(&db, vec![power_rule(15_000)], &dir);
        let series = labels! {"__name__" => "power", "instance" => "n1"};

        db.append(&series, 10_000, 100.0);
        let s = svc.tick(10_000);
        assert_eq!((s.pending, s.firing), (1, 0));
        assert!(sink.delivered().is_empty(), "pending never notifies");

        db.append(&series, 20_000, 100.0);
        let s = svc.tick(20_000);
        assert_eq!((s.pending, s.firing), (1, 0), "hold not yet elapsed");

        db.append(&series, 30_000, 100.0);
        let s = svc.tick(30_000);
        assert_eq!((s.pending, s.firing), (0, 1));
        assert_eq!(s.notifications_sent, 1);
        let n = &sink.delivered()[0];
        assert_eq!(n.status, "firing");
        assert_eq!(n.alerts[0].annotations[0].1, "n1 at 100.0 W");

        // Unchanged group inside repeat_interval: deduped.
        db.append(&series, 40_000, 100.0);
        let s = svc.tick(40_000);
        assert_eq!(s.notifications_sent, 0);
        assert_eq!(sink.delivered().len(), 1);

        // Recovery resolves and notifies once.
        db.append(&series, 50_000, 10.0);
        let s = svc.tick(50_000);
        assert_eq!((s.pending, s.firing), (0, 0));
        assert_eq!(s.notifications_sent, 1);
        assert_eq!(sink.delivered()[1].status, "resolved");

        // Nothing more to say afterwards.
        db.append(&series, 60_000, 10.0);
        svc.tick(60_000);
        assert_eq!(sink.delivered().len(), 2);
    }

    #[test]
    fn silences_suppress_matching_alerts() {
        let db = Arc::new(Tsdb::default());
        let dir = tempdir("silence");
        let (svc, sink) = service_over(&db, vec![power_rule(0)], &dir);
        let series = labels! {"__name__" => "power", "instance" => "n1"};

        svc.add_silence(
            vec![LabelMatcher::eq("alertname", "HotNode")],
            25_000,
            "maintenance",
        )
        .unwrap();

        db.append(&series, 10_000, 100.0);
        let s = svc.tick(10_000);
        assert_eq!(s.firing, 1, "silence mutes delivery, not the lifecycle");
        assert_eq!(s.silenced, 1);
        assert!(sink.delivered().is_empty());

        // Silence expires → delivery resumes.
        db.append(&series, 30_000, 100.0);
        let s = svc.tick(30_000);
        assert_eq!(s.notifications_sent, 1);
        assert!(svc.silences().is_empty(), "expired silence got GC'd");
    }

    #[test]
    fn restart_does_not_renotify_an_unchanged_group() {
        let db = Arc::new(Tsdb::default());
        let dir = tempdir("restart");
        let series = labels! {"__name__" => "power", "instance" => "n1"};
        {
            let (svc, sink) = service_over(&db, vec![power_rule(0)], &dir);
            db.append(&series, 10_000, 100.0);
            let s = svc.tick(10_000);
            assert_eq!(s.notifications_sent, 1);
            assert_eq!(sink.delivered().len(), 1);
        }
        // New process, same state dir, alert still violating.
        let (svc, sink) = service_over(&db, vec![power_rule(0)], &dir);
        assert_eq!(svc.alerts().len(), 1, "alert state survived restart");
        db.append(&series, 20_000, 100.0);
        let s = svc.tick(20_000);
        assert_eq!(s.firing, 1);
        assert_eq!(s.notifications_sent, 0, "no duplicate after restart");
        assert!(sink.delivered().is_empty());
    }

    #[test]
    fn meta_rules_see_same_tick_alerts() {
        let db = Arc::new(Tsdb::default());
        let dir = tempdir("meta");
        let meta = AlertRule::new("AnyNodeHot", "sum(ALERTS) > 0", 0).unwrap();
        let (svc, _sink) = service_over(&db, vec![power_rule(0), meta], &dir);

        db.append(&labels! {"__name__" => "power", "instance" => "n1"}, 10_000, 100.0);
        let s = svc.tick(10_000);
        assert_eq!(s.firing, 2, "meta-rule fired off the base rule's ALERTS");
        let names: Vec<String> = svc.alerts().iter().map(|a| a.rule.clone()).collect();
        assert!(names.contains(&"AnyNodeHot".to_string()));
    }

    #[test]
    fn packs_evaluate_against_recording_rule_output() {
        let db = Arc::new(Tsdb::default());
        let dir = tempdir("packs");
        let (svc, sink) =
            service_over(&db, vec![packs::energy_budget(900.0, 0)], &dir);
        db.append(
            &labels! {"__name__" => "uuid:ceems_power:watts", "uuid" => "job-1", "instance" => "n1"},
            5_000,
            600.0,
        );
        db.append(
            &labels! {"__name__" => "uuid:ceems_power:watts", "uuid" => "job-1", "instance" => "n2"},
            5_000,
            600.0,
        );
        db.append(
            &labels! {"__name__" => "uuid:ceems_power:watts", "uuid" => "job-2", "instance" => "n1"},
            5_000,
            100.0,
        );
        let s = svc.tick(5_000);
        assert_eq!(s.firing, 1, "only job-1 exceeds 900 W summed");
        let n = &sink.delivered()[0];
        assert!(n.alerts[0].annotations[0].1.contains("job-1"));
        assert_eq!(n.alerts[0].value, 1200.0);
    }
}
