//! Notification sinks.
//!
//! A sink delivers one grouped notification. The webhook sink posts the
//! Alertmanager-style JSON payload over the pooled S20 client, retrying
//! transient failures with backoff; a `Retry-After` from the receiver
//! short-circuits the retry loop and is surfaced so the service schedules
//! the next attempt instead of hammering. The log sink records structured
//! lines in memory — the stack's always-on audit trail and the
//! determinism tests' observation point.

use std::sync::Arc;
use std::time::Duration;

use ceems_http::client::Client;
use ceems_metrics::labels::LabelSet;
use parking_lot::Mutex;

use crate::state::{AlertInstance, AlertState};

/// One grouped notification.
#[derive(Clone, Debug)]
pub struct Notification {
    /// Group key the notification covers.
    pub group_key: String,
    /// `firing` while any member fires, `resolved` once all resolved.
    pub status: String,
    /// Member alerts, sorted by fingerprint.
    pub alerts: Vec<NotificationAlert>,
    /// Delivery time (ms, sim clock).
    pub at_ms: i64,
}

/// One alert inside a notification.
#[derive(Clone, Debug)]
pub struct NotificationAlert {
    /// Full label set.
    pub labels: LabelSet,
    /// Rendered annotations.
    pub annotations: Vec<(String, String)>,
    /// Lifecycle state at delivery time.
    pub state: AlertState,
    /// Last violating value.
    pub value: f64,
    /// When the alert went active.
    pub active_since_ms: i64,
}

impl NotificationAlert {
    /// Builds the payload entry for an alert, with annotations already
    /// rendered.
    pub fn from_instance(a: &AlertInstance, annotations: Vec<(String, String)>) -> Self {
        NotificationAlert {
            labels: a.labels.clone(),
            annotations,
            state: a.state,
            value: a.value,
            active_since_ms: a.active_since_ms,
        }
    }
}

impl Notification {
    /// Alertmanager-shaped JSON payload.
    pub fn to_json(&self) -> serde_json::Value {
        let alerts: Vec<serde_json::Value> = self
            .alerts
            .iter()
            .map(|a| {
                let labels: std::collections::BTreeMap<&str, &str> = a.labels.iter().collect();
                let annotations: std::collections::BTreeMap<&str, &str> = a
                    .annotations
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                serde_json::json!({
                    "labels": labels,
                    "annotations": annotations,
                    "status": a.state.as_str(),
                    "value": a.value,
                    "activeAt": a.active_since_ms,
                })
            })
            .collect();
        serde_json::json!({
            "groupKey": self.group_key,
            "status": self.status,
            "alerts": alerts,
            "at": self.at_ms,
        })
    }
}

/// Why a delivery failed, and when the receiver wants us back.
#[derive(Clone, Debug)]
pub struct SinkError {
    /// Human-readable reason.
    pub message: String,
    /// `Retry-After` from the receiver, if it sent one (ms).
    pub retry_after_ms: Option<i64>,
}

impl SinkError {
    fn plain(message: impl Into<String>) -> SinkError {
        SinkError {
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

/// Something that can deliver notifications.
pub trait NotificationSink: Send + Sync {
    /// Sink name, referenced by routes.
    fn name(&self) -> &str;

    /// Delivers one notification.
    fn deliver(&self, n: &Notification) -> Result<(), SinkError>;
}

/// In-memory structured log sink. Always succeeds.
#[derive(Default)]
pub struct LogSink {
    delivered: Mutex<Vec<Notification>>,
}

impl LogSink {
    /// An empty log sink.
    pub fn new() -> Arc<LogSink> {
        Arc::new(LogSink::default())
    }

    /// Everything delivered so far, in order.
    pub fn delivered(&self) -> Vec<Notification> {
        self.delivered.lock().clone()
    }

    /// Structured one-line-per-notification rendering (the audit trail).
    pub fn render_lines(&self) -> Vec<String> {
        self.delivered
            .lock()
            .iter()
            .map(|n| n.to_json().to_string())
            .collect()
    }
}

impl NotificationSink for LogSink {
    fn name(&self) -> &str {
        "log"
    }

    fn deliver(&self, n: &Notification) -> Result<(), SinkError> {
        self.delivered.lock().push(n.clone());
        Ok(())
    }
}

/// Webhook sink: POSTs the JSON payload, retrying with backoff.
pub struct WebhookSink {
    url: String,
    client: Client,
    attempts: u32,
    backoff: Duration,
}

impl WebhookSink {
    /// A sink posting to `url` with 3 attempts and 50 ms base backoff.
    pub fn new(url: impl Into<String>) -> WebhookSink {
        WebhookSink {
            url: url.into(),
            client: Client::new(),
            attempts: 3,
            backoff: Duration::from_millis(50),
        }
    }

    /// Replaces the HTTP client (pool size, timeout, fault plan).
    pub fn with_client(mut self, client: Client) -> WebhookSink {
        self.client = client;
        self
    }

    /// Sets the per-delivery attempt count and base backoff.
    pub fn with_retries(mut self, attempts: u32, backoff: Duration) -> WebhookSink {
        self.attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }
}

impl NotificationSink for WebhookSink {
    fn name(&self) -> &str {
        "webhook"
    }

    fn deliver(&self, n: &Notification) -> Result<(), SinkError> {
        let body = n.to_json().to_string().into_bytes();
        let mut last = SinkError::plain("no attempts made");
        for attempt in 0..self.attempts {
            if attempt > 0 {
                // Linear backoff is enough here: the outer group timers
                // bound how often a delivery can even start.
                std::thread::sleep(self.backoff * attempt);
            }
            match self
                .client
                .post(&self.url, body.clone(), "application/json")
            {
                Ok(resp) if resp.status.is_success() => return Ok(()),
                Ok(resp) => {
                    let retry_after_ms =
                        resp.retry_after_secs().map(|s| (s * 1000.0).ceil() as i64);
                    last = SinkError {
                        message: format!("webhook returned {}", resp.status.0),
                        retry_after_ms,
                    };
                    // The receiver told us when to come back; stop
                    // retrying inline and let the service reschedule.
                    if retry_after_ms.is_some() {
                        return Err(last);
                    }
                }
                Err(e) => last = SinkError::plain(format!("webhook: {e}")),
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    fn notification() -> Notification {
        Notification {
            group_key: "default:{alertname=\"X\"}".into(),
            status: "firing".into(),
            alerts: vec![NotificationAlert {
                labels: labels! {"alertname" => "X", "instance" => "n1"},
                annotations: vec![("summary".into(), "n1 hot".into())],
                state: AlertState::Firing,
                value: 42.0,
                active_since_ms: 1_000,
            }],
            at_ms: 2_000,
        }
    }

    #[test]
    fn log_sink_records_in_order() {
        let sink = LogSink::new();
        sink.deliver(&notification()).unwrap();
        sink.deliver(&notification()).unwrap();
        assert_eq!(sink.delivered().len(), 2);
        let lines = sink.render_lines();
        assert!(lines[0].contains("\"alertname\":\"X\""));
        assert!(lines[0].contains("\"status\":\"firing\""));
    }

    #[test]
    fn payload_shape_is_alertmanager_like() {
        let j = notification().to_json();
        assert_eq!(j["status"], "firing");
        assert_eq!(j["alerts"][0]["labels"]["instance"], "n1");
        assert_eq!(j["alerts"][0]["annotations"]["summary"], "n1 hot");
        assert_eq!(j["alerts"][0]["value"], 42.0);
    }

    #[test]
    fn webhook_against_dead_port_reports_failure() {
        // Port 1 is never listening; all attempts fail fast.
        let sink = WebhookSink::new("http://127.0.0.1:1/hook")
            .with_retries(2, Duration::from_millis(1));
        let err = sink.deliver(&notification()).unwrap_err();
        assert!(err.message.contains("webhook"), "{}", err.message);
        assert!(err.retry_after_ms.is_none());
    }
}
