//! Durable alert state.
//!
//! Alert lifecycle (pending → firing → resolved), per-group notification
//! bookkeeping, and silences all persist in a `ceems-relstore` database.
//! Restarting the alerting service mid-incident reloads this state, so a
//! firing alert is neither re-notified (its group's `last_notified_ms`
//! survives) nor forgotten (its `active_since_ms` survives, keeping `for:`
//! holds honest across restarts).

use std::collections::BTreeMap;
use std::path::Path;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};
use ceems_relstore::{Column, ColumnType, Db, Query, Schema, Value};

/// Lifecycle state of one alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Violating, but not yet past its `for:` hold.
    Pending,
    /// Violating past the hold; eligible for notification.
    Firing,
    /// Stopped violating; kept around long enough to notify resolution.
    Resolved,
}

impl AlertState {
    /// Lower-case name (stored in the DB, rendered in `alertstate`).
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    fn parse(s: &str) -> Option<AlertState> {
        Some(match s {
            "pending" => AlertState::Pending,
            "firing" => AlertState::Firing,
            "resolved" => AlertState::Resolved,
            _ => return None,
        })
    }
}

/// One alert: a rule crossed with one violating series.
#[derive(Clone, Debug)]
pub struct AlertInstance {
    /// Hex label fingerprint — the dedup key.
    pub fingerprint: String,
    /// Rule that raised it.
    pub rule: String,
    /// Full label set: series labels + `alertname` + rule static labels.
    pub labels: LabelSet,
    /// Lifecycle state.
    pub state: AlertState,
    /// When the series first started violating (ms, sim clock).
    pub active_since_ms: i64,
    /// When it crossed the `for:` hold, if it has.
    pub firing_since_ms: Option<i64>,
    /// When it stopped violating, if it has.
    pub resolved_at_ms: Option<i64>,
    /// Most recent violating sample value.
    pub value: f64,
}

impl AlertInstance {
    /// The dedup fingerprint for a label set.
    pub fn fingerprint_of(labels: &LabelSet) -> String {
        format!("{:016x}", labels.fingerprint())
    }
}

/// Per-notification-group bookkeeping.
#[derive(Clone, Debug)]
pub struct GroupState {
    /// Group key: route name + grouped label values.
    pub key: String,
    /// Sink the group routes to.
    pub sink: String,
    /// When the group first had a notifiable alert.
    pub first_active_ms: i64,
    /// Last successful delivery, if any.
    pub last_notified_ms: Option<i64>,
    /// Earliest next delivery attempt after a failure (honors
    /// `Retry-After`).
    pub next_attempt_ms: Option<i64>,
    /// Hash of the alert set last successfully delivered, for change
    /// detection.
    pub last_hash: String,
}

/// A silence: matchers plus an expiry.
#[derive(Clone, Debug)]
pub struct Silence {
    /// Identifier (deterministic hash of matchers + window).
    pub id: String,
    /// Matchers; an alert is silenced when every matcher matches.
    pub matchers: Vec<LabelMatcher>,
    /// When the silence ends (ms, sim clock).
    pub ends_ms: i64,
    /// Operator-facing note.
    pub comment: String,
}

impl Silence {
    /// Whether this silence suppresses an alert with `labels` at `now_ms`.
    pub fn matches(&self, labels: &LabelSet, now_ms: i64) -> bool {
        now_ms < self.ends_ms && self.matchers.iter().all(|m| m.matches(labels))
    }
}

fn labels_to_json(labels: &LabelSet) -> String {
    let map: BTreeMap<&str, &str> = labels.iter().collect();
    serde_json::to_string(&map).unwrap_or_else(|_| "{}".into())
}

fn labels_from_json(s: &str) -> LabelSet {
    let map: BTreeMap<String, String> = serde_json::from_str(s).unwrap_or_default();
    LabelSet::from_pairs(map)
}

fn matchers_to_json(matchers: &[LabelMatcher]) -> String {
    let items: Vec<serde_json::Value> = matchers
        .iter()
        .map(|m| {
            serde_json::json!({
                "name": m.name,
                "op": m.op.as_str(),
                "value": m.value,
            })
        })
        .collect();
    serde_json::to_string(&items).unwrap_or_else(|_| "[]".into())
}

fn matchers_from_json(s: &str) -> Vec<LabelMatcher> {
    let Ok(items) = serde_json::from_str::<Vec<serde_json::Value>>(s) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            let name = item["name"].as_str()?;
            let value = item["value"].as_str()?;
            let op = match item["op"].as_str()? {
                "=" => MatchOp::Eq,
                "!=" => MatchOp::Ne,
                "=~" => MatchOp::Re,
                "!~" => MatchOp::Nre,
                _ => return None,
            };
            LabelMatcher::new(name, op, value).ok()
        })
        .collect()
}

fn opt_int(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

fn text(v: &Value) -> String {
    match v {
        Value::Text(s) => s.clone(),
        _ => String::new(),
    }
}

fn real(v: &Value) -> f64 {
    match v {
        Value::Real(x) => *x,
        Value::Int(i) => *i as f64,
        _ => 0.0,
    }
}

/// The durable store. All mutation goes through the relstore WAL, so a
/// crash between ticks replays to the same state.
pub struct AlertStore {
    db: Db,
}

const T_ALERTS: &str = "alert_state";
const T_GROUPS: &str = "alert_groups";
const T_SILENCES: &str = "alert_silences";

impl AlertStore {
    /// Opens (or creates) the store under `dir`.
    pub fn open(dir: &Path) -> Result<AlertStore, String> {
        let mut db = Db::open(dir).map_err(|e| format!("alert store: {e}"))?;
        db.create_table(
            T_ALERTS,
            Schema::new(
                vec![
                    Column::required("fingerprint", ColumnType::Text),
                    Column::required("rule", ColumnType::Text),
                    Column::required("labels", ColumnType::Text),
                    Column::required("state", ColumnType::Text),
                    Column::required("active_since_ms", ColumnType::Int),
                    Column::nullable("firing_since_ms", ColumnType::Int),
                    Column::nullable("resolved_at_ms", ColumnType::Int),
                    Column::required("value", ColumnType::Real),
                ],
                "fingerprint",
                &["rule"],
            )
            .map_err(|e| format!("alert store schema: {e}"))?,
        )
        .map_err(|e| format!("alert store: {e}"))?;
        db.create_table(
            T_GROUPS,
            Schema::new(
                vec![
                    Column::required("key", ColumnType::Text),
                    Column::required("sink", ColumnType::Text),
                    Column::required("first_active_ms", ColumnType::Int),
                    Column::nullable("last_notified_ms", ColumnType::Int),
                    Column::nullable("next_attempt_ms", ColumnType::Int),
                    Column::required("last_hash", ColumnType::Text),
                ],
                "key",
                &[],
            )
            .map_err(|e| format!("alert store schema: {e}"))?,
        )
        .map_err(|e| format!("alert store: {e}"))?;
        db.create_table(
            T_SILENCES,
            Schema::new(
                vec![
                    Column::required("id", ColumnType::Text),
                    Column::required("matchers", ColumnType::Text),
                    Column::required("ends_ms", ColumnType::Int),
                    Column::required("comment", ColumnType::Text),
                ],
                "id",
                &[],
            )
            .map_err(|e| format!("alert store schema: {e}"))?,
        )
        .map_err(|e| format!("alert store: {e}"))?;
        Ok(AlertStore { db })
    }

    /// All persisted alerts, keyed by fingerprint.
    pub fn load_alerts(&self) -> BTreeMap<String, AlertInstance> {
        let mut out = BTreeMap::new();
        let Ok(rows) = self.db.query(T_ALERTS, &Query::all()) else {
            return out;
        };
        for row in rows {
            let fingerprint = text(&row[0]);
            let Some(state) = AlertState::parse(&text(&row[3])) else {
                continue;
            };
            out.insert(
                fingerprint.clone(),
                AlertInstance {
                    fingerprint,
                    rule: text(&row[1]),
                    labels: labels_from_json(&text(&row[2])),
                    state,
                    active_since_ms: opt_int(&row[4]).unwrap_or(0),
                    firing_since_ms: opt_int(&row[5]),
                    resolved_at_ms: opt_int(&row[6]),
                    value: real(&row[7]),
                },
            );
        }
        out
    }

    /// Upserts one alert.
    pub fn save_alert(&mut self, a: &AlertInstance) -> Result<(), String> {
        self.db
            .upsert(
                T_ALERTS,
                vec![
                    Value::Text(a.fingerprint.clone()),
                    Value::Text(a.rule.clone()),
                    Value::Text(labels_to_json(&a.labels)),
                    Value::Text(a.state.as_str().to_string()),
                    Value::Int(a.active_since_ms),
                    a.firing_since_ms.map_or(Value::Null, Value::Int),
                    a.resolved_at_ms.map_or(Value::Null, Value::Int),
                    Value::Real(a.value),
                ],
            )
            .map_err(|e| format!("alert store: {e}"))
    }

    /// Deletes an alert (post-resolution GC).
    pub fn delete_alert(&mut self, fingerprint: &str) {
        let _ = self.db.delete(T_ALERTS, &Value::Text(fingerprint.into()));
    }

    /// All persisted group states, keyed by group key.
    pub fn load_groups(&self) -> BTreeMap<String, GroupState> {
        let mut out = BTreeMap::new();
        let Ok(rows) = self.db.query(T_GROUPS, &Query::all()) else {
            return out;
        };
        for row in rows {
            let key = text(&row[0]);
            out.insert(
                key.clone(),
                GroupState {
                    key,
                    sink: text(&row[1]),
                    first_active_ms: opt_int(&row[2]).unwrap_or(0),
                    last_notified_ms: opt_int(&row[3]),
                    next_attempt_ms: opt_int(&row[4]),
                    last_hash: text(&row[5]),
                },
            );
        }
        out
    }

    /// Upserts one group state.
    pub fn save_group(&mut self, g: &GroupState) -> Result<(), String> {
        self.db
            .upsert(
                T_GROUPS,
                vec![
                    Value::Text(g.key.clone()),
                    Value::Text(g.sink.clone()),
                    Value::Int(g.first_active_ms),
                    g.last_notified_ms.map_or(Value::Null, Value::Int),
                    g.next_attempt_ms.map_or(Value::Null, Value::Int),
                    Value::Text(g.last_hash.clone()),
                ],
            )
            .map_err(|e| format!("alert store: {e}"))
    }

    /// Deletes a group state.
    pub fn delete_group(&mut self, key: &str) {
        let _ = self.db.delete(T_GROUPS, &Value::Text(key.into()));
    }

    /// All persisted silences, keyed by id.
    pub fn load_silences(&self) -> BTreeMap<String, Silence> {
        let mut out = BTreeMap::new();
        let Ok(rows) = self.db.query(T_SILENCES, &Query::all()) else {
            return out;
        };
        for row in rows {
            let id = text(&row[0]);
            out.insert(
                id.clone(),
                Silence {
                    id,
                    matchers: matchers_from_json(&text(&row[1])),
                    ends_ms: opt_int(&row[2]).unwrap_or(0),
                    comment: text(&row[3]),
                },
            );
        }
        out
    }

    /// Upserts one silence.
    pub fn save_silence(&mut self, s: &Silence) -> Result<(), String> {
        self.db
            .upsert(
                T_SILENCES,
                vec![
                    Value::Text(s.id.clone()),
                    Value::Text(matchers_to_json(&s.matchers)),
                    Value::Int(s.ends_ms),
                    Value::Text(s.comment.clone()),
                ],
            )
            .map_err(|e| format!("alert store: {e}"))
    }

    /// Deletes a silence.
    pub fn delete_silence(&mut self, id: &str) -> bool {
        self.db
            .delete(T_SILENCES, &Value::Text(id.into()))
            .unwrap_or(false)
    }

    /// Compacts the WAL into a snapshot.
    pub fn snapshot(&mut self) -> Result<(), String> {
        self.db.snapshot().map_err(|e| format!("alert store: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;

    #[test]
    fn alerts_round_trip_through_restart() {
        let dir = tempdir();
        let ls = labels! {"alertname" => "HighPower", "instance" => "n1"};
        let a = AlertInstance {
            fingerprint: AlertInstance::fingerprint_of(&ls),
            rule: "HighPower".into(),
            labels: ls,
            state: AlertState::Firing,
            active_since_ms: 1_000,
            firing_since_ms: Some(61_000),
            resolved_at_ms: None,
            value: 912.5,
        };
        {
            let mut store = AlertStore::open(&dir).unwrap();
            store.save_alert(&a).unwrap();
        }
        let store = AlertStore::open(&dir).unwrap();
        let loaded = store.load_alerts();
        let got = &loaded[&a.fingerprint];
        assert_eq!(got.state, AlertState::Firing);
        assert_eq!(got.labels.get("instance"), Some("n1"));
        assert_eq!(got.firing_since_ms, Some(61_000));
        assert_eq!(got.value, 912.5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn groups_and_silences_round_trip() {
        let dir = tempdir();
        {
            let mut store = AlertStore::open(&dir).unwrap();
            store
                .save_group(&GroupState {
                    key: "default:{alertname=\"X\"}".into(),
                    sink: "webhook".into(),
                    first_active_ms: 5,
                    last_notified_ms: Some(100),
                    next_attempt_ms: None,
                    last_hash: "abc".into(),
                })
                .unwrap();
            store
                .save_silence(&Silence {
                    id: "s1".into(),
                    matchers: vec![LabelMatcher::eq("alertname", "X")],
                    ends_ms: 10_000,
                    comment: "maintenance".into(),
                })
                .unwrap();
        }
        let mut store = AlertStore::open(&dir).unwrap();
        let groups = store.load_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(
            groups.values().next().unwrap().last_notified_ms,
            Some(100)
        );
        let silences = store.load_silences();
        let s = &silences["s1"];
        assert!(s.matches(&labels! {"alertname" => "X"}, 9_999));
        assert!(!s.matches(&labels! {"alertname" => "X"}, 10_000), "expired");
        assert!(!s.matches(&labels! {"alertname" => "Y"}, 0));
        assert!(store.delete_silence("s1"));
        assert!(!store.delete_silence("s1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alertstore-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).ok();
        dir
    }
}
