//! The API server's HTTP endpoints.
//!
//! Grafana uses this as a data source for aggregate panels (Fig. 2a/2b),
//! and the CEEMS load balancer calls `/api/v1/verify` for ownership checks
//! when it cannot read the DB file directly. The requesting identity
//! arrives in the `X-Grafana-User` header, exactly as Grafana forwards it
//! (§II.B.c).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde_json::{json, Value as Json};

use ceems_http::{HttpServer, Request, Response, Router, ServerConfig, Status};
use ceems_metrics::{CounterVec, Histogram, HistogramVec, Registry};
use ceems_relstore::{Filter, Order, Query, Value};

use crate::schema::{unit_cols, UNITS_TABLE, USAGE_TABLE};
use crate::updater::{usage_row_values, verify_ownership_in_db, Updater};

/// The API server.
pub struct ApiServer {
    updater: Arc<Mutex<Updater>>,
    admin_users: Vec<String>,
    registry: Registry,
    requests: CounterVec,
    duration: HistogramVec,
    trace_store: Option<Arc<ceems_obs::TraceStore>>,
}

fn val_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => json!(i),
        Value::Real(r) => json!(r),
        Value::Text(t) => json!(t),
    }
}

fn unit_to_json(row: &[Value]) -> Json {
    json!({
        "uuid": val_to_json(&row[unit_cols::UUID]),
        "resource_manager": val_to_json(&row[unit_cols::RESOURCE_MANAGER]),
        "user": val_to_json(&row[unit_cols::USER]),
        "project": val_to_json(&row[unit_cols::PROJECT]),
        "partition": val_to_json(&row[unit_cols::PARTITION]),
        "state": val_to_json(&row[unit_cols::STATE]),
        "submitted_at_ms": val_to_json(&row[unit_cols::SUBMITTED_AT]),
        "started_at_ms": val_to_json(&row[unit_cols::STARTED_AT]),
        "ended_at_ms": val_to_json(&row[unit_cols::ENDED_AT]),
        "elapsed_s": val_to_json(&row[unit_cols::ELAPSED_S]),
        "nnodes": val_to_json(&row[unit_cols::NNODES]),
        "ncpus": val_to_json(&row[unit_cols::NCPUS]),
        "ngpus": val_to_json(&row[unit_cols::NGPUS]),
        "avg_cpu_usage_pct": val_to_json(&row[unit_cols::AVG_CPU_USAGE]),
        "avg_mem_bytes": val_to_json(&row[unit_cols::AVG_MEM]),
        "avg_gpu_usage_pct": val_to_json(&row[unit_cols::AVG_GPU_USAGE]),
        "total_energy_kwh": val_to_json(&row[unit_cols::ENERGY_KWH]),
        "total_emissions_g": val_to_json(&row[unit_cols::EMISSIONS_G]),
    })
}

fn grafana_user(req: &Request) -> Option<String> {
    req.header("x-grafana-user").map(|s| s.to_string())
}

impl ApiServer {
    /// Creates the server over a shared updater.
    pub fn new(updater: Arc<Mutex<Updater>>, admin_users: Vec<String>) -> ApiServer {
        let registry = Registry::new();
        let requests = CounterVec::new(
            "ceems_api_requests_total",
            "API server requests by endpoint and status code.",
            &["endpoint", "code"],
        );
        let duration = HistogramVec::new(
            "ceems_api_request_duration_seconds",
            "API server request handling wall time, by endpoint.",
            &["endpoint"],
            Histogram::duration_buckets(),
        );
        registry.register("api_requests", Arc::new(requests.clone()));
        registry.register("api_request_duration", Arc::new(duration.clone()));
        ceems_obs::register_build_info(&registry, "apiserver");
        ApiServer {
            updater,
            admin_users,
            registry,
            requests,
            duration,
            trace_store: None,
        }
    }

    /// Attaches the stack's trace store (S22), enabling
    /// `GET /api/v1/traces` and `GET /api/v1/traces/:id`.
    pub fn with_trace_store(mut self, store: Arc<ceems_obs::TraceStore>) -> ApiServer {
        self.trace_store = Some(store);
        self
    }

    fn is_admin(&self, user: &str) -> bool {
        self.admin_users.iter().any(|a| a == user)
    }

    /// The server's metrics registry (served at `/metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs one handler under the request instruments.
    fn timed(&self, endpoint: &'static str, f: impl FnOnce() -> Response) -> Response {
        let start = Instant::now();
        let resp = f();
        self.duration
            .with_label_values(&[endpoint])
            .observe(start.elapsed().as_secs_f64());
        self.requests
            .with_label_values(&[endpoint, &resp.status.0.to_string()])
            .inc();
        resp
    }

    /// Builds the router.
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();

        router.get("/health", |_req| Response::text("ok"));
        ceems_obs::add_metrics_route(&mut router, self.registry.clone());

        {
            let me = self.clone();
            router.get("/api/v1/units", move |req| {
                me.timed("/api/v1/units", || me.handle_units(req))
            });
        }
        {
            let me = self.clone();
            router.get("/api/v1/units/:uuid", move |req| {
                me.timed("/api/v1/units/:uuid", || me.handle_unit(req))
            });
        }
        {
            let me = self.clone();
            router.get("/api/v1/usage/current", move |req| {
                me.timed("/api/v1/usage/current", || me.handle_usage(req, false))
            });
        }
        {
            let me = self.clone();
            router.get("/api/v1/usage/global", move |req| {
                me.timed("/api/v1/usage/global", || me.handle_usage(req, true))
            });
        }
        {
            let me = self.clone();
            router.get("/api/v1/verify", move |req| {
                me.timed("/api/v1/verify", || me.handle_verify(req))
            });
        }
        if self.trace_store.is_some() {
            {
                let me = self.clone();
                router.get("/api/v1/traces", move |req| {
                    me.timed("/api/v1/traces", || me.handle_traces(req))
                });
            }
            {
                let me = self.clone();
                router.get("/api/v1/traces/:id", move |req| {
                    me.timed("/api/v1/traces/:id", || me.handle_trace(req))
                });
            }
        }
        router
    }

    /// Serves on an ephemeral port.
    pub fn serve(self: &Arc<Self>) -> std::io::Result<HttpServer> {
        self.serve_with(ServerConfig::ephemeral())
    }

    /// Serves with explicit server tuning (connection caps, idle timeout,
    /// reactor threads — e.g. from the `http:` config section).
    pub fn serve_with(self: &Arc<Self>, config: ServerConfig) -> std::io::Result<HttpServer> {
        HttpServer::serve(config, self.router())
    }

    fn handle_units(&self, req: &Request) -> Response {
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        let target = req.query_param("user").unwrap_or(&requester).to_string();
        if target != requester && !self.is_admin(&requester) {
            return Response::error(Status::FORBIDDEN, "not your units");
        }
        let mut filters = vec![Filter::Eq("user".into(), target.as_str().into())];
        if let Some(project) = req.query_param("project") {
            filters.push(Filter::Eq("project".into(), project.into()));
        }
        let q = Query::all()
            .filter(Filter::And(filters))
            .order_by("submitted_at_ms", Order::Desc);
        let upd = self.updater.lock();
        match upd.db().query(UNITS_TABLE, &q) {
            Ok(rows) => {
                let units: Vec<Json> = rows.iter().map(|r| unit_to_json(r)).collect();
                Response::json(serde_json::to_vec(&json!({"units": units})).unwrap())
            }
            Err(e) => Response::error(Status::INTERNAL, e.to_string()),
        }
    }

    fn handle_unit(&self, req: &Request) -> Response {
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        let uuid = req.path_param("uuid").unwrap_or_default().to_string();
        let upd = self.updater.lock();
        match upd.db().get(UNITS_TABLE, &uuid.as_str().into()) {
            Ok(Some(row)) => {
                let owner = row[unit_cols::USER].as_text().unwrap_or("");
                if owner != requester && !self.is_admin(&requester) {
                    return Response::error(Status::FORBIDDEN, "not your unit");
                }
                Response::json(serde_json::to_vec(&unit_to_json(&row)).unwrap())
            }
            Ok(None) => Response::error(Status::NOT_FOUND, "no such unit"),
            Err(e) => Response::error(Status::INTERNAL, e.to_string()),
        }
    }

    fn handle_usage(&self, req: &Request, global: bool) -> Response {
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        if global && !self.is_admin(&requester) {
            return Response::error(Status::FORBIDDEN, "admin only");
        }
        let q = if global {
            Query::all()
        } else {
            Query::all().filter(Filter::Eq("user".into(), requester.as_str().into()))
        };
        let upd = self.updater.lock();
        match upd.db().query(USAGE_TABLE, &q) {
            Ok(rows) => {
                let usage: Vec<Json> = rows
                    .iter()
                    .map(|r| {
                        let (user, project, n, cpu_h, gpu_h, kwh, g) = usage_row_values(r);
                        json!({
                            "user": user,
                            "project": project,
                            "num_units": n,
                            "total_cpu_hours": cpu_h,
                            "total_gpu_hours": gpu_h,
                            "total_energy_kwh": kwh,
                            "total_emissions_g": g,
                        })
                    })
                    .collect();
                Response::json(serde_json::to_vec(&json!({"usage": usage})).unwrap())
            }
            Err(e) => Response::error(Status::INTERNAL, e.to_string()),
        }
    }

    /// `GET /api/v1/traces?endpoint=&min_ms=&tenant=&limit=` — stored
    /// trace summaries, newest first. Non-admins only see their own tenant.
    fn handle_traces(&self, req: &Request) -> Response {
        let Some(store) = &self.trace_store else {
            return Response::error(Status::NOT_FOUND, "trace store not configured");
        };
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        let tenant_param = req.query_param("tenant");
        let tenant = if self.is_admin(&requester) {
            tenant_param
        } else {
            match tenant_param {
                Some(t) if t != requester => {
                    return Response::error(Status::FORBIDDEN, "not your traces");
                }
                _ => Some(requester.as_str()),
            }
        };
        let min_ms = match req.query_param("min_ms") {
            Some(raw) => match raw.parse::<f64>() {
                Ok(v) => Some(v),
                Err(_) => return Response::error(Status::BAD_REQUEST, "bad min_ms"),
            },
            None => None,
        };
        let limit = match req.query_param("limit") {
            Some(raw) => match raw.parse::<usize>() {
                Ok(v) => v.min(1000),
                Err(_) => return Response::error(Status::BAD_REQUEST, "bad limit"),
            },
            None => 100,
        };
        let traces = store.list(req.query_param("endpoint"), min_ms, tenant, limit);
        Response::json(serde_json::to_vec(&json!({"traces": traces})).unwrap())
    }

    /// `GET /api/v1/traces/:id` — every component's span for the trace
    /// (the full stage breakdown). Non-admins may only read traces whose
    /// spans all belong to their own tenant.
    fn handle_trace(&self, req: &Request) -> Response {
        let Some(store) = &self.trace_store else {
            return Response::error(Status::NOT_FOUND, "trace store not configured");
        };
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        let id = req.path_param("id").unwrap_or_default().to_string();
        let Some(doc) = store.get(&id) else {
            return Response::error(Status::NOT_FOUND, "no such trace (sampled out or evicted)");
        };
        if !self.is_admin(&requester) {
            let owned = doc["spans"].as_array().is_some_and(|spans| {
                !spans.is_empty()
                    && spans.iter().all(|s| s["tenant"] == json!(requester))
            });
            if !owned {
                return Response::error(Status::FORBIDDEN, "not your trace");
            }
        }
        Response::json(serde_json::to_vec(&doc).unwrap())
    }

    fn handle_verify(&self, req: &Request) -> Response {
        let Some(requester) = grafana_user(req) else {
            return Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User");
        };
        let uuids = req.query_params("uuid");
        if uuids.is_empty() {
            return Response::error(Status::BAD_REQUEST, "missing uuid parameter");
        }
        if self.is_admin(&requester) {
            return Response::text("ok");
        }
        let upd = self.updater.lock();
        let all_owned = uuids
            .iter()
            .all(|uuid| verify_ownership_in_db(upd.db(), &requester, uuid));
        if all_owned {
            Response::text("ok")
        } else {
            Response::error(Status::FORBIDDEN, "unit not owned by user")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics_source::TsdbLocalSource;
    use crate::rm::{ResourceManagerClient, UnitInfo};
    use crate::updater::UpdaterConfig;
    use ceems_http::Client;
    use ceems_relstore::Db;
    use ceems_tsdb::Tsdb;

    struct FakeRm;

    impl ResourceManagerClient for FakeRm {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn units_since(&self, _since: i64) -> Vec<UnitInfo> {
            vec![
                UnitInfo {
                    uuid: "slurm-1".into(),
                    resource_manager: "slurm".into(),
                    user: "alice".into(),
                    project: "projA".into(),
                    partition: "cpu".into(),
                    state: "RUNNING".into(),
                    submitted_at_ms: 0,
                    started_at_ms: Some(1000),
                    ended_at_ms: None,
                    nnodes: 1,
                    ncpus: 8,
                    ngpus: 0,
                },
                UnitInfo {
                    uuid: "slurm-2".into(),
                    resource_manager: "slurm".into(),
                    user: "bob".into(),
                    project: "projB".into(),
                    partition: "gpu".into(),
                    state: "COMPLETED".into(),
                    submitted_at_ms: 0,
                    started_at_ms: Some(1000),
                    ended_at_ms: Some(2000),
                    nnodes: 1,
                    ncpus: 4,
                    ngpus: 2,
                },
            ]
        }
    }

    fn serve() -> (ceems_http::HttpServer, Arc<ApiServer>) {
        let dir = std::env::temp_dir().join(format!(
            "ceems-api-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            Arc::new(FakeRm),
            Arc::new(TsdbLocalSource::new(Arc::new(Tsdb::default()))),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(10_000).unwrap();
        let api = Arc::new(ApiServer::new(
            Arc::new(Mutex::new(upd)),
            vec!["root".to_string()],
        ));
        let server = api.serve().unwrap();
        (server, api)
    }

    fn get(url: &str, user: Option<&str>) -> ceems_http::Response {
        let mut c = Client::new();
        if let Some(u) = user {
            c = c.with_header("X-Grafana-User", u);
        }
        c.get(url).unwrap()
    }

    #[test]
    fn units_listing_scoped_to_requester() {
        let (server, _api) = serve();
        let resp = get(&format!("{}/api/v1/units", server.base_url()), Some("alice"));
        assert_eq!(resp.status, Status::OK);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["units"].as_array().unwrap().len(), 1);
        assert_eq!(v["units"][0]["uuid"], "slurm-1");

        // alice cannot list bob's units...
        let resp = get(
            &format!("{}/api/v1/units?user=bob", server.base_url()),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::FORBIDDEN);
        // ...but an admin can.
        let resp = get(
            &format!("{}/api/v1/units?user=bob", server.base_url()),
            Some("root"),
        );
        assert_eq!(resp.status, Status::OK);
        // No identity header → 401.
        let resp = get(&format!("{}/api/v1/units", server.base_url()), None);
        assert_eq!(resp.status, Status::UNAUTHORIZED);
        server.shutdown();
    }

    #[test]
    fn single_unit_access_control() {
        let (server, _api) = serve();
        let url = format!("{}/api/v1/units/slurm-2", server.base_url());
        assert_eq!(get(&url, Some("bob")).status, Status::OK);
        assert_eq!(get(&url, Some("alice")).status, Status::FORBIDDEN);
        assert_eq!(get(&url, Some("root")).status, Status::OK);
        let missing = format!("{}/api/v1/units/slurm-404", server.base_url());
        assert_eq!(get(&missing, Some("bob")).status, Status::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn usage_endpoints() {
        let (server, _api) = serve();
        let resp = get(
            &format!("{}/api/v1/usage/current", server.base_url()),
            Some("alice"),
        );
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["usage"].as_array().unwrap().len(), 1);
        assert_eq!(v["usage"][0]["user"], "alice");

        let resp = get(
            &format!("{}/api/v1/usage/global", server.base_url()),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::FORBIDDEN);
        let resp = get(
            &format!("{}/api/v1/usage/global", server.base_url()),
            Some("root"),
        );
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["usage"].as_array().unwrap().len(), 2);
        server.shutdown();
    }

    #[test]
    fn verify_endpoint() {
        let (server, _api) = serve();
        let base = server.base_url();
        assert_eq!(
            get(&format!("{base}/api/v1/verify?uuid=slurm-1"), Some("alice")).status,
            Status::OK
        );
        assert_eq!(
            get(&format!("{base}/api/v1/verify?uuid=slurm-2"), Some("alice")).status,
            Status::FORBIDDEN
        );
        // Multiple uuids: all must be owned.
        assert_eq!(
            get(
                &format!("{base}/api/v1/verify?uuid=slurm-1&uuid=slurm-2"),
                Some("alice")
            )
            .status,
            Status::FORBIDDEN
        );
        // Admin sees everything.
        assert_eq!(
            get(&format!("{base}/api/v1/verify?uuid=slurm-2"), Some("root")).status,
            Status::OK
        );
        assert_eq!(
            get(&format!("{base}/api/v1/verify"), Some("alice")).status,
            Status::BAD_REQUEST
        );
        server.shutdown();
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests_support::*;
    use ceems_http::Client;

    #[test]
    fn units_project_filter() {
        let (server, _api) = serve_two_users();
        let resp = Client::new()
            .with_header("X-Grafana-User", "alice")
            .get(&format!(
                "{}/api/v1/units?project=projA",
                server.base_url()
            ))
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["units"].as_array().unwrap().len(), 1);
        let resp = Client::new()
            .with_header("X-Grafana-User", "alice")
            .get(&format!(
                "{}/api/v1/units?project=doesnotexist",
                server.base_url()
            ))
            .unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["units"].as_array().unwrap().len(), 0);
        server.shutdown();
    }

    #[test]
    fn health_endpoint_is_public() {
        let (server, _api) = serve_two_users();
        let resp = Client::new()
            .get(&format!("{}/health", server.base_url()))
            .unwrap();
        assert_eq!(resp.status.0, 200);
        server.shutdown();
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::metrics_source::TsdbLocalSource;
    use crate::rm::{ResourceManagerClient, UnitInfo};
    use crate::updater::{Updater, UpdaterConfig};
    use ceems_relstore::Db;
    use ceems_tsdb::Tsdb;

    struct TwoUserRm;

    impl ResourceManagerClient for TwoUserRm {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn units_since(&self, _since: i64) -> Vec<UnitInfo> {
            let base = UnitInfo {
                uuid: String::new(),
                resource_manager: "slurm".into(),
                user: String::new(),
                project: String::new(),
                partition: "cpu".into(),
                state: "RUNNING".into(),
                submitted_at_ms: 0,
                started_at_ms: Some(1000),
                ended_at_ms: None,
                nnodes: 1,
                ncpus: 8,
                ngpus: 0,
            };
            vec![
                UnitInfo {
                    uuid: "slurm-1".into(),
                    user: "alice".into(),
                    project: "projA".into(),
                    ..base.clone()
                },
                UnitInfo {
                    uuid: "slurm-2".into(),
                    user: "alice".into(),
                    project: "projB".into(),
                    ..base
                },
            ]
        }
    }

    pub(crate) fn serve_two_users() -> (ceems_http::HttpServer, std::sync::Arc<ApiServer>) {
        let dir = std::env::temp_dir().join(format!(
            "ceems-api2-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            std::sync::Arc::new(TwoUserRm),
            std::sync::Arc::new(TsdbLocalSource::new(std::sync::Arc::new(Tsdb::default()))),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(10_000).unwrap();
        let api = std::sync::Arc::new(ApiServer::new(
            std::sync::Arc::new(parking_lot::Mutex::new(upd)),
            vec![],
        ));
        let server = api.serve().unwrap();
        (server, api)
    }
}
