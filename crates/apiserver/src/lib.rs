#![warn(missing_docs)]
//! CEEMS API server (S12 in `DESIGN.md`).
//!
//! §II.B.b: Prometheus is wrong for "total energy of a user over the last
//! year" queries, so CEEMS keeps per-unit aggregates in a relational DB and
//! serves them over an HTTP API. This crate reproduces that component:
//!
//! * [`schema`] — the unified compute-unit schema that abstracts resource
//!   managers (SLURM jobs, Openstack VMs and k8s pods all map onto it).
//! * [`rm`] — the resource-manager client trait + the SLURM implementation
//!   over the simulated `slurmdbd`.
//! * [`openstack`] — a Nova-backed client (the paper's §IV future work),
//!   proving the unified schema is genuinely resource-manager agnostic.
//! * [`metrics_source`] — how aggregate metrics are fetched from the TSDB:
//!   in-process or through the Prometheus HTTP API.
//! * [`updater`] — the single-writer poll loop: fetch changed units, query
//!   the TSDB for their aggregates, upsert rows, roll up usage, and run the
//!   §II.C cardinality cleanup of short units.
//! * [`api`] — the HTTP API (`/api/v1/units`, `/usage`, `/verify` for the
//!   load balancer's ownership checks).

pub mod api;
pub mod metrics_source;
pub mod openstack;
pub mod rm;
pub mod schema;
pub mod updater;

pub use api::ApiServer;
pub use metrics_source::{MetricSource, PromHttpSource, TsdbLocalSource};
pub use rm::{ResourceManagerClient, SlurmRmClient, UnitInfo};
pub use updater::{Updater, UpdaterConfig};
