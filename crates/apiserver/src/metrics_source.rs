//! How the API server fetches aggregate metrics from the TSDB.
//!
//! The real API server speaks the Prometheus HTTP API; the simulation can
//! also query the TSDB in-process. Both implement [`MetricSource`], and the
//! HTTP implementation is exercised in tests against the real
//! [`ceems_tsdb::httpapi`] server so the JSON path stays honest.

use std::sync::Arc;

use ceems_http::Client;
use ceems_metrics::labels::{LabelSet, LabelSetBuilder};
use ceems_tsdb::promql::{instant_query, parse_expr, Value};
use ceems_tsdb::Tsdb;

/// An instant-query interface.
pub trait MetricSource: Send + Sync {
    /// Evaluates `query` at `t_ms`; returns the instant vector (empty on
    /// error — the updater treats missing metrics as "not yet available").
    fn instant(&self, query: &str, t_ms: i64) -> Vec<(LabelSet, f64)>;

    /// Convenience: the single scalar value of a query, if it returned
    /// exactly one sample.
    fn scalar(&self, query: &str, t_ms: i64) -> Option<f64> {
        let v = self.instant(query, t_ms);
        if v.len() == 1 {
            Some(v[0].1)
        } else {
            None
        }
    }
}

/// In-process source over a shared TSDB.
pub struct TsdbLocalSource {
    db: Arc<Tsdb>,
}

impl TsdbLocalSource {
    /// Creates the source.
    pub fn new(db: Arc<Tsdb>) -> TsdbLocalSource {
        TsdbLocalSource { db }
    }
}

impl MetricSource for TsdbLocalSource {
    fn instant(&self, query: &str, t_ms: i64) -> Vec<(LabelSet, f64)> {
        let Ok(expr) = parse_expr(query) else {
            return Vec::new();
        };
        match instant_query(self.db.as_ref(), &expr, t_ms) {
            Ok(Value::Vector(v)) => v,
            Ok(Value::Scalar(s)) => vec![(LabelSet::empty(), s)],
            _ => Vec::new(),
        }
    }
}

/// HTTP source speaking the Prometheus API. Transport failures are retried
/// under a short jittered backoff (a TSDB restarting between two updater
/// polls should cost nothing); only when the retries run out does the
/// source report "no data" and let the updater's next poll try again.
pub struct PromHttpSource {
    client: Client,
    base_url: String,
    retry: ceems_http::resilience::RetryPolicy,
}

impl PromHttpSource {
    /// Creates the source against e.g. `http://127.0.0.1:9090`.
    pub fn new(base_url: impl Into<String>) -> PromHttpSource {
        PromHttpSource {
            client: Client::new(),
            base_url: base_url.into(),
            retry: ceems_http::resilience::RetryPolicy::new(2).with_backoff(
                std::time::Duration::from_millis(20),
                std::time::Duration::from_millis(100),
            ),
        }
    }

    /// Replaces the HTTP client (tests inject fault-plan-wrapped clients).
    pub fn with_client(mut self, client: Client) -> PromHttpSource {
        self.client = client;
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: ceems_http::resilience::RetryPolicy) -> PromHttpSource {
        self.retry = retry;
        self
    }
}

impl MetricSource for PromHttpSource {
    fn instant(&self, query: &str, t_ms: i64) -> Vec<(LabelSet, f64)> {
        let url = format!(
            "{}/api/v1/query?query={}&time={}",
            self.base_url,
            ceems_http::url::encode_component(query),
            t_ms as f64 / 1000.0
        );
        let Ok(resp) = self.retry.run(|_| self.client.get(&url)) else {
            return Vec::new();
        };
        let Ok(json) = serde_json::from_slice::<serde_json::Value>(&resp.body) else {
            return Vec::new();
        };
        if json["status"] != "success" {
            return Vec::new();
        }
        let data = &json["data"];
        match data["resultType"].as_str() {
            Some("vector") => data["result"]
                .as_array()
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|item| {
                            let mut b = LabelSetBuilder::new();
                            for (k, v) in item["metric"].as_object()? {
                                b = b.label(k.clone(), v.as_str()?.to_string());
                            }
                            let val: f64 = item["value"].get(1)?.as_str()?.parse().ok()?;
                            Some((b.build(), val))
                        })
                        .collect()
                })
                .unwrap_or_default(),
            Some("scalar") => data["result"]
                .get(1)
                .and_then(|v| v.as_str())
                .and_then(|s| s.parse().ok())
                .map(|v| vec![(LabelSet::empty(), v)])
                .unwrap_or_default(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{HttpServer, ServerConfig};
    use ceems_metrics::labels;
    use ceems_tsdb::httpapi::api_router;

    fn db() -> Arc<Tsdb> {
        let db = Arc::new(Tsdb::default());
        for i in 0..10i64 {
            db.append(
                &labels! {"__name__" => "watts", "uuid" => "slurm-1"},
                i * 15_000,
                100.0,
            );
        }
        db
    }

    #[test]
    fn local_source() {
        let src = TsdbLocalSource::new(db());
        let v = src.instant("watts", 150_000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 100.0);
        assert_eq!(src.scalar("sum(watts)", 150_000), Some(100.0));
        assert!(src.instant("bad{{{", 0).is_empty());
        assert_eq!(src.scalar("nonexistent_metric", 150_000), None);
    }

    #[test]
    fn http_source_round_trips_through_real_api() {
        let db = db();
        let router = api_router(db.clone(), Arc::new(|| 150_000));
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        let src = PromHttpSource::new(server.base_url());

        let v = src.instant("watts{uuid=\"slurm-1\"}", 150_000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0.get("uuid"), Some("slurm-1"));
        assert_eq!(v[0].1, 100.0);

        // Scalar result type.
        let v = src.instant("scalar(sum(watts))", 150_000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 100.0);

        // Errors come back empty.
        assert!(src.instant("rate(watts)", 150_000).is_empty());
        server.shutdown();
    }

    #[test]
    fn http_source_with_dead_backend_is_empty() {
        let src = PromHttpSource::new("http://127.0.0.1:1");
        assert!(src.instant("up", 0).is_empty());
    }
}
