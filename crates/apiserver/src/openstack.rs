//! OpenStack resource-manager client — §IV's "extending CEEMS to
//! Openstack ... is a long-term objective", implemented against a
//! simulated Nova service.
//!
//! The point of the exercise is the paper's agnosticism claim: the API
//! server's unified schema must absorb VMs unchanged. A VM maps onto a
//! compute unit as `openstack-<uuid>` with its flavor's vCPU/RAM shape and
//! its project as the account; Nova states map onto the unified lifecycle
//! states the rest of the stack understands.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rm::{ResourceManagerClient, UnitInfo};

/// A Nova flavor.
#[derive(Clone, Debug)]
pub struct Flavor {
    /// Flavor name (`m1.large`).
    pub name: String,
    /// vCPUs.
    pub vcpus: usize,
    /// RAM in bytes.
    pub ram_bytes: u64,
}

/// Nova VM states we simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmState {
    /// Building (scheduler picked a host, image copying).
    Build,
    /// Running.
    Active,
    /// Stopped by the user (still allocated).
    Shutoff,
    /// Deleted.
    Deleted,
    /// Failed to build.
    Error,
}

impl VmState {
    /// Maps Nova states onto the unified lifecycle strings the CEEMS
    /// schema uses (this mapping *is* the abstraction layer).
    pub fn unified(self) -> &'static str {
        match self {
            VmState::Build => "PENDING",
            VmState::Active | VmState::Shutoff => "RUNNING",
            VmState::Deleted => "COMPLETED",
            VmState::Error => "FAILED",
        }
    }
}

#[derive(Clone, Debug)]
struct Vm {
    uuid: String,
    user: String,
    project: String,
    flavor: Flavor,
    state: VmState,
    created_ms: i64,
    launched_ms: Option<i64>,
    deleted_ms: Option<i64>,
    /// Drawn at creation: when this VM will be deleted.
    lifetime_ms: i64,
    updated_ms: i64,
}

/// A simulated Nova service: VMs are created on a Poisson-ish schedule and
/// deleted after their drawn lifetime. [`OpenStackSim::tick`] advances the
/// world; [`ResourceManagerClient`] is implemented over the inventory.
pub struct OpenStackSim {
    inner: Mutex<Inner>,
}

struct Inner {
    vms: Vec<Vm>,
    rng: StdRng,
    next_create_ms: i64,
    mean_creates_per_hour: f64,
    users: usize,
    projects: usize,
    serial: u64,
}

/// Standard flavors.
pub fn default_flavors() -> Vec<Flavor> {
    vec![
        Flavor {
            name: "m1.small".into(),
            vcpus: 2,
            ram_bytes: 4 << 30,
        },
        Flavor {
            name: "m1.large".into(),
            vcpus: 8,
            ram_bytes: 16 << 30,
        },
        Flavor {
            name: "r1.xlarge".into(),
            vcpus: 16,
            ram_bytes: 64 << 30,
        },
    ]
}

impl OpenStackSim {
    /// Creates the service.
    pub fn new(users: usize, projects: usize, mean_creates_per_hour: f64, seed: u64) -> Self {
        OpenStackSim {
            inner: Mutex::new(Inner {
                vms: Vec::new(),
                rng: StdRng::seed_from_u64(seed),
                next_create_ms: 0,
                mean_creates_per_hour,
                users,
                projects,
                serial: 0,
            }),
        }
    }

    /// Advances the world to `now_ms`: creates due VMs, transitions
    /// Build→Active/Error, retires expired ones.
    pub fn tick(&self, now_ms: i64) {
        let mut st = self.inner.lock();
        // Creations.
        while st.next_create_ms <= now_ms {
            let at = st.next_create_ms;
            let (users, projects) = (st.users, st.projects);
            let user_id = st.rng.gen_range(0..users);
            let project_id = user_id % projects;
            let flavors = default_flavors();
            let fi = st.rng.gen_range(0..flavors.len());
            let flavor = flavors[fi].clone();
            // VM lifetimes are long-tailed: 10 min .. ~1 week, log-uniform.
            let lifetime_ms =
                (st.rng.gen_range((600.0f64).ln()..(604_800.0f64).ln()).exp() * 1000.0) as i64;
            st.serial += 1;
            let uuid = format!("openstack-{:08x}", st.serial * 2654435761 % u32::MAX as u64);
            st.vms.push(Vm {
                uuid,
                user: format!("osuser{user_id:02}"),
                project: format!("osproj{project_id:02}"),
                flavor,
                state: VmState::Build,
                created_ms: at,
                launched_ms: None,
                deleted_ms: None,
                lifetime_ms,
                updated_ms: at,
            });
            let rate_per_ms = st.mean_creates_per_hour / 3.6e6;
            let u: f64 = st.rng.gen_range(1e-9..1.0);
            st.next_create_ms = at + ((-u.ln() / rate_per_ms) as i64).max(1);
        }
        // Transitions.
        for vm in st.vms.iter_mut() {
            match vm.state {
                VmState::Build if now_ms - vm.created_ms >= 30_000 => {
                    // 3% of builds fail; the rest launch after ~30 s.
                    vm.state = if vm.created_ms % 97 == 0 {
                        VmState::Error
                    } else {
                        VmState::Active
                    };
                    vm.launched_ms = Some(now_ms);
                    vm.updated_ms = now_ms;
                }
                VmState::Active => {
                    if let Some(launched) = vm.launched_ms {
                        if now_ms - launched >= vm.lifetime_ms {
                            vm.state = VmState::Deleted;
                            vm.deleted_ms = Some(now_ms);
                            vm.updated_ms = now_ms;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Number of VMs ever created.
    pub fn vm_count(&self) -> usize {
        self.inner.lock().vms.len()
    }

    /// Number of VMs currently ACTIVE.
    pub fn active_count(&self) -> usize {
        self.inner
            .lock()
            .vms
            .iter()
            .filter(|v| v.state == VmState::Active)
            .count()
    }
}

impl ResourceManagerClient for Arc<OpenStackSim> {
    fn name(&self) -> &'static str {
        "openstack"
    }

    fn units_since(&self, since_ms: i64) -> Vec<UnitInfo> {
        let st = self.inner.lock();
        st.vms
            .iter()
            .filter(|v| {
                // Same poll contract as SLURM: non-terminal always, terminal
                // by watermark.
                !matches!(v.state, VmState::Deleted | VmState::Error) || v.updated_ms >= since_ms
            })
            .map(|v| UnitInfo {
                uuid: v.uuid.clone(),
                resource_manager: "openstack".into(),
                user: v.user.clone(),
                project: v.project.clone(),
                partition: v.flavor.name.clone(),
                state: v.state.unified().into(),
                submitted_at_ms: v.created_ms,
                started_at_ms: v.launched_ms,
                ended_at_ms: v.deleted_ms,
                nnodes: 1,
                ncpus: v.flavor.vcpus,
                ngpus: 0,
                // Memory is carried via the flavor name; the unified schema
                // tracks cpu/gpu shapes numerically.
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics_source::TsdbLocalSource;
    use crate::schema::{unit_cols, UNITS_TABLE};
    use crate::updater::{Updater, UpdaterConfig};
    use ceems_relstore::{Db, Query};
    use ceems_tsdb::Tsdb;

    #[test]
    fn vm_lifecycle() {
        let os = Arc::new(OpenStackSim::new(5, 2, 600.0, 42));
        os.tick(0);
        os.tick(3_600_000); // one hour
        assert!(os.vm_count() > 100, "created {}", os.vm_count());
        assert!(os.active_count() > 0);

        let units = os.units_since(0);
        assert_eq!(units.len(), os.vm_count());
        let u = &units[0];
        assert!(u.uuid.starts_with("openstack-"));
        assert_eq!(u.resource_manager, "openstack");
        assert!(u.partition.starts_with("m1.") || u.partition.starts_with("r1."));
        // Unified states only.
        for u in &units {
            assert!(
                ["PENDING", "RUNNING", "COMPLETED", "FAILED"].contains(&u.state.as_str()),
                "unexpected state {}",
                u.state
            );
        }
    }

    #[test]
    fn state_mapping() {
        assert_eq!(VmState::Build.unified(), "PENDING");
        assert_eq!(VmState::Active.unified(), "RUNNING");
        assert_eq!(VmState::Shutoff.unified(), "RUNNING");
        assert_eq!(VmState::Deleted.unified(), "COMPLETED");
        assert_eq!(VmState::Error.unified(), "FAILED");
    }

    #[test]
    fn updater_ingests_vms_through_unified_schema() {
        // The agnosticism claim end-to-end: the same updater code path that
        // ingests SLURM jobs ingests Nova VMs.
        let os = Arc::new(OpenStackSim::new(4, 2, 300.0, 7));
        os.tick(1_800_000);
        let dir = std::env::temp_dir().join(format!(
            "ceems-osm-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            Arc::new(os.clone()),
            Arc::new(TsdbLocalSource::new(Arc::new(Tsdb::default()))),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(1_800_000).unwrap();

        let rows = upd.db().query(UNITS_TABLE, &Query::all()).unwrap();
        assert_eq!(rows.len(), os.vm_count());
        assert!(rows
            .iter()
            .all(|r| r[unit_cols::RESOURCE_MANAGER].as_text() == Some("openstack")));
        // Ownership verification works identically for VMs.
        let owner = rows[0][unit_cols::USER].as_text().unwrap().to_string();
        let uuid = rows[0][unit_cols::UUID].as_text().unwrap().to_string();
        assert!(upd.verify_ownership(&owner, &uuid));
        assert!(!upd.verify_ownership("stranger", &uuid));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn poll_contract_matches_slurm_semantics() {
        let os = Arc::new(OpenStackSim::new(3, 1, 1200.0, 9));
        // Two hours in one-minute ticks: plenty of short-lived VMs retire.
        for m in 0..=120 {
            os.tick(m * 60_000);
        }
        let client = Arc::new(os.clone());
        let all = client.units_since(0);
        let deleted: Vec<_> = all.iter().filter(|u| u.state == "COMPLETED").collect();
        assert!(!deleted.is_empty(), "no VM retired in two hours");
        // A poll far past the last update drops terminal VMs but keeps
        // live ones.
        let later = client.units_since(i64::MAX / 2);
        assert!(later.len() < all.len());
        assert!(later.iter().all(|u| u.state == "RUNNING" || u.state == "PENDING"));
    }
}
