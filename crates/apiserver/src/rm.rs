//! Resource-manager clients.
//!
//! CEEMS is resource-manager agnostic: the API server only needs "what
//! units changed since T". [`ResourceManagerClient`] is that contract;
//! [`SlurmRmClient`] implements it over the simulated `slurmdbd`.

use std::sync::Arc;

use parking_lot::Mutex;

use ceems_slurm::{JobRecord, Scheduler};

/// A unit as reported by a resource manager.
#[derive(Clone, Debug)]
pub struct UnitInfo {
    /// Unique identifier (`slurm-<id>`, `openstack-<uuid>`, ...).
    pub uuid: String,
    /// Resource manager name.
    pub resource_manager: String,
    /// Owner.
    pub user: String,
    /// Project / account.
    pub project: String,
    /// Partition (or availability zone / namespace).
    pub partition: String,
    /// State string.
    pub state: String,
    /// Submit time (ms).
    pub submitted_at_ms: i64,
    /// Start time (ms).
    pub started_at_ms: Option<i64>,
    /// End time (ms).
    pub ended_at_ms: Option<i64>,
    /// Nodes allocated.
    pub nnodes: usize,
    /// Total cores.
    pub ncpus: usize,
    /// Total GPUs.
    pub ngpus: usize,
}

/// "List changed units" — the only thing the API server needs.
pub trait ResourceManagerClient: Send + Sync {
    /// Resource manager name.
    fn name(&self) -> &'static str;

    /// Units created/updated at or after `since_ms`.
    fn units_since(&self, since_ms: i64) -> Vec<UnitInfo>;
}

/// SLURM implementation over the simulated scheduler's accounting DB.
pub struct SlurmRmClient {
    scheduler: Arc<Mutex<Scheduler>>,
}

impl SlurmRmClient {
    /// Creates the client.
    pub fn new(scheduler: Arc<Mutex<Scheduler>>) -> SlurmRmClient {
        SlurmRmClient { scheduler }
    }

    fn to_unit(rec: &JobRecord) -> UnitInfo {
        UnitInfo {
            uuid: rec.uuid.clone(),
            resource_manager: "slurm".to_string(),
            user: rec.user.clone(),
            project: rec.account.clone(),
            partition: rec.partition.clone(),
            state: rec.state.as_str().to_string(),
            submitted_at_ms: rec.submitted_ms,
            started_at_ms: rec.started_ms,
            ended_at_ms: rec.ended_ms,
            nnodes: rec.nodes,
            ncpus: rec.total_cores(),
            ngpus: rec.total_gpus(),
        }
    }
}

impl ResourceManagerClient for SlurmRmClient {
    fn name(&self) -> &'static str {
        "slurm"
    }

    fn units_since(&self, since_ms: i64) -> Vec<UnitInfo> {
        self.scheduler
            .lock()
            .dbd()
            .jobs_since(since_ms)
            .iter()
            .map(Self::to_unit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::{ClusterSpec, SimClock, SimCluster, WorkloadProfile};
    use ceems_slurm::{JobRequest, Partition};

    #[test]
    fn slurm_client_maps_records() {
        let cluster = SimCluster::build(&ClusterSpec::small(), SimClock::new(), 1);
        let sched = Arc::new(Mutex::new(Scheduler::new(
            vec![Partition::new(
                "cpu",
                cluster.nodes().to_vec(),
                72 * 3600,
            )],
            1,
        )));
        sched
            .lock()
            .submit(
                JobRequest {
                    user: "alice".into(),
                    account: "projx".into(),
                    partition: "cpu".into(),
                    nodes: 2,
                    cores_per_node: 4,
                    memory_per_node: 8 << 30,
                    gpus_per_node: 0,
                    walltime_s: 3600,
                    workload: WorkloadProfile::Idle,
                },
                1000,
            )
            .unwrap();
        sched.lock().tick(1000);

        let client = SlurmRmClient::new(sched.clone());
        assert_eq!(client.name(), "slurm");
        let units = client.units_since(0);
        assert_eq!(units.len(), 1);
        let u = &units[0];
        assert_eq!(u.uuid, "slurm-1");
        assert_eq!(u.user, "alice");
        assert_eq!(u.project, "projx");
        assert_eq!(u.state, "RUNNING");
        assert_eq!(u.ncpus, 8);
        assert_eq!(u.nnodes, 2);
        // Running units poll on every pass (their aggregates keep moving);
        // only terminal units respect the watermark.
        assert_eq!(client.units_since(5_000).len(), 1);
    }
}
