//! The unified compute-unit schema.
//!
//! One row per compute unit regardless of resource manager — the
//! abstraction layer §II.B.b describes. Aggregate metric columns are
//! nullable: they fill in as the updater computes them.

use ceems_relstore::{Column, ColumnType, Db, DbError, Schema};

/// Units table name.
pub const UNITS_TABLE: &str = "units";
/// Usage (per user+project rollup) table name.
pub const USAGE_TABLE: &str = "usage";

/// Column order of the units table (indices used throughout the crate).
pub mod unit_cols {
    /// `uuid` (TEXT, pk)
    pub const UUID: usize = 0;
    /// `resource_manager` (TEXT)
    pub const RESOURCE_MANAGER: usize = 1;
    /// `user` (TEXT, indexed)
    pub const USER: usize = 2;
    /// `project` (TEXT, indexed)
    pub const PROJECT: usize = 3;
    /// `partition` (TEXT)
    pub const PARTITION: usize = 4;
    /// `state` (TEXT)
    pub const STATE: usize = 5;
    /// `submitted_at_ms` (INT)
    pub const SUBMITTED_AT: usize = 6;
    /// `started_at_ms` (INT, nullable)
    pub const STARTED_AT: usize = 7;
    /// `ended_at_ms` (INT, nullable)
    pub const ENDED_AT: usize = 8;
    /// `elapsed_s` (REAL)
    pub const ELAPSED_S: usize = 9;
    /// `nnodes` (INT)
    pub const NNODES: usize = 10;
    /// `ncpus` (INT, total cores)
    pub const NCPUS: usize = 11;
    /// `ngpus` (INT, total gpus)
    pub const NGPUS: usize = 12;
    /// `avg_cpu_usage_pct` (REAL, nullable)
    pub const AVG_CPU_USAGE: usize = 13;
    /// `avg_mem_bytes` (REAL, nullable)
    pub const AVG_MEM: usize = 14;
    /// `avg_gpu_usage_pct` (REAL, nullable)
    pub const AVG_GPU_USAGE: usize = 15;
    /// `total_energy_kwh` (REAL, nullable)
    pub const ENERGY_KWH: usize = 16;
    /// `total_emissions_g` (REAL, nullable)
    pub const EMISSIONS_G: usize = 17;
    /// `updated_at_ms` (INT)
    pub const UPDATED_AT: usize = 18;
    /// Number of columns.
    pub const COUNT: usize = 19;
}

/// Builds the units table schema.
pub fn units_schema() -> Schema {
    Schema::new(
        vec![
            Column::required("uuid", ColumnType::Text),
            Column::required("resource_manager", ColumnType::Text),
            Column::required("user", ColumnType::Text),
            Column::required("project", ColumnType::Text),
            Column::required("partition", ColumnType::Text),
            Column::required("state", ColumnType::Text),
            Column::required("submitted_at_ms", ColumnType::Int),
            Column::nullable("started_at_ms", ColumnType::Int),
            Column::nullable("ended_at_ms", ColumnType::Int),
            Column::required("elapsed_s", ColumnType::Real),
            Column::required("nnodes", ColumnType::Int),
            Column::required("ncpus", ColumnType::Int),
            Column::required("ngpus", ColumnType::Int),
            Column::nullable("avg_cpu_usage_pct", ColumnType::Real),
            Column::nullable("avg_mem_bytes", ColumnType::Real),
            Column::nullable("avg_gpu_usage_pct", ColumnType::Real),
            Column::nullable("total_energy_kwh", ColumnType::Real),
            Column::nullable("total_emissions_g", ColumnType::Real),
            Column::required("updated_at_ms", ColumnType::Int),
        ],
        "uuid",
        &["user", "project"],
    )
    .expect("units schema is valid")
}

/// Usage-rollup columns.
pub mod usage_cols {
    /// `key` = `user|project` (TEXT, pk)
    pub const KEY: usize = 0;
    /// `user` (TEXT, indexed)
    pub const USER: usize = 1;
    /// `project` (TEXT, indexed)
    pub const PROJECT: usize = 2;
    /// `num_units` (INT)
    pub const NUM_UNITS: usize = 3;
    /// `total_cpu_hours` (REAL) — core-hours consumed
    pub const CPU_HOURS: usize = 4;
    /// `total_gpu_hours` (REAL)
    pub const GPU_HOURS: usize = 5;
    /// `total_energy_kwh` (REAL)
    pub const ENERGY_KWH: usize = 6;
    /// `total_emissions_g` (REAL)
    pub const EMISSIONS_G: usize = 7;
    /// `updated_at_ms` (INT)
    pub const UPDATED_AT: usize = 8;
}

/// Builds the usage table schema.
pub fn usage_schema() -> Schema {
    Schema::new(
        vec![
            Column::required("key", ColumnType::Text),
            Column::required("user", ColumnType::Text),
            Column::required("project", ColumnType::Text),
            Column::required("num_units", ColumnType::Int),
            Column::required("total_cpu_hours", ColumnType::Real),
            Column::required("total_gpu_hours", ColumnType::Real),
            Column::required("total_energy_kwh", ColumnType::Real),
            Column::required("total_emissions_g", ColumnType::Real),
            Column::required("updated_at_ms", ColumnType::Int),
        ],
        "key",
        &["user", "project"],
    )
    .expect("usage schema is valid")
}

/// Creates both tables in a database.
pub fn create_tables(db: &mut Db) -> Result<(), DbError> {
    db.create_table(UNITS_TABLE, units_schema())?;
    db.create_table(USAGE_TABLE, usage_schema())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_relstore::Value;

    #[test]
    fn schemas_build_and_tables_create() {
        let dir = std::env::temp_dir().join(format!(
            "ceems-apischema-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut db = Db::open(&dir).unwrap();
        create_tables(&mut db).unwrap();
        assert_eq!(db.table_names(), vec!["units", "usage"]);
        assert_eq!(units_schema().columns.len(), unit_cols::COUNT);
        // A minimal valid row inserts.
        let mut row = vec![Value::Null; unit_cols::COUNT];
        row[unit_cols::UUID] = "slurm-1".into();
        row[unit_cols::RESOURCE_MANAGER] = "slurm".into();
        row[unit_cols::USER] = "alice".into();
        row[unit_cols::PROJECT] = "proj".into();
        row[unit_cols::PARTITION] = "cpu".into();
        row[unit_cols::STATE] = "RUNNING".into();
        row[unit_cols::SUBMITTED_AT] = Value::Int(0);
        row[unit_cols::ELAPSED_S] = Value::Real(0.0);
        row[unit_cols::NNODES] = Value::Int(1);
        row[unit_cols::NCPUS] = Value::Int(8);
        row[unit_cols::NGPUS] = Value::Int(0);
        row[unit_cols::UPDATED_AT] = Value::Int(0);
        db.upsert(UNITS_TABLE, row).unwrap();
        assert_eq!(db.table(UNITS_TABLE).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
