//! The updater: the API server's single writer.
//!
//! On each poll it (1) fetches units that changed since the last poll from
//! the resource manager, (2) queries the TSDB for each unit's aggregate
//! metrics, (3) upserts rows, (4) recomputes per-user/project usage
//! rollups, and (5) applies the §II.C cardinality cleanup: units that
//! lived shorter than the cutoff get their TSDB series deleted.

use std::collections::BTreeSet;
use std::sync::Arc;

use ceems_relstore::{Db, DbError, Filter, Value};
use ceems_tsdb::Tsdb;

use crate::metrics_source::MetricSource;
use crate::rm::{ResourceManagerClient, UnitInfo};
use crate::schema::{create_tables, unit_cols, usage_cols, UNITS_TABLE, USAGE_TABLE};

/// Admin access to the TSDB (series deletion).
pub trait TsdbAdmin: Send + Sync {
    /// Deletes all series carrying `uuid="<uuid>"`. Returns series deleted.
    fn delete_unit_series(&self, uuid: &str) -> usize;
}

impl TsdbAdmin for Arc<Tsdb> {
    fn delete_unit_series(&self, uuid: &str) -> usize {
        let m = ceems_metrics::matcher::LabelMatcher::eq("uuid", uuid);
        self.delete_series(&[m])
    }
}

/// HTTP implementation against the Prometheus admin API.
pub struct HttpTsdbAdmin {
    client: ceems_http::Client,
    base_url: String,
}

impl HttpTsdbAdmin {
    /// Creates the admin client.
    pub fn new(base_url: impl Into<String>) -> HttpTsdbAdmin {
        HttpTsdbAdmin {
            client: ceems_http::Client::new(),
            base_url: base_url.into(),
        }
    }
}

impl TsdbAdmin for HttpTsdbAdmin {
    fn delete_unit_series(&self, uuid: &str) -> usize {
        let selector = format!("{{uuid=\"{uuid}\"}}");
        let url = format!(
            "{}/api/v1/admin/tsdb/delete_series?match[]={}",
            self.base_url,
            ceems_http::url::encode_component(&selector)
        );
        let Ok(resp) = self.client.post(&url, Vec::new(), "application/json") else {
            return 0;
        };
        serde_json::from_slice::<serde_json::Value>(&resp.body)
            .ok()
            .and_then(|v| v["data"]["deletedSeries"].as_u64())
            .unwrap_or(0) as usize
    }
}

/// Updater configuration.
#[derive(Clone, Debug)]
pub struct UpdaterConfig {
    /// Metric holding per-unit power in watts (the recording-rule output of
    /// Eq. (1)); must carry a `uuid` label.
    pub power_metric: String,
    /// Query returning the current emission factor (gCO₂e/kWh) as a single
    /// series/scalar.
    pub emission_factor_query: String,
    /// Units shorter than this (seconds) are purged from the TSDB when they
    /// reach a terminal state.
    pub cleanup_cutoff_s: f64,
}

impl Default for UpdaterConfig {
    fn default() -> Self {
        UpdaterConfig {
            power_metric: "uuid:ceems_power:watts".to_string(),
            emission_factor_query:
                "avg(ceems_emissions_gCo2_kWh{provider=\"rte\"})".to_string(),
            cleanup_cutoff_s: 0.0,
        }
    }
}

/// Poll statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdaterStats {
    /// Units upserted across all polls.
    pub units_upserted: u64,
    /// TSDB series deleted by the cardinality cleanup.
    pub series_deleted: u64,
    /// Units purged (their short life fell under the cutoff).
    pub units_purged: u64,
}

/// The updater.
pub struct Updater {
    db: Db,
    rm: Arc<dyn ResourceManagerClient>,
    metrics: Arc<dyn MetricSource>,
    tsdb_admin: Option<Arc<dyn TsdbAdmin>>,
    config: UpdaterConfig,
    last_poll_ms: i64,
    purged: BTreeSet<String>,
    stats: UpdaterStats,
}

impl Updater {
    /// Creates an updater owning the relational DB.
    pub fn new(
        mut db: Db,
        rm: Arc<dyn ResourceManagerClient>,
        metrics: Arc<dyn MetricSource>,
        tsdb_admin: Option<Arc<dyn TsdbAdmin>>,
        config: UpdaterConfig,
    ) -> Result<Updater, DbError> {
        create_tables(&mut db)?;
        Ok(Updater {
            db,
            rm,
            metrics,
            tsdb_admin,
            config,
            last_poll_ms: 0,
            purged: BTreeSet::new(),
            stats: UpdaterStats::default(),
        })
    }

    /// Read access to the DB (the API layer and the LB's direct-DB checks).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Mutable DB access (snapshotting, backups).
    pub fn db_mut(&mut self) -> &mut Db {
        &mut self.db
    }

    /// Statistics so far.
    pub fn stats(&self) -> UpdaterStats {
        self.stats
    }

    /// One poll at simulated time `now_ms`.
    pub fn poll(&mut self, now_ms: i64) -> Result<(), DbError> {
        // Small overlap so boundary updates are never missed; upserts are
        // idempotent.
        let since = (self.last_poll_ms - 1000).max(0);
        let units = self.rm.units_since(since);
        for unit in units {
            let row = self.unit_row(&unit, now_ms);
            self.db.upsert(UNITS_TABLE, row)?;
            self.stats.units_upserted += 1;
            self.maybe_cleanup(&unit);
        }
        self.recompute_usage(now_ms)?;
        self.last_poll_ms = now_ms;
        Ok(())
    }

    fn unit_row(&self, u: &UnitInfo, now_ms: i64) -> Vec<Value> {
        let end_ms = u.ended_at_ms.unwrap_or(now_ms);
        let elapsed_s = u
            .started_at_ms
            .map(|s| ((end_ms - s).max(0)) as f64 / 1000.0)
            .unwrap_or(0.0);

        let mut row = vec![Value::Null; unit_cols::COUNT];
        row[unit_cols::UUID] = u.uuid.as_str().into();
        row[unit_cols::RESOURCE_MANAGER] = u.resource_manager.as_str().into();
        row[unit_cols::USER] = u.user.as_str().into();
        row[unit_cols::PROJECT] = u.project.as_str().into();
        row[unit_cols::PARTITION] = u.partition.as_str().into();
        row[unit_cols::STATE] = u.state.as_str().into();
        row[unit_cols::SUBMITTED_AT] = Value::Int(u.submitted_at_ms);
        row[unit_cols::STARTED_AT] = u.started_at_ms.map(Value::Int).unwrap_or(Value::Null);
        row[unit_cols::ENDED_AT] = u.ended_at_ms.map(Value::Int).unwrap_or(Value::Null);
        row[unit_cols::ELAPSED_S] = Value::Real(elapsed_s);
        row[unit_cols::NNODES] = Value::Int(u.nnodes as i64);
        row[unit_cols::NCPUS] = Value::Int(u.ncpus as i64);
        row[unit_cols::NGPUS] = Value::Int(u.ngpus as i64);
        row[unit_cols::UPDATED_AT] = Value::Int(now_ms);

        // Aggregate metrics need a started unit and a usable window.
        if u.started_at_ms.is_none() || elapsed_s < 30.0 {
            return row;
        }
        let window_s = (elapsed_s as i64).max(60);
        let uuid = &u.uuid;

        // CPU usage %: counter increase over the window vs core-seconds.
        let cpu_q = format!(
            "sum(increase(ceems_compute_unit_cpu_user_seconds_total{{uuid=\"{uuid}\"}}[{window_s}s])) + sum(increase(ceems_compute_unit_cpu_system_seconds_total{{uuid=\"{uuid}\"}}[{window_s}s]))"
        );
        if let Some(cpu_s) = self.metrics.scalar(&cpu_q, end_ms) {
            let pct = cpu_s / (elapsed_s * u.ncpus.max(1) as f64) * 100.0;
            row[unit_cols::AVG_CPU_USAGE] = Value::Real(pct.clamp(0.0, 100.0));
        }

        // Average memory.
        let mem_q = format!(
            "sum(avg_over_time(ceems_compute_unit_memory_used_bytes{{uuid=\"{uuid}\"}}[{window_s}s]))"
        );
        if let Some(mem) = self.metrics.scalar(&mem_q, end_ms) {
            row[unit_cols::AVG_MEM] = Value::Real(mem);
        }

        // Average GPU utilisation (via the recording rule joining the GPU
        // map with DCGM utilisation).
        let gpu_q = format!(
            "avg(avg_over_time(uuid:ceems_gpu_util:pct{{uuid=\"{uuid}\"}}[{window_s}s]))"
        );
        if u.ngpus > 0 {
            if let Some(gpu) = self.metrics.scalar(&gpu_q, end_ms) {
                row[unit_cols::AVG_GPU_USAGE] = Value::Real(gpu.clamp(0.0, 100.0));
            }
        }

        // Energy: mean attributed power × elapsed.
        let power_q = format!(
            "sum(avg_over_time({}{{uuid=\"{uuid}\"}}[{window_s}s]))",
            self.config.power_metric
        );
        if let Some(avg_w) = self.metrics.scalar(&power_q, end_ms) {
            // Sensor noise can push short windows fractionally negative;
            // energy is physical, clamp at zero.
            let kwh = (avg_w * elapsed_s / 3.6e6).max(0.0);
            row[unit_cols::ENERGY_KWH] = Value::Real(kwh);
            // Emissions: energy × current factor.
            if let Some(factor) = self
                .metrics
                .scalar(&self.config.emission_factor_query, end_ms)
            {
                row[unit_cols::EMISSIONS_G] = Value::Real(kwh * factor);
            }
        }
        row
    }

    fn maybe_cleanup(&mut self, u: &UnitInfo) {
        if self.config.cleanup_cutoff_s <= 0.0 {
            return;
        }
        let Some(admin) = &self.tsdb_admin else {
            return;
        };
        let terminal = matches!(
            u.state.as_str(),
            "COMPLETED" | "FAILED" | "CANCELLED" | "TIMEOUT"
        );
        if !terminal || self.purged.contains(&u.uuid) {
            return;
        }
        let elapsed_s = match (u.started_at_ms, u.ended_at_ms) {
            (Some(s), Some(e)) => ((e - s).max(0)) as f64 / 1000.0,
            _ => return,
        };
        if elapsed_s < self.config.cleanup_cutoff_s {
            let n = admin.delete_unit_series(&u.uuid);
            self.stats.series_deleted += n as u64;
            self.stats.units_purged += 1;
            self.purged.insert(u.uuid.clone());
        }
    }

    /// Recomputes the usage rollups from the units table.
    fn recompute_usage(&mut self, now_ms: i64) -> Result<(), DbError> {
        use ceems_relstore::Aggregate;
        let rollups = self.db.aggregate(
            UNITS_TABLE,
            &Filter::True,
            &["user", "project"],
            &[
                Aggregate::Count,
                Aggregate::Sum("total_energy_kwh".into()),
                Aggregate::Sum("total_emissions_g".into()),
            ],
        )?;
        // CPU/GPU hours need elapsed×cores which the aggregate layer cannot
        // express; compute per group with a filtered scan.
        for r in rollups {
            let user = r[0].as_text().unwrap_or("").to_string();
            let project = r[1].as_text().unwrap_or("").to_string();
            let count = r[2].as_int().unwrap_or(0);
            let energy = r[3].as_real().unwrap_or(0.0);
            let emissions = r[4].as_real().unwrap_or(0.0);

            let units = self.db.query(
                UNITS_TABLE,
                &ceems_relstore::Query::all().filter(Filter::And(vec![
                    Filter::Eq("user".into(), user.as_str().into()),
                    Filter::Eq("project".into(), project.as_str().into()),
                ])),
            )?;
            let mut cpu_hours = 0.0;
            let mut gpu_hours = 0.0;
            for u in &units {
                let elapsed_h = u[unit_cols::ELAPSED_S].as_real().unwrap_or(0.0) / 3600.0;
                cpu_hours += elapsed_h * u[unit_cols::NCPUS].as_real().unwrap_or(0.0);
                gpu_hours += elapsed_h * u[unit_cols::NGPUS].as_real().unwrap_or(0.0);
            }

            self.db.upsert(
                USAGE_TABLE,
                vec![
                    format!("{user}|{project}").into(),
                    user.into(),
                    project.into(),
                    Value::Int(count),
                    Value::Real(cpu_hours),
                    Value::Real(gpu_hours),
                    Value::Real(energy),
                    Value::Real(emissions),
                    Value::Int(now_ms),
                ],
            )?;
        }
        Ok(())
    }

    /// Checks unit ownership — the primitive behind the LB's access control.
    pub fn verify_ownership(&self, user: &str, uuid: &str) -> bool {
        verify_ownership_in_db(&self.db, user, uuid)
    }
}

/// Direct-DB ownership check (the LB uses this when it can reach the DB
/// file, falling back to the HTTP API otherwise — §II.C architecture).
pub fn verify_ownership_in_db(db: &Db, user: &str, uuid: &str) -> bool {
    match db.get(UNITS_TABLE, &uuid.into()) {
        Ok(Some(row)) => row[unit_cols::USER].as_text() == Some(user),
        _ => false,
    }
}

/// Reads a usage rollup row for display.
pub fn usage_row_values(row: &[Value]) -> (String, String, i64, f64, f64, f64, f64) {
    (
        row[usage_cols::USER].as_text().unwrap_or("").to_string(),
        row[usage_cols::PROJECT].as_text().unwrap_or("").to_string(),
        row[usage_cols::NUM_UNITS].as_int().unwrap_or(0),
        row[usage_cols::CPU_HOURS].as_real().unwrap_or(0.0),
        row[usage_cols::GPU_HOURS].as_real().unwrap_or(0.0),
        row[usage_cols::ENERGY_KWH].as_real().unwrap_or(0.0),
        row[usage_cols::EMISSIONS_G].as_real().unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics_source::TsdbLocalSource;
    use ceems_metrics::labels;
    use ceems_relstore::Query;

    struct FakeRm {
        units: Vec<UnitInfo>,
    }

    impl ResourceManagerClient for FakeRm {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn units_since(&self, since_ms: i64) -> Vec<UnitInfo> {
            self.units
                .iter()
                .filter(|u| u.submitted_at_ms >= since_ms || u.ended_at_ms.is_some())
                .cloned()
                .collect()
        }
    }

    fn unit(uuid: &str, user: &str, started: i64, ended: Option<i64>) -> UnitInfo {
        UnitInfo {
            uuid: uuid.into(),
            resource_manager: "slurm".into(),
            user: user.into(),
            project: "proj".into(),
            partition: "cpu".into(),
            state: if ended.is_some() { "COMPLETED" } else { "RUNNING" }.into(),
            submitted_at_ms: started - 1000,
            started_at_ms: Some(started),
            ended_at_ms: ended,
            nnodes: 1,
            ncpus: 8,
            ngpus: 0,
        }
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ceems-upd-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn tsdb_with_unit_metrics(uuid: &str) -> Arc<Tsdb> {
        let db = Arc::new(Tsdb::default());
        for i in 0..41i64 {
            let t = i * 15_000;
            // 6 busy cores of 8 → 75% usage; split user/system.
            db.append(
                &labels! {"__name__" => "ceems_compute_unit_cpu_user_seconds_total", "uuid" => uuid, "instance" => "n1"},
                t,
                (i as f64) * 15.0 * 5.5,
            );
            db.append(
                &labels! {"__name__" => "ceems_compute_unit_cpu_system_seconds_total", "uuid" => uuid, "instance" => "n1"},
                t,
                (i as f64) * 15.0 * 0.5,
            );
            db.append(
                &labels! {"__name__" => "ceems_compute_unit_memory_used_bytes", "uuid" => uuid, "instance" => "n1"},
                t,
                (16u64 << 30) as f64,
            );
            db.append(
                &labels! {"__name__" => "uuid:ceems_power:watts", "uuid" => uuid, "instance" => "n1"},
                t,
                360.0,
            );
            db.append(
                &labels! {"__name__" => "ceems_emissions_gCo2_kWh", "provider" => "rte", "instance" => "n1"},
                t,
                50.0,
            );
        }
        db
    }

    #[test]
    fn poll_fills_aggregates_and_rollups() {
        let tsdb = tsdb_with_unit_metrics("slurm-7");
        let rm = Arc::new(FakeRm {
            units: vec![unit("slurm-7", "alice", 0, Some(600_000))],
        });
        let dir = tmpdir("agg");
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            rm,
            Arc::new(TsdbLocalSource::new(tsdb)),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(600_000).unwrap();
        assert_eq!(upd.stats().units_upserted, 1);

        let rows = upd.db().query(UNITS_TABLE, &Query::all()).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // 6 of 8 cores → 75%.
        let cpu = r[unit_cols::AVG_CPU_USAGE].as_real().unwrap();
        assert!((cpu - 75.0).abs() < 2.0, "cpu={cpu}");
        let mem = r[unit_cols::AVG_MEM].as_real().unwrap();
        assert!((mem - (16u64 << 30) as f64).abs() < 1e6);
        // 360 W for 600 s = 0.06 kWh.
        let kwh = r[unit_cols::ENERGY_KWH].as_real().unwrap();
        assert!((kwh - 0.06).abs() < 1e-6, "kwh={kwh}");
        // 0.06 kWh × 50 g/kWh = 3 g.
        let g = r[unit_cols::EMISSIONS_G].as_real().unwrap();
        assert!((g - 3.0).abs() < 1e-6, "g={g}");

        // Usage rollup exists.
        let usage = upd.db().query(USAGE_TABLE, &Query::all()).unwrap();
        assert_eq!(usage.len(), 1);
        let (user, project, n, cpu_h, _gpu_h, energy, em) = usage_row_values(&usage[0]);
        assert_eq!((user.as_str(), project.as_str(), n), ("alice", "proj", 1));
        assert!((cpu_h - 8.0 * 600.0 / 3600.0).abs() < 1e-9);
        assert!((energy - 0.06).abs() < 1e-6);
        assert!((em - 3.0).abs() < 1e-6);

        // Ownership checks.
        assert!(upd.verify_ownership("alice", "slurm-7"));
        assert!(!upd.verify_ownership("bob", "slurm-7"));
        assert!(!upd.verify_ownership("alice", "slurm-999"));

        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cleanup_purges_short_units() {
        let tsdb = tsdb_with_unit_metrics("slurm-9");
        assert!(tsdb.series_count() > 0);
        let short = UnitInfo {
            state: "COMPLETED".into(),
            ..unit("slurm-9", "bob", 0, Some(20_000))
        };
        let rm = Arc::new(FakeRm { units: vec![short] });
        let dir = tmpdir("clean");
        let admin: Arc<dyn TsdbAdmin> = Arc::new(tsdb.clone());
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            rm,
            Arc::new(TsdbLocalSource::new(tsdb.clone())),
            Some(admin),
            UpdaterConfig {
                cleanup_cutoff_s: 60.0,
                ..Default::default()
            },
        )
        .unwrap();
        upd.poll(30_000).unwrap();
        assert_eq!(upd.stats().units_purged, 1);
        assert!(upd.stats().series_deleted >= 4);
        // uuid-labelled series gone; the emissions series survives.
        assert_eq!(
            tsdb.select(
                &[ceems_metrics::matcher::LabelMatcher::eq("uuid", "slurm-9")],
                0,
                i64::MAX
            )
            .len(),
            0
        );
        assert!(tsdb.series_count() >= 1);
        // Second poll does not double-purge.
        upd.poll(40_000).unwrap();
        assert_eq!(upd.stats().units_purged, 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn pending_units_have_no_aggregates() {
        let tsdb = Arc::new(Tsdb::default());
        let mut u = unit("slurm-1", "x", 0, None);
        u.submitted_at_ms = 0;
        u.started_at_ms = None;
        u.state = "PENDING".into();
        let rm = Arc::new(FakeRm { units: vec![u] });
        let dir = tmpdir("pend");
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            rm,
            Arc::new(TsdbLocalSource::new(tsdb)),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(10_000).unwrap();
        let rows = upd.db().query(UNITS_TABLE, &Query::all()).unwrap();
        assert!(rows[0][unit_cols::AVG_CPU_USAGE].is_null());
        assert!(rows[0][unit_cols::ENERGY_KWH].is_null());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
