//! Ablation benches for the design choices called out in `DESIGN.md` §6:
//! head lock striping, scrape fan-out parallelism, and in-process vs HTTP
//! scrape targets.

use std::sync::Arc;

use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};
use ceems_tsdb::scrape::{ScrapeManager, ScrapeTarget, TargetSource};
use ceems_tsdb::{Tsdb, TsdbConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Concurrent append throughput vs lock stripe count.
fn bench_head_sharding(c: &mut Criterion) {
    let labels: Vec<_> = (0..512)
        .map(|i| {
            LabelSetBuilder::new()
                .label("__name__", "m")
                .label("instance", format!("n{i}"))
                .build()
        })
        .collect();
    let mut group = c.benchmark_group("ablation_head_shards");
    group.sample_size(20);
    for shards in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter_with_setup(
                || {
                    Arc::new(Tsdb::new(TsdbConfig {
                        shards,
                        ..Default::default()
                    }))
                },
                |db| {
                    // 8 writer threads × 512 series × 4 samples.
                    std::thread::scope(|s| {
                        for t in 0..8i64 {
                            let db = db.clone();
                            let labels = &labels;
                            s.spawn(move || {
                                for round in 0..4i64 {
                                    let ts = (t * 4 + round) * 15_000;
                                    for l in labels.iter() {
                                        db.append(l, ts, 1.0);
                                    }
                                }
                            });
                        }
                    });
                    db
                },
            )
        });
    }
    group.finish();
}

fn text_body() -> String {
    // A realistic exporter payload: ~60 samples.
    let mut s = String::new();
    for i in 0..60 {
        s.push_str(&format!("metric_{i}{{uuid=\"slurm-1\"}} {}\n", i * 3));
    }
    s
}

/// Scrape fan-out: same 256 in-process targets, varying thread counts.
fn bench_scrape_threads(c: &mut Criterion) {
    let body = Arc::new(text_body());
    let targets: Vec<ScrapeTarget> = (0..256)
        .map(|i| {
            let body = body.clone();
            ScrapeTarget {
                instance: format!("n{i}"),
                job: "ceems".into(),
                extra_labels: vec![],
                source: TargetSource::InProcess(Arc::new(move || (*body).clone())),
            }
        })
        .collect();
    let mgr = ScrapeManager::new(targets);
    let mut group = c.benchmark_group("ablation_scrape_threads");
    group.sample_size(10);
    let mut t = 0i64;
    for threads in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &n| {
            b.iter(|| {
                t += 15_000;
                let db = Tsdb::default();
                mgr.scrape_once(&db, t, n)
            })
        });
    }
    group.finish();
}

/// In-process vs HTTP targets: what does the socket cost per target?
fn bench_scrape_transport(c: &mut Criterion) {
    let body = Arc::new(text_body());
    let in_process: Vec<ScrapeTarget> = (0..16)
        .map(|i| {
            let body = body.clone();
            ScrapeTarget {
                instance: format!("n{i}"),
                job: "ceems".into(),
                extra_labels: vec![],
                source: TargetSource::InProcess(Arc::new(move || (*body).clone())),
            }
        })
        .collect();

    let body2 = body.clone();
    let mut router = ceems_http::Router::new();
    router.get("/metrics", move |_| ceems_http::Response::text((*body2).clone()));
    let server =
        ceems_http::HttpServer::serve(ceems_http::ServerConfig::ephemeral(), router).unwrap();
    let http: Vec<ScrapeTarget> = (0..16)
        .map(|i| ScrapeTarget {
            instance: format!("n{i}"),
            job: "ceems".into(),
            extra_labels: vec![],
            source: TargetSource::Http {
                url: format!("{}/metrics", server.base_url()),
                auth: None,
            },
        })
        .collect();

    let mut group = c.benchmark_group("ablation_scrape_transport_16targets");
    group.sample_size(20);
    let mgr_ip = ScrapeManager::new(in_process);
    let mgr_http = ScrapeManager::new(http);
    let mut t = 0i64;
    group.bench_function("in_process", |b| {
        b.iter(|| {
            t += 15_000;
            let db = Tsdb::default();
            mgr_ip.scrape_once(&db, t, 4)
        })
    });
    group.bench_function("http", |b| {
        b.iter(|| {
            t += 15_000;
            let db = Tsdb::default();
            mgr_http.scrape_once(&db, t, 4)
        })
    });
    group.finish();
    server.shutdown();
}

/// A TSDB holding `series` series of 20 samples each, under a given read
/// configuration.
fn wide_tsdb(series: usize, query_threads: usize, posting_cache_size: usize) -> Tsdb {
    let db = Tsdb::new(TsdbConfig {
        shards: 64,
        query_threads,
        posting_cache_size,
        ..Default::default()
    });
    for i in 0..series {
        let l = LabelSetBuilder::new()
            .label("__name__", "wide")
            .label("instance", format!("n{i:06}"))
            .build();
        for t in 0..20i64 {
            db.append(&l, t * 15_000, (i + t as usize) as f64);
        }
    }
    db
}

/// Select materialization: serial (`query_threads: 1`) vs sharded scoped
/// fan-out, at 10k and 100k series.
fn bench_select_serial_vs_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("select_serial_vs_parallel: available parallelism = {cores}");
    let mut group = c.benchmark_group("select_serial_vs_parallel");
    group.sample_size(10);
    for series in [10_000usize, 100_000] {
        for threads in [1usize, 4, 8] {
            let db = wide_tsdb(series, threads, 0);
            let m = [LabelMatcher::eq("__name__", "wide")];
            group.bench_function(
                BenchmarkId::new(format!("series_{series}_threads"), threads),
                |b| b.iter(|| db.select(&m, 0, i64::MAX)),
            );
        }
    }
    group.finish();
}

/// Repeat regex-matcher selects with the posting cache off vs on: the
/// cached path skips the full value-space scan on every query after the
/// first. The selector matches 10 of `series` series so resolution cost —
/// not materialization — dominates.
fn bench_postings_cache_on_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("postings_cache_on_off");
    group.sample_size(10);
    for series in [10_000usize, 100_000] {
        for (label, cache) in [("off", 0usize), ("on", 128)] {
            let db = wide_tsdb(series, 4, cache);
            let re = LabelMatcher::new("instance", MatchOp::Re, "n00001[0-9]").unwrap();
            let m = [LabelMatcher::eq("__name__", "wide"), re];
            group.bench_function(
                BenchmarkId::new(format!("series_{series}_cache"), label),
                |b| b.iter(|| db.select(&m, 0, i64::MAX)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_head_sharding,
    bench_scrape_threads,
    bench_scrape_transport,
    bench_select_serial_vs_parallel,
    bench_postings_cache_on_off
);
criterion_main!(benches);
