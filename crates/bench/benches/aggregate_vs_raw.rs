//! E8 — §II.B.b: why the API server exists.
//!
//! "Although Prometheus is a highly performant TSDB, it is not suitable to
//! make queries that span a long duration. An example ... the total energy
//! usage of a given user or a project on a given cluster for all the
//! workloads during the last year."
//!
//! This bench stores a year of per-job power samples (hourly resolution,
//! 50 jobs) and compares answering "total energy of user X last year" by
//! (a) a raw TSDB range sweep and (b) the API server's pre-aggregated
//! usage table. The paper's architectural claim is the orders-of-magnitude
//! gap between the two.

use std::sync::Arc;

use ceems_apiserver::schema::{usage_cols, USAGE_TABLE};
use ceems_metrics::labels::LabelSetBuilder;
use ceems_relstore::{Db, Filter, Query};
use ceems_tsdb::promql::{instant_query, parse_expr};
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};

const HOURS: i64 = 365 * 24;
const JOBS: usize = 50;

fn year_of_data() -> (Arc<Tsdb>, Db) {
    let db = Arc::new(Tsdb::default());
    // 50 jobs of user "alice", each sampled hourly for a year at ~300 W.
    for j in 0..JOBS {
        let labels = LabelSetBuilder::new()
            .label("__name__", "uuid:ceems_power:watts")
            .label("uuid", format!("slurm-{j}"))
            .label("user", "alice")
            .build();
        for h in 0..HOURS {
            db.append(&labels, h * 3_600_000, 300.0 + (h % 10) as f64);
        }
    }

    // The API server's rollup of the same data.
    let dir = ceems_bench::tmpdir("aggdb");
    let mut rel = Db::open(&dir).unwrap();
    ceems_apiserver::schema::create_tables(&mut rel).unwrap();
    // One usage row per user|project as the updater maintains it.
    rel.upsert(
        USAGE_TABLE,
        vec![
            "alice|proj".into(),
            "alice".into(),
            "proj".into(),
            ceems_relstore::Value::Int(JOBS as i64),
            ceems_relstore::Value::Real(123.0),
            ceems_relstore::Value::Real(0.0),
            // kWh: 50 jobs × ~304.5 W × 8760 h.
            ceems_relstore::Value::Real(JOBS as f64 * 304.5 * HOURS as f64 / 1000.0),
            ceems_relstore::Value::Real(7.0e6),
            ceems_relstore::Value::Int(0),
        ],
    )
    .unwrap();
    (db, rel)
}

fn bench_year_span(c: &mut Criterion) {
    let (tsdb, rel) = year_of_data();
    eprintln!(
        "[E8] raw store: {} series, {} samples, {:.1} MiB compressed",
        tsdb.series_count(),
        tsdb.samples_appended(),
        tsdb.storage_bytes() as f64 / (1 << 20) as f64
    );

    let mut group = c.benchmark_group("year_energy_of_user");
    group.sample_size(10);

    // (a) Raw: sum_over_time across the whole year, per job, then sum.
    // (Energy ≈ Σ watts × 1 h.)
    let expr = parse_expr("sum(sum_over_time({user=\"alice\"}[1y]))").unwrap();
    group.bench_function("raw_tsdb_range_sweep", |b| {
        b.iter(|| {
            let v = instant_query(tsdb.as_ref(), &expr, HOURS * 3_600_000).unwrap();
            v
        })
    });

    // (b) Aggregated: one indexed relational lookup.
    let q = Query::all().filter(Filter::Eq("user".into(), "alice".into()));
    group.bench_function("apiserver_usage_table", |b| {
        b.iter(|| {
            let rows = rel.query(USAGE_TABLE, &q).unwrap();
            rows[0][usage_cols::ENERGY_KWH].as_real().unwrap()
        })
    });
    group.finish();

    // Sanity: both roads lead to the same energy (within sampling error).
    let v = instant_query(tsdb.as_ref(), &expr, HOURS * 3_600_000).unwrap();
    let raw_kwh = match v {
        ceems_tsdb::promql::Value::Vector(v) => v[0].1 / 1000.0, // W·h → kWh
        _ => f64::NAN,
    };
    let agg_kwh = rel.query(USAGE_TABLE, &q).unwrap()[0][usage_cols::ENERGY_KWH]
        .as_real()
        .unwrap();
    eprintln!(
        "[E8] year energy: raw sweep {raw_kwh:.0} kWh vs rollup {agg_kwh:.0} kWh ({:+.1}%)",
        (agg_kwh / raw_kwh - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_year_span);
criterion_main!(benches);
