//! E16 — alerting: rule-evaluation throughput across DAG depths.
//!
//! One `AlertService::tick` evaluates every rule level by level: plain
//! rules query the TSDB concurrently-safe read path, meta-rules (reading
//! `ALERTS`) serialize behind everything before them. This bench measures
//! tick latency — and the derived rules/sec — for the same rule count
//! arranged as a flat DAG (depth 1) and with meta-rule tails (depth 2 and
//! depth 4), over a fleet of violating and non-violating series.

use std::sync::Arc;

use ceems_alertsrv::{
    AlertConfig, AlertRule, AlertService, LocalQuerySource, LogSink, RoutingTree, RuleSet,
};
use ceems_bench::report::{time_iters, write_bench_json, LatencySummary};
use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};

const INSTANCES: usize = 50;
const TOTAL_RULES: usize = 48;

fn fleet_db(now_ms: i64) -> Arc<Tsdb> {
    let db = Arc::new(Tsdb::default());
    for i in 0..INSTANCES {
        let labels = LabelSetBuilder::default()
            .label(METRIC_NAME_LABEL, "power")
            .label("instance", format!("n{i}"))
            .build();
        // Values 0..INSTANCES watts: thresholds pick out subsets.
        db.append(&labels, now_ms, i as f64);
    }
    db
}

/// `TOTAL_RULES` rules at the requested DAG depth: `depth - 1` meta-rules
/// chained at the tail (each levels after everything before it), the rest
/// flat threshold rules over the fleet.
fn rules_at_depth(depth: usize) -> RuleSet {
    let metas = depth - 1;
    let mut rules: Vec<AlertRule> = (0..TOTAL_RULES - metas)
        .map(|i| {
            AlertRule::new(
                format!("R{i}"),
                &format!("power > {}", 10 + (i % 30)),
                0,
            )
            .unwrap()
        })
        .collect();
    for m in 0..metas {
        rules.push(
            AlertRule::new(
                format!("Meta{m}"),
                "sum(ALERTS{alertstate=\"firing\"}) > 0",
                0,
            )
            .unwrap(),
        );
    }
    let set = RuleSet::compile(rules);
    assert_eq!(set.depth(), depth, "expected depth {depth}");
    set
}

fn service_at_depth(depth: usize, db: &Arc<Tsdb>, tag: &str) -> AlertService {
    let dir = std::env::temp_dir().join(format!(
        "ceems-bench-alerts-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).ok();
    AlertService::new(
        rules_at_depth(depth),
        Arc::new(LocalQuerySource::new(db.clone(), i64::MAX / 4)),
        vec![LogSink::new()],
        RoutingTree::new("log"),
        AlertConfig {
            group_wait_ms: 0,
            group_interval_ms: 1,
            repeat_interval_ms: i64::MAX / 4,
            resolved_retention_ms: i64::MAX / 4,
            lookback_ms: i64::MAX / 4,
        },
        &dir,
    )
    .unwrap()
}

fn bench_alert_eval(c: &mut Criterion) {
    let db = fleet_db(1_000);

    let mut group = c.benchmark_group("alert_eval");
    group.sample_size(20);
    for depth in [1usize, 2, 4] {
        let svc = service_at_depth(depth, &db, &format!("crit-d{depth}"));
        let mut t = 1_000i64;
        group.bench_function(format!("tick_depth{depth}"), |b| {
            b.iter(|| {
                t += 1_000;
                svc.tick(t)
            })
        });
    }
    group.finish();

    // Machine-readable artifact: rules/sec per DAG depth.
    let mut configs = Vec::new();
    for depth in [1usize, 2, 4] {
        let svc = service_at_depth(depth, &db, &format!("json-d{depth}"));
        let mut t = 1_000i64;
        svc.tick(t); // warm: first tick pays alert creation + persistence
        let mut samples = time_iters(15, || {
            t += 1_000;
            svc.tick(t);
        });
        let summary = LatencySummary::from_samples(&mut samples);
        let rules_per_sec = TOTAL_RULES as f64 / (summary.p50_us / 1e6).max(1e-12);
        configs.push(serde_json::json!({
            "depth": depth,
            "rules": TOTAL_RULES,
            "instances": INSTANCES,
            "tick": summary.to_json(),
            "rules_per_sec": rules_per_sec,
        }));
    }
    write_bench_json(
        "alerts",
        &serde_json::json!({
            "bench": "alert_eval",
            "configs": configs,
        }),
    );
}

criterion_group!(benches, bench_alert_eval);
criterion_main!(benches);
