//! E5 — Eq. (1) evaluation cost and fidelity.
//!
//! Measures (a) the closed-form attribution, (b) a full recording-rule
//! evaluation pass deriving per-job power from raw series, at varying
//! node/job counts, and prints the rule-vs-closed-form deviation so the
//! fidelity shows up next to the cost.

use ceems_core::attribution::{
    all_rule_groups, attribute, JobObservables, NodeGroup, NodeObservables,
};
use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::matcher::LabelMatcher;
use ceems_tsdb::rules::RuleEngine;
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn synthetic_node(jobs: usize) -> NodeObservables {
    NodeObservables {
        group: NodeGroup::IntelDram,
        ipmi_w: 520.0,
        rapl_cpu_w: 260.0,
        rapl_dram_w: 65.0,
        node_cpu_rate: jobs as f64 * 4.0 + 0.3,
        node_mem_bytes: jobs as f64 * 8e9 + 2e9,
        gpu_total_w: 0.0,
        jobs: (0..jobs)
            .map(|i| JobObservables {
                uuid: format!("slurm-{i}"),
                cpu_rate: 4.0,
                mem_bytes: 8e9,
                gpu_w: 0.0,
            })
            .collect(),
    }
}

fn bench_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution_closed_form");
    for jobs in [1usize, 8, 64] {
        let node = synthetic_node(jobs);
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &node, |b, node| {
            b.iter(|| attribute(node))
        });
    }
    group.finish();
}

/// Loads raw exporter-shaped series for `nodes` nodes × `jobs_per_node`.
fn tsdb_for(nodes: usize, jobs_per_node: usize) -> Tsdb {
    let db = Tsdb::default();
    let g = NodeGroup::IntelDram.label();
    for n in 0..nodes {
        let inst = format!("node-{n}:9100");
        for i in 0..41i64 {
            let t = i * 15_000;
            let secs = (i * 15) as f64;
            let base = |name: &str| {
                LabelSetBuilder::new()
                    .label("__name__", name)
                    .label("instance", inst.clone())
                    .label("nodegroup", g)
                    .build()
            };
            db.append(&base("ceems_ipmi_dcmi_power_current_watts"), t, 500.0);
            db.append(&base("ceems_rapl_package_joules_total"), t, 240.0 * secs);
            db.append(&base("ceems_rapl_dram_joules_total"), t, 60.0 * secs);
            db.append(&base("ceems_memory_used_bytes"), t, 100e9);
            for (mode, rate) in [("user", 9.0), ("system", 1.0), ("idle", 30.0)] {
                db.append(
                    &LabelSetBuilder::new()
                        .label("__name__", "ceems_cpu_seconds_total")
                        .label("mode", mode)
                        .label("instance", inst.clone())
                        .label("nodegroup", g)
                        .build(),
                    t,
                    rate * secs,
                );
            }
            for j in 0..jobs_per_node {
                let uuid = format!("slurm-{n}-{j}");
                let jb = |name: &str| {
                    LabelSetBuilder::new()
                        .label("__name__", name)
                        .label("uuid", uuid.clone())
                        .label("instance", inst.clone())
                        .label("nodegroup", g)
                        .build()
                };
                let cores = 10.0 / jobs_per_node as f64;
                db.append(
                    &jb("ceems_compute_unit_cpu_user_seconds_total"),
                    t,
                    cores * 0.92 * secs,
                );
                db.append(
                    &jb("ceems_compute_unit_cpu_system_seconds_total"),
                    t,
                    cores * 0.08 * secs,
                );
                db.append(
                    &jb("ceems_compute_unit_memory_used_bytes"),
                    t,
                    100e9 / jobs_per_node as f64,
                );
            }
        }
    }
    db
}

fn bench_rule_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribution_rule_pass");
    group.sample_size(20);
    for (nodes, jobs) in [(1usize, 4usize), (10, 4), (50, 4)] {
        let db = tsdb_for(nodes, jobs);
        let groups = all_rule_groups("2m", 30_000);
        group.bench_with_input(
            BenchmarkId::new("nodes", nodes),
            &(nodes, jobs),
            |b, _| {
                b.iter(|| {
                    let mut engine = RuleEngine::new(groups.clone());
                    engine.force_eval(&db, 600_000)
                })
            },
        );
    }
    group.finish();

    // Fidelity: how far is the rule output from the closed form?
    let db = tsdb_for(1, 2);
    let mut engine = RuleEngine::new(all_rule_groups("2m", 30_000));
    engine.force_eval(&db, 600_000);
    let got = db.select_latest(&[LabelMatcher::eq("__name__", "uuid:ceems_power:watts")]);
    let expected = attribute(&NodeObservables {
        group: NodeGroup::IntelDram,
        ipmi_w: 500.0,
        rapl_cpu_w: 240.0,
        rapl_dram_w: 60.0,
        node_cpu_rate: 10.0,
        node_mem_bytes: 100e9,
        gpu_total_w: 0.0,
        jobs: (0..2)
            .map(|j| JobObservables {
                uuid: format!("slurm-0-{j}"),
                cpu_rate: 5.0,
                mem_bytes: 50e9,
                gpu_w: 0.0,
            })
            .collect(),
    });
    for (uuid, want) in expected {
        let have = got
            .iter()
            .find(|(l, _)| l.get("uuid") == Some(uuid.as_str()))
            .map(|(_, s)| s.v)
            .unwrap_or(f64::NAN);
        eprintln!(
            "[E5] {uuid}: rules={have:.2} W closed-form={want:.2} W (dev {:.2}%)",
            (have / want - 1.0) * 100.0
        );
    }
}

criterion_group!(benches, bench_closed_form, bench_rule_pipeline);
criterion_main!(benches);
