//! E10 — §II.C cardinality cleanup.
//!
//! "It is possible to configure the CEEMS API server to clean up TSDB by
//! removing metrics of workloads that did not last more than the
//! configured cutoff time. This helps in reducing the cardinality of
//! metrics." Short-job churn inflates the series count; this bench
//! measures delete_series throughput and shows the cardinality drop a
//! cutoff sweep produces.

use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::matcher::LabelMatcher;
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};

/// A TSDB polluted by `jobs` short-lived jobs, each with `series_per_job`
/// uuid-labelled series of a handful of samples.
fn churned_tsdb(jobs: usize, series_per_job: usize) -> Tsdb {
    let db = Tsdb::default();
    for j in 0..jobs {
        for s in 0..series_per_job {
            let labels = LabelSetBuilder::new()
                .label("__name__", format!("ceems_metric_{s}"))
                .label("uuid", format!("slurm-{j}"))
                .label("instance", format!("node-{}", j % 100))
                .build();
            for i in 0..4i64 {
                db.append(&labels, i * 15_000, i as f64);
            }
        }
    }
    db
}

fn bench_delete_series(c: &mut Criterion) {
    let mut group = c.benchmark_group("cardinality_cleanup");
    group.sample_size(10);

    group.bench_function("delete_one_unit_of_10k", |b| {
        b.iter_with_setup(
            || churned_tsdb(1000, 10),
            |db| {
                let n = db.delete_series(&[LabelMatcher::eq("uuid", "slurm-500")]);
                assert_eq!(n, 10);
                db
            },
        )
    });

    group.bench_function("purge_half_the_units", |b| {
        b.iter_with_setup(
            || churned_tsdb(500, 10),
            |db| {
                for j in 0..250 {
                    db.delete_series(&[LabelMatcher::eq("uuid", format!("slurm-{j}"))]);
                }
                db
            },
        )
    });
    group.finish();

    // The headline number: cardinality before/after a cleanup sweep.
    let db = churned_tsdb(1000, 10);
    let before = db.series_count();
    for j in 0..800 {
        // 80% of jobs were shorter than the cutoff.
        db.delete_series(&[LabelMatcher::eq("uuid", format!("slurm-{j}"))]);
    }
    let after = db.series_count();
    eprintln!(
        "[E10] cleanup sweep: {before} series -> {after} series ({:.0}% reduction)",
        (1.0 - after as f64 / before as f64) * 100.0
    );
}

fn bench_query_cost_vs_cardinality(c: &mut Criterion) {
    // Why operators care: selection cost grows with live cardinality.
    let mut group = c.benchmark_group("select_latest_by_cardinality");
    for jobs in [100usize, 1000, 5000] {
        let db = churned_tsdb(jobs, 10);
        group.bench_with_input(
            criterion::BenchmarkId::new("series", jobs * 10),
            &db,
            |b, db| {
                b.iter(|| db.select_latest(&[LabelMatcher::eq("__name__", "ceems_metric_0")]))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delete_series, bench_query_cost_vs_cardinality);
criterion_main!(benches);
