//! S20 — connection storm: 10k concurrent keep-alive clients against the
//! load balancer on the epoll substrate.
//!
//! The pre-S20 thread-per-connection server needed one OS thread per open
//! socket, so 10k idle dashboards meant 10k threads (or connection
//! refusal). This bench holds `CONNSTORM_CONNS` keep-alive connections
//! open simultaneously, drives `CONNSTORM_ROUNDS` request waves over all
//! of them, and reports requests/s, p50/p99 latency and the server's
//! (fixed) thread count. Emits `BENCH_connstorm.json`.
//!
//! The client side runs in `CONNSTORM_DRIVERS` child processes (this same
//! binary, re-invoked with `CONNSTORM_TARGET` set): `RLIMIT_NOFILE` is
//! hard-capped per process, and 10k connections cost ~2 fds each when
//! clients and server share one process. Children sync over stdio —
//! `READY` up, `GO` down, one `RESULT <json-array-of-µs>` line back.
//!
//! Not a criterion bench: the subject is concurrency shape, not
//! nanosecond timing, and criterion can't hold 10k sockets open between
//! iterations.
//!
//! Env knobs: `CONNSTORM_CONNS` (default 10000), `CONNSTORM_ROUNDS`
//! (default 3), `CONNSTORM_DRIVERS` (default 8).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceems_bench::report::{process_thread_count, write_bench_json, LatencySummary};
use ceems_bench::{loaded_tsdb, tmpdir};
use ceems_http::{ServerConfig, Status};
use ceems_lb::acl::Authorizer;
use ceems_lb::proxy::LbConfig;
use ceems_lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems_tsdb::httpapi::api_router;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const REQUEST: &[u8] = b"GET /api/v1/labels HTTP/1.1\r\n\
host: storm\r\n\
x-grafana-user: op\r\n\
connection: keep-alive\r\n\r\n";

/// Reads one content-length-framed response; returns the status code.
fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> u16 {
    scratch.clear();
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "eof mid-response");
        scratch.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&scratch[..head_end]).expect("utf8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .trim()
        .parse()
        .unwrap();
    let mut have = scratch.len() - head_end;
    while have < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "eof mid-body");
        have += n;
    }
    status
}

/// Child-process mode: hold `share` keep-alive connections to the target,
/// drive `rounds` request waves over them, report latencies upstream.
fn driver_main(target: &str) -> ! {
    let share = env_usize("CONNSTORM_SHARE", 0);
    let rounds = env_usize("CONNSTORM_ROUNDS", 3);
    ceems_http::sys::raise_nofile_limit(share as u64 + 512);

    let mut socks = Vec::with_capacity(share);
    for _ in 0..share {
        let s = TcpStream::connect(target).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        socks.push(s);
    }
    println!("READY");

    let mut line = String::new();
    std::io::stdin().read_line(&mut line).expect("read GO");
    assert_eq!(line.trim(), "GO", "bad coordinator handshake");

    // Each wave: write a request on every socket, then collect every
    // response — the server sees this driver's whole share in flight at
    // the top of each round.
    let mut scratch = Vec::with_capacity(8192);
    let mut latencies_us: Vec<u64> = Vec::with_capacity(share * rounds);
    for _ in 0..rounds {
        let mut started = Vec::with_capacity(socks.len());
        for s in &mut socks {
            started.push(Instant::now());
            s.write_all(REQUEST).expect("write request");
        }
        for (s, t0) in socks.iter_mut().zip(&started) {
            let status = read_response(s, &mut scratch);
            assert_eq!(status, Status::OK.0, "storm request failed");
            latencies_us.push(t0.elapsed().as_micros() as u64);
        }
    }

    let body: Vec<String> = latencies_us.iter().map(u64::to_string).collect();
    println!("RESULT [{}]", body.join(","));
    std::process::exit(0);
}

fn main() {
    if let Ok(target) = std::env::var("CONNSTORM_TARGET") {
        driver_main(&target);
    }

    let conns = env_usize("CONNSTORM_CONNS", 10_000);
    let rounds = env_usize("CONNSTORM_ROUNDS", 3);
    let drivers = env_usize("CONNSTORM_DRIVERS", 8).max(1);

    // This process holds only the server side: one fd per connection plus
    // slack for the stack itself. The client fds live in the children.
    let want_fds = conns as u64 + 1024;
    let got_fds = ceems_http::sys::raise_nofile_limit(want_fds);
    assert!(
        got_fds >= want_fds,
        "need {want_fds} fds for {conns} connections, limit is {got_fds} \
         (lower CONNSTORM_CONNS or raise RLIMIT_NOFILE)"
    );

    // A real TSDB backend behind the LB; ACL wide open — the subject is
    // the HTTP substrate, not ownership checks.
    let dir = tmpdir("connstorm");
    let tsdb = loaded_tsdb(64, 16);
    let now = 16 * 15_000;
    let backend_srv = ceems_http::HttpServer::serve(
        ServerConfig::ephemeral(),
        api_router(tsdb, Arc::new(move || now)),
    )
    .unwrap();
    let lb = Arc::new(CeemsLb::new(
        BackendPool::new(
            vec![Backend::new("b1", backend_srv.base_url())],
            Strategy::round_robin(),
        ),
        Authorizer::AllowAll,
        LbConfig {
            admin_users: vec!["op".into()],
            query_frontend: None,
            trace_sink: None,
        },
    ));
    let lb_srv = lb
        .serve_with(
            ServerConfig::ephemeral()
                .with_workers(32)
                .with_max_connections(conns + 64)
                .with_backlog(4096),
        )
        .unwrap();
    let addr = lb_srv.addr();

    eprintln!(
        "connstorm: {conns} connections x {rounds} rounds over {drivers} driver processes -> {addr}"
    );

    // Phase 1: children establish every connection, then report READY.
    let exe = std::env::current_exe().expect("current_exe");
    let connect_started = Instant::now();
    let mut children: Vec<Child> = (0..drivers)
        .map(|d| {
            let share = conns / drivers + usize::from(d < conns % drivers);
            Command::new(&exe)
                .env("CONNSTORM_TARGET", addr.to_string())
                .env("CONNSTORM_SHARE", share.to_string())
                .env("CONNSTORM_ROUNDS", rounds.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn driver")
        })
        .collect();
    let mut child_out: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().unwrap()))
        .collect();
    for out in &mut child_out {
        let mut line = String::new();
        out.read_line(&mut line).expect("driver stdout");
        assert_eq!(line.trim(), "READY", "driver failed to connect its share");
    }

    // `connect()` returns at SYN-ACK, before the acceptor thread pulls the
    // socket off the kernel accept queue — wait until the server has
    // adopted every connection so "concurrently open" means what it says.
    let adopt_deadline = Instant::now() + Duration::from_secs(30);
    while lb_srv.active_connections() < conns && Instant::now() < adopt_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let connect_secs = connect_started.elapsed().as_secs_f64();
    let active = lb_srv.active_connections();
    eprintln!(
        "connstorm: {active} connections established in {connect_secs:.2}s, \
         server threads: {}",
        lb_srv.thread_count()
    );
    assert!(
        active >= conns,
        "only {active}/{conns} connections concurrently open"
    );

    // Phase 2: release the storm and collect per-request latencies. Each
    // child's RESULT line is read on its own thread so no pipe buffer can
    // deadlock the coordinator.
    let storm_started = Instant::now();
    for c in &mut children {
        c.stdin.as_mut().unwrap().write_all(b"GO\n").expect("send GO");
    }
    let collectors: Vec<_> = child_out
        .into_iter()
        .map(|mut out| {
            std::thread::spawn(move || {
                let mut line = String::new();
                out.read_line(&mut line).expect("driver result");
                let payload = line
                    .trim()
                    .strip_prefix("RESULT ")
                    .expect("malformed driver result");
                let parsed: serde_json::Value =
                    serde_json::from_str(payload).expect("driver latencies json");
                parsed
                    .as_array()
                    .expect("latency array")
                    .iter()
                    .map(|v| Duration::from_micros(v.as_f64().expect("µs value") as u64))
                    .collect::<Vec<Duration>>()
            })
        })
        .collect();

    let mut peak_threads = process_thread_count();
    let mut all_latencies: Vec<Duration> = Vec::with_capacity(conns * rounds);
    for (i, c) in collectors.into_iter().enumerate() {
        all_latencies.extend(c.join().expect("collector thread"));
        peak_threads = peak_threads.max(process_thread_count());
        eprintln!("connstorm: driver {}/{drivers} finished", i + 1);
    }
    let storm_secs = storm_started.elapsed().as_secs_f64();
    for mut c in children {
        assert!(c.wait().expect("driver exit").success(), "driver failed");
    }

    let total_requests = conns * rounds;
    assert_eq!(all_latencies.len(), total_requests, "lost latency samples");
    let rps = total_requests as f64 / storm_secs;
    let summary = LatencySummary::from_samples(&mut all_latencies);
    let server_threads = lb_srv.thread_count() + backend_srv.thread_count();

    eprintln!(
        "connstorm: {total_requests} requests in {storm_secs:.2}s = {rps:.0} req/s, \
         p50 {:.1}ms p99 {:.1}ms, server threads {server_threads}, \
         server process peak threads {peak_threads}",
        summary.p50_us / 1e3,
        summary.p99_us / 1e3
    );

    write_bench_json(
        "connstorm",
        &serde_json::json!({
            "bench": "connstorm",
            "connections": conns,
            "rounds": rounds,
            "drivers": drivers,
            "connect_secs": connect_secs,
            "concurrent_connections_observed": active,
            "total_requests": total_requests,
            "storm_secs": storm_secs,
            "requests_per_sec": rps,
            "latency": summary.to_json(),
            "server_threads": server_threads,
            "lb_server_threads": lb_srv.thread_count(),
            "server_process_peak_threads": peak_threads,
        }),
    );

    lb_srv.shutdown();
    backend_srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
