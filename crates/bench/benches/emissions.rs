//! E9 — §II.A.c emission factors: provider lookup costs and the effect of
//! static vs real-time factors on accounted emissions.

use std::sync::Arc;

use ceems_emissions::emaps::{EMapsProvider, EMapsService};
use ceems_emissions::owid::OwidStatic;
use ceems_emissions::rte::RteSimulated;
use ceems_emissions::{EmissionProvider, EmissionsCalculator, ProviderChain};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_factor_lookup(c: &mut Criterion) {
    let owid = OwidStatic;
    let rte = RteSimulated::default();
    let service = Arc::new(EMapsService::new("t", 1_000_000));
    let emaps = EMapsProvider::new(service, "t");
    let chain = ProviderChain::new(vec![
        Arc::new(RteSimulated::default()),
        Arc::new(OwidStatic),
    ]);

    let mut group = c.benchmark_group("factor_lookup");
    group.bench_function("owid_static", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 60_000;
            owid.factor("FR", t)
        })
    });
    group.bench_function("rte_simulated", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 60_000;
            rte.factor("FR", t)
        })
    });
    group.bench_function("emaps_cached", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 60_000;
            emaps.factor("FR", t)
        })
    });
    group.bench_function("chain_rte_then_owid", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 60_000;
            chain.factor("DE", t) // falls through RTE to OWID
        })
    });
    group.finish();
    eprintln!(
        "[E9] emaps upstream calls after bench: {} (caching bounds API usage)",
        emaps.upstream_calls()
    );
}

fn bench_trace_integration(c: &mut Criterion) {
    // A day of per-minute power samples integrated into gCO2e.
    let trace: Vec<(i64, f64)> = (0..(24 * 60)).map(|m| (m * 60_000, 450.0)).collect();
    let static_calc = EmissionsCalculator::new(Arc::new(OwidStatic), "FR");
    let rt_calc = EmissionsCalculator::new(Arc::new(RteSimulated::default()), "FR");

    let mut group = c.benchmark_group("trace_integration_24h");
    group.bench_function("static_factor", |b| {
        b.iter(|| static_calc.integrate_trace(&trace).unwrap())
    });
    group.bench_function("realtime_factor", |b| {
        b.iter(|| rt_calc.integrate_trace(&trace).unwrap())
    });
    group.finish();

    let g_static = static_calc.integrate_trace(&trace).unwrap();
    let g_rt = rt_calc.integrate_trace(&trace).unwrap();
    eprintln!(
        "[E9] same 10.8 kWh day: static {g_static:.0} g vs real-time {g_rt:.0} g ({:+.1}%)",
        (g_rt / g_static - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_factor_lookup, bench_trace_integration);
criterion_main!(benches);
