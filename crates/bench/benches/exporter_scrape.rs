//! E4 — §II.B.a exporter-overhead claims.
//!
//! Paper: "the exporter consumes 15-20 MB of memory and each scrape request
//! takes less than 1 microsecond of CPU time" and is "very lightweight".
//! This bench measures the `/metrics` render hot path at varying numbers of
//! running jobs (cgroups) and with/without the GPU collectors, plus the
//! encode-only cost, and prints the payload size per configuration.

use std::sync::Arc;

use ceems_bench::busy_node;
use ceems_exporter::{CeemsExporter, ExporterConfig};
use ceems_metrics::encode::encode_families;
use ceems_simnode::SimClock;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn exporter_for(jobs: usize, gpus: usize) -> Arc<CeemsExporter> {
    Arc::new(CeemsExporter::new(
        busy_node(jobs, gpus),
        SimClock::starting_at(60_000),
        ExporterConfig {
            emission_providers: vec![Arc::new(ceems_emissions::owid::OwidStatic)],
            ..Default::default()
        },
    ))
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("exporter_render");
    for jobs in [1usize, 8, 32] {
        let exporter = exporter_for(jobs, 0);
        let payload = exporter.render();
        eprintln!(
            "[E4] cpu node, {jobs} jobs: payload {} bytes, {} lines",
            payload.len(),
            payload.lines().count()
        );
        group.bench_with_input(BenchmarkId::new("cpu_node_jobs", jobs), &jobs, |b, _| {
            b.iter(|| exporter.render())
        });
    }
    let exporter = exporter_for(4, 2);
    let payload = exporter.render();
    eprintln!(
        "[E4] gpu node, 4 jobs x 2 GPUs: payload {} bytes",
        payload.len()
    );
    group.bench_function("gpu_node_4jobs", |b| b.iter(|| exporter.render()));
    group.finish();
}

fn bench_encode_only(c: &mut Criterion) {
    // The pure text-format encode, separated from collection.
    let exporter = exporter_for(8, 0);
    let families = exporter.registry().gather();
    c.bench_function("exporter_encode_only", |b| {
        b.iter(|| encode_families(&families))
    });
}

fn bench_collector_toggle(c: &mut Criterion) {
    // The CLI lets operators disable collectors; measure the saving.
    let full = exporter_for(8, 0);
    let slim = Arc::new(CeemsExporter::new(
        busy_node(8, 0),
        SimClock::starting_at(60_000),
        ExporterConfig {
            disabled_collectors: vec![
                "gpu".into(),
                "gpu_map".into(),
                "emissions".into(),
                "node".into(),
                "perf".into(),
                "ebpf_net".into(),
            ],
            ..Default::default()
        },
    ));
    let mut group = c.benchmark_group("exporter_collector_sets");
    group.bench_function("all_collectors", |b| b.iter(|| full.render()));
    group.bench_function("cgroup_rapl_ipmi_only", |b| b.iter(|| slim.render()));
    group.finish();

    // The paper's memory claim: report our structural footprint proxy.
    let payload = full.render();
    eprintln!(
        "[E4] exporter state is O(collectors)+O(jobs); payload buffer {} KiB, mean render {} ns",
        payload.len() / 1024,
        full.stats().mean_render_ns() as u64
    );
}

criterion_group!(
    benches,
    bench_render,
    bench_encode_only,
    bench_collector_toggle
);
criterion_main!(benches);
