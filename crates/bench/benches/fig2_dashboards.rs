//! E1–E3 — the paper's Fig. 2 dashboard panels.
//!
//! Grafana's cost is dominated by its data-source queries; this bench
//! measures generating each panel from a live monitored stack: the user's
//! aggregate overview (2a), the per-job listing (2b) and the job
//! time-series panel (2c). Panel contents are printed once so the rendered
//! figures land in the bench log.

use ceems_bench::small_stack_with_job;
use ceems_core::dashboards::{render_job_list, render_job_timeseries, render_user_overview};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let stack = small_stack_with_job();
    let now = stack.clock.now_ms();

    {
        let upd = stack.updater.lock();
        eprintln!("[E1] Fig 2a panel:\n{}", render_user_overview(&upd, "bench"));
        eprintln!("[E2] Fig 2b panel:\n{}", render_job_list(&upd, "bench"));
    }
    eprintln!(
        "[E3] Fig 2c panel:\n{}",
        render_job_timeseries(stack.tsdb.as_ref(), "slurm-1", 0, now, 30_000)
    );

    let mut group = c.benchmark_group("fig2");
    group.bench_function("2a_user_overview", |b| {
        b.iter(|| {
            let upd = stack.updater.lock();
            render_user_overview(&upd, "bench")
        })
    });
    group.bench_function("2b_job_list", |b| {
        b.iter(|| {
            let upd = stack.updater.lock();
            render_job_list(&upd, "bench")
        })
    });
    group.bench_function("2c_job_timeseries", |b| {
        b.iter(|| render_job_timeseries(stack.tsdb.as_ref(), "slurm-1", 0, now, 30_000))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
