//! E6 — §III / abstract: "monitoring more than 1400 nodes that have a
//! daily job churn rate" in the thousands.
//!
//! Builds the full Jean-Zay-like fleet (1,400 nodes, 3,584 GPUs) and
//! measures one complete monitoring step — node simulation + scheduler +
//! scrape of all 1,400 exporters + rule evaluation — which must comfortably
//! fit inside the 15 s scrape interval for the deployment to be viable.

use ceems_core::config::{CeemsConfig, ChurnSettings};
use ceems_core::CeemsStack;
use ceems_simnode::ClusterSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_jean_zay_step(c: &mut Criterion) {
    let cfg = CeemsConfig {
        cluster: ClusterSpec::jean_zay(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8),
        churn: Some(ChurnSettings {
            users: 200,
            projects: 40,
            arrivals_per_hour: 420.0,
        }),
        ..Default::default()
    };
    let dir = ceems_bench::tmpdir("jz");
    let mut stack = CeemsStack::build(cfg, &dir).expect("jean-zay stack builds");
    // Warm up: get jobs placed and counters moving.
    stack.run_for(120.0, 15.0);
    eprintln!(
        "[E6] fleet: {} nodes, {} jobs running, {} series after warm-up",
        stack.cluster.len(),
        stack.scheduler.lock().running_count(),
        stack.tsdb.series_count()
    );

    let mut group = c.benchmark_group("jean_zay");
    group.sample_size(10);
    group.bench_function("full_monitoring_step_15s", |b| {
        b.iter(|| stack.advance(15.0));
    });
    group.finish();

    let st = stack.stats();
    eprintln!(
        "[E6] after bench: {} scrape passes ({} failures), {} samples, {} series, {:.1} MiB compressed, {} jobs submitted",
        st.scrape_passes,
        st.scrape_failures,
        st.samples_scraped,
        stack.tsdb.series_count(),
        stack.tsdb.storage_bytes() as f64 / (1 << 20) as f64,
        st.jobs_submitted,
    );
    eprintln!(
        "[E6] attributed fleet power {:.1} kW vs simulated wall power {:.1} kW",
        stack.total_attributed_power() / 1000.0,
        stack.cluster.total_wall_power() / 1000.0
    );
    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_jean_zay_step);
criterion_main!(benches);
