//! E7 — §II.B.c load balancer: the cost of access control and the two
//! balancing strategies.
//!
//! Measures the in-process request path (query introspection + ownership
//! check + backend pick) for: authorized scoped queries, denied queries,
//! admin pass-through, round-robin vs least-connection picks — i.e. what
//! the LB adds on top of Prometheus itself.

use std::sync::Arc;

use ceems_bench::small_stack_with_job;
use ceems_http::{Method, Request};
use ceems_lb::acl::Authorizer;
use ceems_lb::introspect::introspect;
use ceems_lb::proxy::LbConfig;
use ceems_lb::{Backend, BackendPool, CeemsLb, Strategy};
use ceems_tsdb::httpapi::api_router;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_introspection(c: &mut Criterion) {
    let mut group = c.benchmark_group("lb_introspect");
    for (name, q) in [
        ("simple_uuid", "uuid:ceems_power:watts{uuid=\"slurm-1\"}"),
        (
            "nested_rate",
            "sum by (uuid) (rate(ceems_compute_unit_cpu_user_seconds_total{uuid=~\"slurm-1|slurm-2|slurm-3\"}[5m]))",
        ),
        ("unscoped", "sum(node_power_watts)"),
    ] {
        group.bench_function(name, |b| b.iter(|| introspect(q)));
    }
    group.finish();
}

fn bench_request_path(c: &mut Criterion) {
    // Real TSDB backend over HTTP; the stack's updater provides the ACL DB.
    let stack = small_stack_with_job();
    let now = stack.clock.now_ms();
    let backend_srv = ceems_http::HttpServer::serve(
        ceems_http::ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();
    let backend_srv2 = ceems_http::HttpServer::serve(
        ceems_http::ServerConfig::ephemeral(),
        api_router(stack.tsdb.clone(), Arc::new(move || now)),
    )
    .unwrap();

    let mk_lb = |strategy: Strategy| {
        Arc::new(CeemsLb::new(
            BackendPool::new(
                vec![
                    Backend::new("b1", backend_srv.base_url()),
                    Backend::new("b2", backend_srv2.base_url()),
                ],
                strategy,
            ),
            Authorizer::DirectDb(stack.updater.clone()),
            LbConfig {
                admin_users: vec!["op".into()],
                query_frontend: None,
                trace_sink: None,
            },
        ))
    };

    let authorized = Request::new(
        Method::Get,
        "/api/v1/query?query=uuid%3Aceems_power%3Awatts%7Buuid%3D%22slurm-1%22%7D",
    )
    .with_header("X-Grafana-User", "bench");
    let denied = Request::new(
        Method::Get,
        "/api/v1/query?query=uuid%3Aceems_power%3Awatts%7Buuid%3D%22slurm-999%22%7D",
    )
    .with_header("X-Grafana-User", "bench");
    let admin = Request::new(
        Method::Get,
        "/api/v1/query?query=sum%28uuid%3Aceems_power%3Awatts%29",
    )
    .with_header("X-Grafana-User", "op");

    let mut group = c.benchmark_group("lb_request");
    group.sample_size(30);
    for (name, strategy) in [
        ("round_robin", Strategy::round_robin()),
        ("least_connection", Strategy::LeastConnection),
    ] {
        let lb = mk_lb(strategy);
        group.bench_function(format!("authorized_{name}"), |b| {
            b.iter(|| {
                let resp = lb.handle(&authorized);
                assert_eq!(resp.status.0, 200);
                resp
            })
        });
    }
    let lb = mk_lb(Strategy::round_robin());
    group.bench_function("denied_foreign_uuid", |b| {
        b.iter(|| {
            let resp = lb.handle(&denied);
            assert_eq!(resp.status.0, 403);
            resp
        })
    });
    group.bench_function("admin_unscoped", |b| {
        b.iter(|| {
            let resp = lb.handle(&admin);
            assert_eq!(resp.status.0, 200);
            resp
        })
    });

    // Baseline: the same query straight to the backend, no LB.
    let direct = ceems_http::Client::new();
    let direct_url = format!(
        "{}/api/v1/query?query=uuid%3Aceems_power%3Awatts%7Buuid%3D%22slurm-1%22%7D",
        backend_srv.base_url()
    );
    group.bench_function("no_lb_direct_backend", |b| {
        b.iter(|| direct.get(&direct_url).unwrap())
    });
    group.finish();

    backend_srv.shutdown();
    backend_srv2.shutdown();
}

criterion_group!(benches, bench_introspection, bench_request_path);
criterion_main!(benches);
