//! Cost of the self-monitoring primitives (DESIGN.md S17): one histogram
//! observation, one labelled-vec observation, one trace stage, and the
//! thread-local "is a trace active?" probe every select performs.
//!
//! These are the per-*batch* / per-*call* costs the instrumented hot paths
//! pay — `append_batch`, `select`, a WAL group commit, one proxy forward —
//! so the numbers here divided by the matching operation times in the `wal`
//! and `ablations` benches bound the instrumentation overhead directly.

use std::time::Instant;

use ceems_metrics::{Histogram, HistogramVec};
use ceems_obs::trace::{self, QueryTrace};
use criterion::{criterion_group, criterion_main, Criterion};

const BATCH: usize = 1024;

/// Timed histogram observation: the `Instant::now` pair plus the bucket
/// walk, exactly what `append_batch`/`select` add per call.
fn bench_histogram_observe(c: &mut Criterion) {
    let h = Histogram::new(Histogram::duration_buckets());
    c.bench_function("obs_overhead/histogram_observe_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let start = Instant::now();
                h.observe(start.elapsed().as_secs_f64());
            }
            std::hint::black_box(h.count())
        })
    });
}

/// Labelled observation (label lookup + observe), the rule-group and
/// API-server shape.
fn bench_histogramvec_observe(c: &mut Criterion) {
    let v = HistogramVec::new(
        "bench_seconds",
        "bench",
        &["group"],
        Histogram::duration_buckets(),
    );
    c.bench_function("obs_overhead/histogramvec_observe_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let start = Instant::now();
                v.with_label_values(&["g1"]).observe(start.elapsed().as_secs_f64());
            }
        })
    });
}

/// One trace stage (guard create + drop) while a trace is active.
fn bench_trace_stage(c: &mut Criterion) {
    let t = QueryTrace::begin(None);
    c.bench_function("obs_overhead/trace_stage_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let g = t.stage("bench");
                drop(g);
            }
        })
    });
}

/// The thread-local probe the select path runs on every call — almost every
/// query arrives with *no* trace, so the inactive case is the hot one.
fn bench_trace_probe_inactive(c: &mut Criterion) {
    c.bench_function("obs_overhead/trace_probe_inactive_x1024", |b| {
        b.iter(|| {
            let mut active = 0usize;
            for _ in 0..BATCH {
                if trace::current().is_some() {
                    active += 1;
                }
            }
            std::hint::black_box(active)
        })
    });
}

criterion_group!(
    benches,
    bench_histogram_observe,
    bench_histogramvec_observe,
    bench_trace_stage,
    bench_trace_probe_inactive
);
criterion_main!(benches);
