//! E11 — §II.A.b: RAPL vs IPMI-DCMI as energy sources.
//!
//! "The IPMI-DCMI command is not suitable to use at a high frequency (even
//! for every few seconds) whereas RAPL counters are available at
//! microsecond granularity." This bench measures the simulated read paths
//! (a sysfs-style counter read vs a BMC invocation with its caching), the
//! cost of `rate()` over wrapping RAPL counters, and verifies the wraparound
//! correction numerically.

use ceems_metrics::labels::LabelSetBuilder;
use ceems_simnode::ipmi::IpmiDcmi;
use ceems_simnode::power::{compute_power, IpmiCoverage, PowerSpec};
use ceems_simnode::pseudofs::PseudoFs;
use ceems_simnode::rapl::RaplDomain;
use ceems_tsdb::promql::{instant_query, parse_expr, Value};
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_source_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_source_read");

    // RAPL: accumulate + read the counter (what a sysfs read costs us).
    let mut domain = RaplDomain::new("package-0");
    group.bench_function("rapl_accumulate_and_read", |b| {
        b.iter(|| {
            domain.accumulate(150.0, 0.015);
            domain.energy_uj()
        })
    });

    // RAPL through the pseudo-filesystem (string render + parse), the
    // exporter's actual path.
    let node = ceems_bench::busy_node(4, 0);
    group.bench_function("rapl_via_pseudofs", |b| {
        b.iter(|| {
            let n = node.lock();
            n.read_u64("/sys/class/powercap/intel-rapl:0/energy_uj")
        })
    });

    // IPMI: most reads hit the BMC cache; refreshes carry noise modelling.
    let spec = PowerSpec::intel_cpu_node();
    let truth = compute_power(&spec, 0.6, 0.4, &[]);
    let mut ipmi = IpmiDcmi::standard(IpmiCoverage::IncludesGpus);
    let mut rng = StdRng::seed_from_u64(1);
    let mut t = 0i64;
    group.bench_function("ipmi_read_cached", |b| {
        b.iter(|| {
            t += 15; // 15 ms apart — far below the BMC refresh
            ipmi.power_reading(t, &truth, &mut rng)
        })
    });
    group.finish();

    eprintln!(
        "[E11] simulated DCMI invocation cost {} ms vs sysfs read (ns scale): the paper's frequency asymmetry",
        ipmi.invocation_cost_ms()
    );
    eprintln!(
        "[E11] BMC refreshes {} of {} reads (caching at 10s interval)",
        ipmi.samples(),
        ipmi.reads()
    );
}

fn bench_rate_over_wrapping_counter(c: &mut Criterion) {
    // A RAPL series that wraps several times inside the query window.
    let db = Tsdb::default();
    let labels = LabelSetBuilder::new()
        .label("__name__", "ceems_rapl_package_joules_total")
        .label("instance", "n1")
        .build();
    let wrap_at = 10_000.0;
    let mut acc: f64 = 0.0;
    for i in 0..241i64 {
        acc += 200.0 * 15.0; // 200 W × 15 s
        while acc >= wrap_at {
            acc -= wrap_at;
        }
        db.append(&labels, i * 15_000, acc);
    }
    let expr = parse_expr("rate(ceems_rapl_package_joules_total[30m])").unwrap();
    c.bench_function("rate_over_wrapping_rapl_counter", |b| {
        b.iter(|| instant_query(&db, &expr, 3_600_000).unwrap())
    });

    let v = instant_query(&db, &expr, 3_600_000).unwrap();
    if let Value::Vector(v) = v {
        eprintln!(
            "[E11] recovered {:.1} W from a counter wrapping every {:.0} s (true 200 W)",
            v[0].1,
            wrap_at / 200.0
        );
    }
}

criterion_group!(benches, bench_source_reads, bench_rate_over_wrapping_counter);
criterion_main!(benches);
