//! E14 — query frontend: what the results cache and range splitting buy.
//!
//! Renders the Fig. 2c dashboard (5 panels, 10 min of data at 15 s step)
//! through `ceems-qfe` three ways: cold (every extent fetched from the
//! TSDB), warm (every extent served from the step-aligned results cache;
//! the ISSUE acceptance bar is a ≥5× latency reduction), and split vs
//! unsplit with the cache disabled (the cost/benefit of fanning one range
//! out over interval-aligned sub-queries).

use std::sync::Arc;

use ceems_bench::report::{time_iters, write_bench_json, LatencySummary};
use ceems_bench::small_stack_with_job;
use ceems_http::{Method, Request, Status};
use ceems_qfe::{QfeConfig, QueryFrontend, RouterDownstream};
use ceems_tsdb::httpapi::api_router;
use criterion::{criterion_group, criterion_main, Criterion};

/// The Fig. 2c panel expressions (see `ceems_core::dashboards`).
fn panel_queries(uuid: &str) -> Vec<String> {
    vec![
        format!("sum(uuid:ceems_cpu_time:rate{{uuid=\"{uuid}\"}})"),
        format!("sum(ceems_compute_unit_memory_used_bytes{{uuid=\"{uuid}\"}}) / 1073741824"),
        format!("sum(uuid:ceems_power:watts{{uuid=\"{uuid}\"}})"),
        format!("sum(rate(ceems_compute_unit_perf_flops_total{{uuid=\"{uuid}\"}}[2m])) / 1e9"),
        format!("sum(rate(ceems_compute_unit_net_rx_bytes_total{{uuid=\"{uuid}\"}}[2m])) / 1e6"),
    ]
}

fn range_request(query: &str, end_s: i64) -> Request {
    Request::new(
        Method::Get,
        &format!(
            "/api/v1/query_range?query={}&start=0&end={end_s}&step=15",
            ceems_http::url::encode_component(query)
        ),
    )
    .with_header("x-grafana-user", "bench")
}

fn bench_qfe(c: &mut Criterion) {
    eprintln!(
        "qfe_cache: detected parallelism = {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let stack = small_stack_with_job();
    let now_ms = stack.clock.now_ms();
    let end_s = now_ms / 1000;
    let queries = panel_queries("slurm-1");

    // Everything is in-process: the downstream is the TSDB's own router, so
    // the numbers isolate frontend work (split, cache, merge) + evaluation.
    let downstream = || {
        let now = now_ms;
        Arc::new(RouterDownstream::new(api_router(
            stack.tsdb.clone(),
            Arc::new(move || now),
        )))
    };
    // Split the 10-minute range into ~5 windows; the clock sits at `now`
    // with no recent-window holdback so every extent is cacheable.
    let cfg = |cache_bytes: usize, split_interval_ms: i64| QfeConfig {
        split_interval_ms,
        cache_bytes,
        recent_window_ms: 0,
        now: Arc::new(move || now_ms),
        ..QfeConfig::default()
    };
    let render = |fe: &Arc<QueryFrontend>| {
        for q in &queries {
            let resp = fe.handle(&range_request(q, end_s));
            assert_eq!(resp.status, Status::OK, "{}", resp.body_string());
        }
    };

    let mut group = c.benchmark_group("qfe_dashboard");
    group.sample_size(30);

    // Cold: a fresh (empty) cache for every render.
    group.bench_function("cold_render", |b| {
        b.iter(|| {
            let fe = QueryFrontend::new(downstream(), cfg(64 << 20, 120_000));
            render(&fe);
        })
    });

    // Warm: the same dashboard re-rendered against a primed cache — the
    // acceptance bar is ≥5× under cold_render.
    let warm = QueryFrontend::new(downstream(), cfg(64 << 20, 120_000));
    render(&warm);
    group.bench_function("warm_render", |b| b.iter(|| render(&warm)));

    // Splitting without caching: fan-out cost/benefit in isolation.
    let split = QueryFrontend::new(downstream(), cfg(0, 120_000));
    group.bench_function("split_nocache_render", |b| b.iter(|| render(&split)));
    let unsplit = QueryFrontend::new(downstream(), cfg(0, i64::MAX / 4));
    group.bench_function("unsplit_nocache_render", |b| b.iter(|| render(&unsplit)));

    group.finish();

    // Machine-readable artifact: a short measured pass per scenario (the
    // criterion runs above remain the statistically careful numbers).
    let iters = 20;
    let mut cold = time_iters(iters, || {
        let fe = QueryFrontend::new(downstream(), cfg(64 << 20, 120_000));
        render(&fe);
    });
    let mut warm_s = time_iters(iters, || render(&warm));
    let mut split_s = time_iters(iters, || render(&split));
    let mut unsplit_s = time_iters(iters, || render(&unsplit));
    let cold = LatencySummary::from_samples(&mut cold);
    let warm_sum = LatencySummary::from_samples(&mut warm_s);
    write_bench_json(
        "qfe_cache",
        &serde_json::json!({
            "bench": "qfe_cache",
            "dashboard_panels": queries.len(),
            "cold_render": cold.to_json(),
            "warm_render": warm_sum.to_json(),
            "split_nocache_render": LatencySummary::from_samples(&mut split_s).to_json(),
            "unsplit_nocache_render": LatencySummary::from_samples(&mut unsplit_s).to_json(),
            "warm_speedup_p50": cold.p50_us / warm_sum.p50_us.max(1e-9),
        }),
    );
}

criterion_group!(benches, bench_qfe);
criterion_main!(benches);
