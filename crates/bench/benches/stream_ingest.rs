//! S23 — streaming ingest bus vs pull-mode scraping.
//!
//! Two claims ride on the stream subsystem: (1) pushing exporter renders
//! over the bus ingests at least as fast as the scrape path it replaces
//! (both traverse one HTTP hop and the identical exposition-parse +
//! append-batch sink), and (2) a live `query_live` subscriber sees a pushed
//! sample as a rendered delta quickly — the end-to-end freshness win over
//! poll-mode dashboards. Emits `BENCH_stream.json` with per-path ingest
//! throughput and the sample→live-delta latency distribution.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceems_bench::busy_node;
use ceems_bench::report::{write_bench_json, LatencySummary};
use ceems_exporter::{CeemsExporter, ExporterConfig};
use ceems_http::{Client, HttpServer, Router, ServerConfig};
use ceems_qfe::{QfeConfig, QueryFrontend, RouterDownstream};
use ceems_simnode::SimClock;
use ceems_stream::{SampleFrame, SinkReceipt, StreamBus, StreamBusConfig, StreamPublisher};
use ceems_tsdb::httpapi::api_router;
use ceems_tsdb::scrape::exposition_to_batch;
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};

const JOBS: usize = 8;
const STEP_MS: i64 = 15_000;
const INGEST_ITERS: usize = 200;
const LATENCY_ITERS: usize = 150;

fn exporter() -> Arc<CeemsExporter> {
    Arc::new(CeemsExporter::new(
        busy_node(JOBS, 0),
        SimClock::starting_at(60_000),
        ExporterConfig::default(),
    ))
}

/// A bus over the production sink shape: parse the exposition body with
/// scrape-identical label stamping, append as one batch.
fn ingesting_bus(db: Arc<Tsdb>, ring: usize) -> Arc<StreamBus> {
    Arc::new(StreamBus::new(
        StreamBusConfig {
            ring_capacity: ring,
            ..Default::default()
        },
        Arc::new(move |f: &SampleFrame| {
            let batch =
                exposition_to_batch(&f.body, &f.instance, &f.job, &f.extra_labels, f.produced_ms)?;
            let samples = batch.len() as u64;
            db.append_batch(&batch);
            Ok(SinkReceipt {
                samples,
                names: vec![],
            })
        }),
    ))
}

fn serve_bus(bus: Arc<StreamBus>, now: Arc<AtomicI64>) -> HttpServer {
    let mut router = Router::new();
    ceems_stream::http::mount(
        &mut router,
        bus,
        Arc::new(move || now.load(Ordering::SeqCst)),
        None,
    );
    HttpServer::serve(ServerConfig::ephemeral(), router).unwrap()
}

/// One pull-mode ingest pass: GET `/metrics`, parse, append.
fn scrape_once(client: &Client, url: &str, db: &Tsdb, t: i64) -> u64 {
    let resp = client.get(url).expect("scrape GET");
    let body = std::str::from_utf8(&resp.body).expect("utf8 exposition");
    let batch = exposition_to_batch(
        body,
        "n0:9100",
        "ceems",
        &[("nodegroup".to_string(), "bench".to_string())],
        t,
    )
    .expect("exposition parses");
    let n = batch.len() as u64;
    db.append_batch(&batch);
    n
}

fn samples_per_sec(samples_per_iter: u64, s: &LatencySummary) -> f64 {
    samples_per_iter as f64 / (s.p50_us / 1e6)
}

fn bench_ingest_paths(c: &mut Criterion) {
    let exp = exporter();

    // Pull mode: the exporter serves /metrics, we scrape-parse-append.
    let scrape_db = Tsdb::default();
    let exp_srv = Arc::clone(&exp).serve().unwrap();
    let metrics_url = format!("{}/metrics", exp_srv.base_url());
    let scrape_client = Client::new();

    // Push mode: the exporter's render is published over the bus.
    let push_db = Arc::new(Tsdb::default());
    let now = Arc::new(AtomicI64::new(0));
    let bus = ingesting_bus(Arc::clone(&push_db), 4);
    let bus_srv = serve_bus(Arc::clone(&bus), Arc::clone(&now));
    let mut publisher = StreamPublisher::new(
        &bus_srv.base_url(),
        "node-metrics",
        "n0",
        "n0:9100",
        "ceems",
        vec![("nodegroup".to_string(), "bench".to_string())],
    );

    let probe = exposition_to_batch(&exp.render_for_push(), "n0:9100", "ceems", &[], 0)
        .expect("probe parses");
    let samples_per_iter = probe.len() as u64;
    eprintln!(
        "[S23] {JOBS}-job node render: {} samples per batch",
        samples_per_iter
    );

    let mut t = 0i64;
    c.bench_function("stream_ingest/scrape_pull", |b| {
        b.iter(|| {
            t += STEP_MS;
            scrape_once(&scrape_client, &metrics_url, &scrape_db, t)
        })
    });
    c.bench_function("stream_ingest/stream_push", |b| {
        b.iter(|| {
            t += STEP_MS;
            publisher
                .publish(exp.render_for_push(), t)
                .expect("push succeeds")
        })
    });

    // Interleaved measurement for the JSON artifact: alternate paths so
    // warm-up and scheduler noise land on both equally.
    let mut scrape_lat: Vec<Duration> = Vec::with_capacity(INGEST_ITERS);
    let mut push_lat: Vec<Duration> = Vec::with_capacity(INGEST_ITERS);
    for _ in 0..INGEST_ITERS {
        t += STEP_MS;
        let started = Instant::now();
        scrape_once(&scrape_client, &metrics_url, &scrape_db, t);
        scrape_lat.push(started.elapsed());

        t += STEP_MS;
        let render = exp.render_for_push();
        let started = Instant::now();
        publisher.publish(render, t).expect("push succeeds");
        push_lat.push(started.elapsed());
    }
    let scrape_sum = LatencySummary::from_samples(&mut scrape_lat);
    let push_sum = LatencySummary::from_samples(&mut push_lat);

    // End-to-end freshness: one pushed sample until its rendered delta is
    // fully received by a live SSE subscriber.
    let live_db = Arc::new(Tsdb::default());
    let live_now = Arc::new(AtomicI64::new(0));
    let live_bus = ingesting_bus(Arc::clone(&live_db), 4);
    let live_srv = serve_bus(Arc::clone(&live_bus), Arc::clone(&live_now));
    let mut live_pub =
        StreamPublisher::new(&live_srv.base_url(), "bench", "n0", "n0:9100", "ceems", vec![]);

    let qnow = Arc::clone(&live_now);
    let rnow = Arc::clone(&live_now);
    let fe = QueryFrontend::new(
        Arc::new(RouterDownstream::new(api_router(
            Arc::clone(&live_db),
            Arc::new(move || rnow.load(Ordering::SeqCst)),
        ))),
        QfeConfig {
            now: Arc::new(move || qnow.load(Ordering::SeqCst)),
            ..Default::default()
        },
    );
    let fe_srv = fe.serve().unwrap();

    let mut lt = 0i64;
    let mut seed_step = |lt: i64, v: i64| {
        live_now.store(lt, Ordering::SeqCst);
        live_pub
            .publish(format!("stream_bench_watts {v}\n"), lt)
            .expect("seed push");
    };
    for k in 1..=4 {
        seed_step(k * STEP_MS, 200 + k);
        lt = k * STEP_MS;
    }
    let sub_client = Client::new();
    let mut sub = sub_client
        .get_stream(&format!(
            "{}/api/v1/query_live?query={}&step=15&since=60",
            fe_srv.base_url(),
            ceems_http::url::encode_component("sum(stream_bench_watts)")
        ))
        .expect("live subscribe");
    assert_eq!(sub.status.0, 200);

    let mut buf = String::new();
    let read_event = |buf: &mut String, sub: &mut ceems_http::StreamingResponse| {
        loop {
            if let Some(end) = buf.find("\n\n") {
                buf.drain(..end + 2);
                return;
            }
            let chunk = sub
                .next_chunk()
                .expect("live stream read")
                .expect("live stream stays open");
            buf.push_str(std::str::from_utf8(&chunk).expect("utf8 sse"));
        }
    };
    read_event(&mut buf, &mut sub); // the full render

    let mut delta_lat: Vec<Duration> = Vec::with_capacity(LATENCY_ITERS);
    for i in 0..LATENCY_ITERS {
        lt += STEP_MS;
        let body = format!("stream_bench_watts {}\n", 200 + (i as i64 % 17));
        let started = Instant::now();
        live_now.store(lt, Ordering::SeqCst);
        live_pub.publish(body, lt).expect("live push");
        fe.push_live(lt + 500);
        read_event(&mut buf, &mut sub);
        delta_lat.push(started.elapsed());
    }
    let delta_sum = LatencySummary::from_samples(&mut delta_lat);

    write_bench_json(
        "stream",
        &serde_json::json!({
            "bench": "stream_ingest",
            "jobs": JOBS,
            "samples_per_batch": samples_per_iter,
            "ingest_iters": INGEST_ITERS,
            "scrape_pull": {
                "latency": scrape_sum.to_json(),
                "samples_per_sec": samples_per_sec(samples_per_iter, &scrape_sum),
            },
            "stream_push": {
                "latency": push_sum.to_json(),
                "samples_per_sec": samples_per_sec(samples_per_iter, &push_sum),
            },
            "push_over_scrape_throughput": scrape_sum.p50_us / push_sum.p50_us,
            "live_delta_iters": LATENCY_ITERS,
            "sample_to_live_delta": delta_sum.to_json(),
            "bus_frames_published": live_bus.stats().published + bus.stats().published,
        }),
    );

    fe_srv.shutdown();
    live_srv.shutdown();
    bus_srv.shutdown();
    exp_srv.shutdown();
}

criterion_group!(benches, bench_ingest_paths);
criterion_main!(benches);
