//! Cost of always-on trace sampling on the query path (DESIGN.md S22).
//!
//! S17 budgets instrumentation at < 5% of the operation it wraps. The trace
//! pipeline adds three things per query on top of that: minting/accepting a
//! trace ID, the head-sampling hash, and — for kept traces — serialising the
//! report into the relstore-backed trace store. This bench runs the same
//! PromQL instant query under three policies and emits `BENCH_trace.json`
//! with the measured overhead of the default 10% head rate against the 5%
//! budget:
//!
//! * `off`       — no sink; the bare eval the S17 budget is relative to.
//! * `sampled`   — `TraceSink` at the default `obs.trace_sample_rate` 0.1.
//! * `always_on` — rate 1.0, every trace persisted (worst case, for scale).

use std::sync::Arc;
use std::time::Duration;

use ceems_bench::report::{time_iters, write_bench_json, LatencySummary};
use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_obs::trace::{self, QueryTrace};
use ceems_obs::{TraceSampler, TraceSink, TraceStore, TraceStoreConfig};
use ceems_tsdb::promql::{instant_query, parse_expr};
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, Criterion};

const NODES: usize = 512;
const SAMPLES_PER_SERIES: i64 = 30;
const STEP_MS: i64 = 15_000;
const ITERS: usize = 600;
const BUDGET_PCT: f64 = 5.0;

fn fleet_db() -> Tsdb {
    let db = Tsdb::default();
    for n in 0..NODES {
        let labels = LabelSetBuilder::new()
            .label(METRIC_NAME_LABEL, "ceems_ipmi_dcmi_current_watts")
            .label("instance", &format!("node-{n:04}"))
            .label("hostname", &format!("node-{n:04}"))
            .build();
        for s in 0..SAMPLES_PER_SERIES {
            db.append(&labels, s * STEP_MS, 180.0 + (n % 17) as f64);
        }
    }
    db
}

fn open_sink(tag: &str, rate: f64) -> TraceSink {
    let dir = std::env::temp_dir().join(format!(
        "ceems-bench-trace-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        TraceStore::open(&dir, TraceStoreConfig::default()).expect("trace store opens"),
    );
    TraceSink::new(TraceSampler::new(rate, 0.0), store)
}

/// One traced query, exactly the shape of the tsdb HTTP handler: mint an ID,
/// begin + enter the trace, stage the eval, offer the finished report.
/// Returns whether the sink kept the trace.
fn traced_query(
    db: &Tsdb,
    expr: &ceems_tsdb::promql::Expr,
    now: i64,
    sink: Option<&TraceSink>,
) -> bool {
    match sink {
        None => {
            let v = instant_query(db, expr, now).expect("query evals");
            std::hint::black_box(v);
            false
        }
        Some(sink) => {
            let id = trace::mint_id();
            let t = QueryTrace::begin(Some(&id));
            let guard = trace::enter(Some(t.clone()));
            {
                let _s = t.stage("eval");
                let v = instant_query(db, expr, now).expect("query evals");
                std::hint::black_box(v);
            }
            drop(guard);
            sink.offer("tsdb", "/api/v1/query", "bench", &t.report())
                .is_some()
        }
    }
}

/// Measures the three policies interleaved round-robin, so allocator and
/// cache warm-up, CPU frequency and scheduler noise land on all of them
/// equally — back-to-back blocks would charge the whole warm-up to whichever
/// config runs first.
fn measure_interleaved(
    db: &Tsdb,
    expr: &ceems_tsdb::promql::Expr,
    sinks: [Option<&TraceSink>; 3],
) -> ([Vec<Duration>; 3], [u64; 3]) {
    let now = (SAMPLES_PER_SERIES - 1) * STEP_MS;
    let mut samples = [const { Vec::new() }; 3];
    let mut stored = [0u64; 3];
    for _ in 0..20 {
        for sink in sinks {
            traced_query(db, expr, now, sink);
        }
    }
    for _ in 0..ITERS {
        for (i, sink) in sinks.into_iter().enumerate() {
            let mut kept = false;
            let mut t = time_iters(1, || kept = traced_query(db, expr, now, sink));
            samples[i].push(t.pop().unwrap());
            if kept {
                stored[i] += 1;
            }
        }
    }
    (samples, stored)
}

fn bench_trace_overhead(c: &mut Criterion) {
    let db = fleet_db();
    let expr =
        parse_expr("sum(rate(ceems_ipmi_dcmi_current_watts[60s]))").expect("bench expr parses");
    let now = (SAMPLES_PER_SERIES - 1) * STEP_MS;

    let sampled = open_sink("sampled", 0.1);
    let always = open_sink("always", 1.0);

    c.bench_function("trace_overhead/query_untraced", |b| {
        b.iter(|| traced_query(&db, &expr, now, None))
    });
    c.bench_function("trace_overhead/query_sampled_10pct", |b| {
        b.iter(|| traced_query(&db, &expr, now, Some(&sampled)))
    });
    c.bench_function("trace_overhead/query_always_stored", |b| {
        b.iter(|| traced_query(&db, &expr, now, Some(&always)))
    });

    let ([mut off, mut rate10, mut rate100], [_, stored10, stored100]) =
        measure_interleaved(&db, &expr, [None, Some(&sampled), Some(&always)]);
    let off_sum = LatencySummary::from_samples(&mut off);
    let rate10_sum = LatencySummary::from_samples(&mut rate10);
    let rate100_sum = LatencySummary::from_samples(&mut rate100);

    // p50 is the stable basis: the mean folds in scheduler outliers, and the
    // p99 of short in-process loops is pure noise.
    let overhead_pct = (rate10_sum.p50_us - off_sum.p50_us) / off_sum.p50_us * 100.0;
    let always_pct = (rate100_sum.p50_us - off_sum.p50_us) / off_sum.p50_us * 100.0;

    write_bench_json(
        "trace",
        &serde_json::json!({
            "bench": "trace_overhead",
            "nodes": NODES,
            "iters": ITERS,
            "query": "sum(rate(ceems_ipmi_dcmi_current_watts[60s]))",
            "untraced": off_sum.to_json(),
            "sampled_10pct": rate10_sum.to_json(),
            "always_stored": rate100_sum.to_json(),
            "sampled_overhead_pct": overhead_pct,
            "always_stored_overhead_pct": always_pct,
            "budget_pct": BUDGET_PCT,
            "within_budget": overhead_pct < BUDGET_PCT,
            "stored_at_default_rate": stored10,
            "stored_at_full_rate": stored100,
        }),
    );
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
