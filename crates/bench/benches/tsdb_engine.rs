//! TSDB engine micro-benchmarks: the substrate hot paths behind every
//! other experiment — chunk compression, ingest, index selection and
//! PromQL evaluation. Prints the achieved compression ratio (the reason a
//! single host can hold a 1,400-node fleet's metrics).

use ceems_bench::loaded_tsdb;
use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::matcher::{LabelMatcher, MatchOp};
use ceems_tsdb::chunk::XorChunk;
use ceems_tsdb::promql::{instant_query, parse_expr};
use ceems_tsdb::types::Sample;
use ceems_tsdb::Tsdb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunk");
    group.bench_function("append_1k_samples", |b| {
        b.iter(|| {
            let mut chunk = XorChunk::new();
            for i in 0..1000i64 {
                chunk.append(Sample::new(i * 15_000, 100.0 + (i % 7) as f64)).unwrap();
            }
            chunk
        })
    });
    let mut chunk = XorChunk::new();
    for i in 0..1000i64 {
        chunk.append(Sample::new(i * 15_000, 100.0 + (i % 7) as f64)).unwrap();
    }
    eprintln!(
        "[tsdb] chunk: 1000 samples in {} bytes ({:.2} bytes/sample, {:.1}x vs raw 16B)",
        chunk.byte_len(),
        chunk.byte_len() as f64 / 1000.0,
        16_000.0 / chunk.byte_len() as f64
    );
    group.bench_function("iterate_1k_samples", |b| {
        b.iter(|| chunk.iter().map(|s| s.v).sum::<f64>())
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(20);
    let labels: Vec<_> = (0..1000)
        .map(|i| {
            LabelSetBuilder::new()
                .label("__name__", "m")
                .label("instance", format!("n{i}"))
                .build()
        })
        .collect();
    group.bench_function("append_1k_series_x10", |b| {
        let mut t = 0i64;
        b.iter(|| {
            let db = Tsdb::default();
            for step in 0..10 {
                t += 15_000;
                for l in &labels {
                    db.append(l, t + step, 1.0);
                }
            }
            db
        })
    });
    group.finish();
}

fn bench_select_and_query(c: &mut Criterion) {
    let db = loaded_tsdb(5_000, 40);
    eprintln!(
        "[tsdb] loaded: {} series, {} samples, {} KiB compressed",
        db.series_count(),
        db.samples_appended(),
        db.storage_bytes() / 1024
    );
    let mut group = c.benchmark_group("query");
    group.bench_function("select_exact_1_of_5k", |b| {
        let m = [LabelMatcher::eq("uuid", "slurm-2500")];
        b.iter(|| db.select(&m, 0, i64::MAX))
    });
    group.bench_function("select_regex_10_of_5k", |b| {
        let m = [LabelMatcher::new("uuid", MatchOp::Re, "slurm-250\\d").unwrap()];
        b.iter(|| db.select(&m, 0, i64::MAX))
    });
    let exprs = [
        ("instant_selector", "bench_metric{uuid=\"slurm-1\"}"),
        ("rate_2m", "rate(bench_metric{uuid=\"slurm-1\"}[2m])"),
        ("sum_all_5k", "sum(bench_metric)"),
        (
            "topk_over_aggregation",
            "topk(5, avg_over_time(bench_metric[2m]))",
        ),
    ];
    for (name, q) in exprs {
        let expr = parse_expr(q).unwrap();
        group.bench_with_input(BenchmarkId::new("promql", name), &expr, |b, expr| {
            b.iter(|| instant_query(db.as_ref(), expr, 600_000).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunk, bench_ingest, bench_select_and_query);
criterion_main!(benches);
