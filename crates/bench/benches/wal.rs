//! WAL ingest overhead (S16): scrape-shaped `append_batch` throughput with
//! the WAL off vs on under each fsync policy, plus crash-recovery replay
//! speed. The acceptance bar is WAL-on (group commit, `batch` fsync)
//! staying within ~2× of the in-memory append path.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ceems_bench::report::{time_iters, write_bench_json, LatencySummary};
use ceems_metrics::labels::{LabelSet, LabelSetBuilder};
use ceems_tsdb::wal::{FsyncMode, WalOptions};
use ceems_tsdb::{Tsdb, TsdbConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceems-walbench-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One scrape pass worth of samples: `series` series at one timestamp.
fn scrape_batches(series: usize, steps: i64) -> Vec<Vec<(LabelSet, i64, f64)>> {
    let labels: Vec<LabelSet> = (0..series)
        .map(|i| {
            LabelSetBuilder::new()
                .label("__name__", "power")
                .label("instance", format!("n{i:05}"))
                .build()
        })
        .collect();
    (0..steps)
        .map(|step| {
            labels
                .iter()
                .map(|l| (l.clone(), step * 15_000, step as f64))
                .collect()
        })
        .collect()
}

/// In-memory vs WAL-backed ingest, one group commit per scrape batch.
fn bench_wal_ingest(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("wal_ingest: available parallelism = {cores}");

    let batches = scrape_batches(256, 40);
    let samples = 256 * 40;
    let mut group = c.benchmark_group("wal_ingest");
    group.sample_size(10);
    let mut dirs: Vec<PathBuf> = Vec::new();
    for (label, fsync) in [
        ("off", None),
        ("on_never", Some(FsyncMode::Never)),
        ("on_batch", Some(FsyncMode::Batch)),
        ("on_always", Some(FsyncMode::Always)),
    ] {
        group.bench_function(BenchmarkId::new(format!("samples_{samples}"), label), |b| {
            b.iter_with_setup(
                || match fsync {
                    None => Tsdb::new(TsdbConfig::default()),
                    Some(mode) => {
                        let dir = temp_dir();
                        dirs.push(dir.clone());
                        let opts = WalOptions {
                            segment_bytes: 4 << 20,
                            fsync: mode,
                        };
                        Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap()
                    }
                },
                |db| {
                    for batch in &batches {
                        db.append_batch(batch);
                    }
                },
            );
        });
    }
    group.finish();
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Reopening a crashed database: checkpoint + tail-segment replay.
fn bench_wal_recovery(c: &mut Criterion) {
    let batches = scrape_batches(256, 40);
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(10);
    let opts = WalOptions {
        segment_bytes: 4 << 20,
        fsync: FsyncMode::Never,
    };
    let mut dirs: Vec<PathBuf> = Vec::new();
    for (label, checkpointed) in [("segments_only", false), ("with_checkpoint", true)] {
        group.bench_function(BenchmarkId::new("replay", label), |b| {
            b.iter_with_setup(
                || {
                    let dir = temp_dir();
                    dirs.push(dir.clone());
                    let db = Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap();
                    for (i, batch) in batches.iter().enumerate() {
                        db.append_batch(batch);
                        if checkpointed && i == batches.len() / 2 {
                            db.checkpoint().unwrap();
                        }
                    }
                    dir
                },
                |dir| Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap(),
            );
        });
    }
    group.finish();
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Machine-readable artifact: a short measured pass per fsync policy plus
/// a replay run (the criterion groups remain the careful numbers).
fn emit_wal_json(_c: &mut Criterion) {
    let batches = scrape_batches(256, 40);
    let samples = 256 * 40;
    let iters = 8;
    let mut scenarios = serde_json::Map::new();
    for (label, fsync) in [
        ("off", None),
        ("on_never", Some(FsyncMode::Never)),
        ("on_batch", Some(FsyncMode::Batch)),
        ("on_always", Some(FsyncMode::Always)),
    ] {
        let mut dirs: Vec<PathBuf> = Vec::new();
        let mut lat = time_iters(iters, || {
            let db = match fsync {
                None => Tsdb::new(TsdbConfig::default()),
                Some(mode) => {
                    let dir = temp_dir();
                    dirs.push(dir.clone());
                    let opts = WalOptions {
                        segment_bytes: 4 << 20,
                        fsync: mode,
                    };
                    Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap()
                }
            };
            for batch in &batches {
                db.append_batch(batch);
            }
        });
        let s = LatencySummary::from_samples(&mut lat);
        let mut obj = s.to_json();
        if let serde_json::Value::Object(ref mut map) = obj {
            map.insert(
                "samples_per_sec_p50".into(),
                serde_json::json!(samples as f64 / (s.p50_us / 1e6)),
            );
        }
        scenarios.insert(format!("ingest_{label}"), obj);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Recovery: replay a full (uncheckpointed) WAL.
    let opts = WalOptions {
        segment_bytes: 4 << 20,
        fsync: FsyncMode::Never,
    };
    let dir = temp_dir();
    {
        let db = Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap();
        for batch in &batches {
            db.append_batch(batch);
        }
    }
    let mut lat = time_iters(iters, || {
        Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap();
    });
    scenarios.insert(
        "recovery_replay".into(),
        LatencySummary::from_samples(&mut lat).to_json(),
    );
    let _ = std::fs::remove_dir_all(&dir);

    write_bench_json(
        "wal",
        &serde_json::json!({
            "bench": "wal",
            "samples_per_run": samples,
            "scenarios": serde_json::Value::Object(scenarios),
        }),
    );
}

criterion_group!(benches, bench_wal_ingest, bench_wal_recovery, emit_wal_json);
criterion_main!(benches);
