//! Shared fixtures for the benchmark harness.
//!
//! Every table/figure/claim in the paper has a bench target (see
//! `DESIGN.md` §3 and `EXPERIMENTS.md`); these helpers build the populated
//! stacks and TSDBs those benches measure.

use std::path::PathBuf;
use std::sync::Arc;

pub mod report;

use ceems_core::config::{CeemsConfig, ChurnSettings};
use ceems_core::CeemsStack;
use ceems_metrics::labels::LabelSetBuilder;
use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
use ceems_simnode::WorkloadProfile;
use ceems_slurm::JobRequest;
use ceems_tsdb::Tsdb;

/// A unique temp directory for a bench run.
pub fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ceems-bench-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A node with `jobs` running tasks, stepped for one minute so every
/// counter is hot.
pub fn busy_node(jobs: usize, gpus_per_job: usize) -> Arc<parking_lot::Mutex<SimNode>> {
    let profile = if gpus_per_job > 0 {
        HardwareProfile::Gpu {
            model: ceems_simnode::power::GpuModel::A100,
            count: 8,
            coverage: ceems_simnode::power::IpmiCoverage::ExcludesGpus,
        }
    } else {
        HardwareProfile::IntelCpu
    };
    let mut node = SimNode::new(
        NodeSpec {
            hostname: "bench-node".into(),
            profile,
        },
        7,
    );
    let cores = (node.total_cores() / jobs.max(1)).max(1);
    for i in 0..jobs {
        node.add_task(
            TaskSpec {
                id: i as u64 + 1,
                cores,
                memory_bytes: 4 << 30,
                gpus: gpus_per_job,
                workload: WorkloadProfile::CpuBound { intensity: 0.8 },
            },
            0,
        )
        .expect("bench task fits");
    }
    for i in 1..=4 {
        node.step(i * 15_000, 15.0);
    }
    Arc::new(parking_lot::Mutex::new(node))
}

/// A small monitored stack with one running job, advanced for 10 minutes.
pub fn small_stack_with_job() -> CeemsStack {
    let mut stack = CeemsStack::build(CeemsConfig::default(), &tmpdir("stack")).unwrap();
    stack
        .submit(JobRequest {
            user: "bench".into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: 16,
            memory_per_node: 32 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        })
        .unwrap();
    stack.run_for(600.0, 15.0);
    stack
}

/// A churn-driven stack over a mid-size cluster.
pub fn churn_stack(intel_nodes: usize, minutes: f64) -> CeemsStack {
    let mut cfg = CeemsConfig::default();
    cfg.cluster.intel_nodes = intel_nodes;
    cfg.cluster.amd_nodes = 0;
    cfg.cluster.v100_nodes = 0;
    cfg.cluster.a100_nodes = 0;
    cfg.cluster.h100_nodes = 0;
    cfg.churn = Some(ChurnSettings {
        users: 20,
        projects: 5,
        arrivals_per_hour: 300.0,
    });
    let mut stack = CeemsStack::build(cfg, &tmpdir("churn")).unwrap();
    stack.run_for(minutes * 60.0, 15.0);
    stack
}

/// A TSDB pre-loaded with `series` gauge series × `samples_per_series`
/// samples at a 15 s cadence.
pub fn loaded_tsdb(series: usize, samples_per_series: usize) -> Arc<Tsdb> {
    let db = Arc::new(Tsdb::default());
    for s in 0..series {
        let labels = LabelSetBuilder::new()
            .label("__name__", "bench_metric")
            .label("instance", format!("node-{s}"))
            .label("uuid", format!("slurm-{s}"))
            .build();
        for i in 0..samples_per_series {
            db.append(&labels, i as i64 * 15_000, 100.0 + (i % 7) as f64);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let n = busy_node(4, 0);
        assert_eq!(n.lock().task_ids().len(), 4);
        let db = loaded_tsdb(10, 20);
        assert_eq!(db.series_count(), 10);
        assert_eq!(db.samples_appended(), 200);
    }
}
