//! Machine-readable bench artifacts.
//!
//! Benches that feed CI or the paper tables write one `BENCH_<name>.json`
//! next to the workspace root (override the directory with
//! `CEEMS_BENCH_DIR`), so runs can be diffed and plotted without scraping
//! criterion's human output.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Directory bench JSON lands in: `$CEEMS_BENCH_DIR` or the workspace root.
pub fn bench_dir() -> PathBuf {
    match std::env::var("CEEMS_BENCH_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Writes `BENCH_<name>.json` (pretty-printed) and returns its path.
pub fn write_bench_json(name: &str, value: &serde_json::Value) -> PathBuf {
    let path = bench_dir().join(format!("BENCH_{name}.json"));
    let text = serde_json::to_string_pretty(value).expect("bench json serializes");
    std::fs::write(&path, text + "\n").expect("bench json writes");
    eprintln!("wrote {}", path.display());
    path
}

/// Latency distribution summary over recorded samples, in microseconds.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// 50th percentile (µs).
    pub p50_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// Arithmetic mean (µs).
    pub mean_us: f64,
    /// Maximum (µs).
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes a set of latency samples (order irrelevant).
    pub fn from_samples(samples: &mut [Duration]) -> LatencySummary {
        assert!(!samples.is_empty(), "no latency samples recorded");
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx].as_secs_f64() * 1e6
        };
        let mean =
            samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64 * 1e6;
        LatencySummary {
            count: samples.len(),
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            mean_us: mean,
            max_us: samples.last().unwrap().as_secs_f64() * 1e6,
        }
    }

    /// This summary as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "count": self.count,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
        })
    }
}

/// Times `iters` runs of `f` and returns per-iteration latencies — a tiny
/// measurement loop for emitting JSON alongside criterion's own output.
pub fn time_iters(iters: usize, mut f: impl FnMut()) -> Vec<Duration> {
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        out.push(t.elapsed());
    }
    out
}

/// Thread count of the current process per `/proc/self/status`.
pub fn process_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:").map(|v| v.trim().to_string()))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.count, 100);
        assert!((s.p50_us - 50.0).abs() <= 1.0, "p50 {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() <= 1.0, "p99 {}", s.p99_us);
        assert_eq!(s.max_us, 100.0);
    }

    #[test]
    fn thread_count_reads_procfs() {
        assert!(process_thread_count() >= 1);
    }

    #[test]
    fn bench_json_roundtrip() {
        let dir = crate::tmpdir("report");
        std::env::set_var("CEEMS_BENCH_DIR", &dir);
        let path = write_bench_json("selftest", &serde_json::json!({"ok": true}));
        std::env::remove_var("CEEMS_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
