//! Eq. (1): per-workload power attribution.
//!
//! §III of the paper estimates job power by splitting the IPMI node power:
//! 90 % goes to CPU+DRAM (split by the ratio of RAPL CPU and DRAM watts,
//! then shared by CPU-time and memory shares respectively) and 10 % to the
//! network, shared equally among running jobs. Different node groups get
//! different rules — Intel nodes have DRAM counters, AMD nodes do not, and
//! GPU servers come in two IPMI wirings (§III) — which is exactly how this
//! module is organised: [`rules_for_group`] emits the recording rules for
//! one scrape-target group, and [`attribute`] is the closed-form reference
//! the experiments validate the rule pipeline against.

use ceems_simnode::node::HardwareProfile;
use ceems_simnode::power::IpmiCoverage;
use ceems_tsdb::rules::{RecordingRule, RuleGroup};

/// Scrape-target node groups (the `nodegroup` label stamped by the scrape
/// config).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeGroup {
    /// Intel CPUs with package + DRAM RAPL domains.
    IntelDram,
    /// AMD CPUs with package RAPL only.
    AmdNoDram,
    /// GPU servers whose IPMI reading includes GPU power (type A).
    GpuIpmiInclusive,
    /// GPU servers whose IPMI reading excludes GPU power (type B).
    GpuIpmiExclusive,
}

impl NodeGroup {
    /// The `nodegroup` label value.
    pub fn label(self) -> &'static str {
        match self {
            NodeGroup::IntelDram => "intel-dram",
            NodeGroup::AmdNoDram => "amd-nodram",
            NodeGroup::GpuIpmiInclusive => "gpu-typea",
            NodeGroup::GpuIpmiExclusive => "gpu-typeb",
        }
    }

    /// All groups.
    pub fn all() -> [NodeGroup; 4] {
        [
            NodeGroup::IntelDram,
            NodeGroup::AmdNoDram,
            NodeGroup::GpuIpmiInclusive,
            NodeGroup::GpuIpmiExclusive,
        ]
    }

    /// Classifies a hardware profile into its scrape group.
    pub fn for_profile(profile: &HardwareProfile) -> NodeGroup {
        match profile {
            HardwareProfile::IntelCpu => NodeGroup::IntelDram,
            HardwareProfile::AmdCpu => NodeGroup::AmdNoDram,
            HardwareProfile::Gpu { coverage, .. } => match coverage {
                IpmiCoverage::IncludesGpus => NodeGroup::GpuIpmiInclusive,
                IpmiCoverage::ExcludesGpus => NodeGroup::GpuIpmiExclusive,
            },
        }
    }

    fn has_dram_counters(self) -> bool {
        // GPU nodes are Intel-based in the Jean-Zay fleet.
        !matches!(self, NodeGroup::AmdNoDram)
    }

    fn has_gpus(self) -> bool {
        matches!(self, NodeGroup::GpuIpmiInclusive | NodeGroup::GpuIpmiExclusive)
    }

    fn ipmi_includes_gpus(self) -> bool {
        matches!(self, NodeGroup::GpuIpmiInclusive)
    }
}

/// Fraction of node power attributed to the network (the paper cites a
/// data-centre survey for the 10 % figure).
pub const NETWORK_FRACTION: f64 = 0.1;

/// Builds the recording rules for one node group.
///
/// `window` is the `rate()` window (e.g. `"2m"`). The rules are ordered so
/// intermediates are recorded before the rules that read them; the engine
/// evaluates a group's rules sequentially at the same timestamp, so chains
/// resolve within one evaluation.
pub fn rules_for_group(group: NodeGroup, window: &str) -> Vec<RecordingRule> {
    let g = group.label();
    let w = window;
    let mut rules: Vec<RecordingRule> = Vec::new();
    let mut rule = |record: &str, expr: String, statics: &[(&str, &str)]| {
        rules.push(
            RecordingRule::new(record, &expr, statics)
                .unwrap_or_else(|e| panic!("rule {record} for {g} failed to parse: {e}\n{expr}")),
        );
    };

    // --- Intermediates -------------------------------------------------
    rule(
        "instance:ceems_cpu_busy:rate",
        format!(
            "sum by (instance, nodegroup) (rate(ceems_cpu_seconds_total{{mode!=\"idle\",nodegroup=\"{g}\"}}[{w}]))"
        ),
        &[],
    );
    rule(
        "uuid:ceems_cpu_time:rate",
        format!(
            "sum by (uuid, instance, nodegroup) (rate(ceems_compute_unit_cpu_user_seconds_total{{nodegroup=\"{g}\"}}[{w}])) + sum by (uuid, instance, nodegroup) (rate(ceems_compute_unit_cpu_system_seconds_total{{nodegroup=\"{g}\"}}[{w}]))"
        ),
        &[],
    );
    rule(
        "instance:ceems_njobs:count",
        format!("count by (instance, nodegroup) (uuid:ceems_cpu_time:rate{{nodegroup=\"{g}\"}})"),
        &[],
    );
    if group.has_dram_counters() {
        rule(
            "instance:ceems_rapl_cpu:watts",
            format!(
                "sum by (instance, nodegroup) (rate(ceems_rapl_package_joules_total{{nodegroup=\"{g}\"}}[{w}]))"
            ),
            &[],
        );
        rule(
            "instance:ceems_rapl_dram:watts",
            format!(
                "sum by (instance, nodegroup) (rate(ceems_rapl_dram_joules_total{{nodegroup=\"{g}\"}}[{w}]))"
            ),
            &[],
        );
        rule(
            "instance:ceems_cpufrac:ratio",
            format!(
                "instance:ceems_rapl_cpu:watts{{nodegroup=\"{g}\"}} / (instance:ceems_rapl_cpu:watts{{nodegroup=\"{g}\"}} + instance:ceems_rapl_dram:watts{{nodegroup=\"{g}\"}})"
            ),
            &[],
        );
        rule(
            "instance:ceems_dramfrac:ratio",
            format!(
                "instance:ceems_rapl_dram:watts{{nodegroup=\"{g}\"}} / (instance:ceems_rapl_cpu:watts{{nodegroup=\"{g}\"}} + instance:ceems_rapl_dram:watts{{nodegroup=\"{g}\"}})"
            ),
            &[],
        );
    }
    if group.has_gpus() {
        rule(
            "instance:ceems_gpu_total:watts",
            format!("sum by (instance, nodegroup) (DCGM_FI_DEV_POWER_USAGE{{nodegroup=\"{g}\"}})"),
            &[],
        );
    }

    // Non-GPU (CPU+DRAM+misc) wall power per node.
    let ipmi = format!(
        "sum by (instance, nodegroup) (ceems_ipmi_dcmi_power_current_watts{{nodegroup=\"{g}\"}})"
    );
    if group.ipmi_includes_gpus() && group.has_gpus() {
        // IPMI carries sensor noise while DCGM is exact, so the difference
        // can dip below zero on GPU-dominated nodes; clamp to keep the
        // attribution physical.
        rule(
            "instance:ceems_nongpu:watts",
            format!(
                "clamp_min({ipmi} - instance:ceems_gpu_total:watts{{nodegroup=\"{g}\"}}, 0)"
            ),
            &[],
        );
    } else {
        rule("instance:ceems_nongpu:watts", ipmi, &[]);
    }
    if group.has_gpus() {
        rule(
            "instance:ceems_total:watts",
            format!(
                "instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}} + instance:ceems_gpu_total:watts{{nodegroup=\"{g}\"}}"
            ),
            &[],
        );
    } else {
        rule(
            "instance:ceems_total:watts",
            format!("instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}} + 0"),
            &[],
        );
    }

    // --- Per-job components --------------------------------------------
    let cpu_share =
        format!("(uuid:ceems_cpu_time:rate{{nodegroup=\"{g}\"}} / on (instance) instance:ceems_cpu_busy:rate{{nodegroup=\"{g}\"}})");
    if group.has_dram_counters() {
        rule(
            "uuid:ceems_power_component:watts",
            format!(
                "{cpu_share} * on (instance) (0.9 * instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}} * instance:ceems_cpufrac:ratio{{nodegroup=\"{g}\"}})"
            ),
            &[("component", "cpu")],
        );
        rule(
            "uuid:ceems_power_component:watts",
            format!(
                "(sum by (uuid, instance, nodegroup) (avg_over_time(ceems_compute_unit_memory_used_bytes{{nodegroup=\"{g}\"}}[{w}])) / on (instance) sum by (instance, nodegroup) (avg_over_time(ceems_memory_used_bytes{{nodegroup=\"{g}\"}}[{w}]))) * on (instance) (0.9 * instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}} * instance:ceems_dramfrac:ratio{{nodegroup=\"{g}\"}})"
            ),
            &[("component", "dram")],
        );
    } else {
        // AMD: no DRAM domain — all of the 0.9 share follows CPU time.
        rule(
            "uuid:ceems_power_component:watts",
            format!(
                "{cpu_share} * on (instance) (0.9 * instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}})"
            ),
            &[("component", "cpu")],
        );
    }
    if group.has_gpus() {
        rule(
            "uuid:ceems_power_component:watts",
            format!(
                "sum by (uuid, instance, nodegroup) (ceems_compute_unit_gpu_index_flag{{nodegroup=\"{g}\"}} * on (gpu, instance) DCGM_FI_DEV_POWER_USAGE{{nodegroup=\"{g}\"}})"
            ),
            &[("component", "gpu")],
        );
        rule(
            "uuid:ceems_gpu_util:pct",
            format!(
                "sum by (uuid, instance, nodegroup) (ceems_compute_unit_gpu_index_flag{{nodegroup=\"{g}\"}} * on (gpu, instance) DCGM_FI_DEV_GPU_UTIL{{nodegroup=\"{g}\"}}) / sum by (uuid, instance, nodegroup) (ceems_compute_unit_gpu_index_flag{{nodegroup=\"{g}\"}})"
            ),
            &[],
        );
    }
    // Network share: 10% of the *non-GPU* node power, split equally. GPU
    // draw is measured directly by DCGM and passed through 1:1, so taking
    // the network share from the total would double-count 10% of it.
    rule(
        "uuid:ceems_power_component:watts",
        format!(
            "(uuid:ceems_cpu_time:rate{{nodegroup=\"{g}\"}} * 0 + 1) * on (instance) ({NETWORK_FRACTION} * instance:ceems_nongpu:watts{{nodegroup=\"{g}\"}} / instance:ceems_njobs:count{{nodegroup=\"{g}\"}})"
        ),
        &[("component", "network")],
    );

    // --- Total ----------------------------------------------------------
    rule(
        "uuid:ceems_power:watts",
        format!(
            "sum by (uuid, instance, nodegroup) (uuid:ceems_power_component:watts{{nodegroup=\"{g}\"}})"
        ),
        &[],
    );
    rules
}

/// The full rule set: one group per node group, all on one interval.
pub fn all_rule_groups(window: &str, interval_ms: i64) -> Vec<RuleGroup> {
    NodeGroup::all()
        .into_iter()
        .map(|g| RuleGroup {
            name: format!("ceems-attribution-{}", g.label()),
            interval_ms,
            rules: rules_for_group(g, window),
        })
        .collect()
}

/// One job's observables on a node, for the closed-form reference.
#[derive(Clone, Debug)]
pub struct JobObservables {
    /// Unit uuid.
    pub uuid: String,
    /// CPU time rate (busy cores).
    pub cpu_rate: f64,
    /// Resident memory (bytes).
    pub mem_bytes: f64,
    /// Sum of the job's GPUs' board power (W); 0 for non-GPU jobs.
    pub gpu_w: f64,
}

/// One node's observables at an instant.
#[derive(Clone, Debug)]
pub struct NodeObservables {
    /// Node group.
    pub group: NodeGroup,
    /// IPMI reading (W).
    pub ipmi_w: f64,
    /// RAPL package power (W).
    pub rapl_cpu_w: f64,
    /// RAPL DRAM power (W; ignored for AMD).
    pub rapl_dram_w: f64,
    /// Node busy-CPU rate (busy cores, incl. OS).
    pub node_cpu_rate: f64,
    /// Node memory used (bytes).
    pub node_mem_bytes: f64,
    /// Sum of all GPU board powers on the node (W).
    pub gpu_total_w: f64,
    /// Per-job observables.
    pub jobs: Vec<JobObservables>,
}

/// Closed-form Eq. (1) (with the GPU extension described in `DESIGN.md`):
/// returns `(uuid, watts)` per job. This is what the recording-rule
/// pipeline must reproduce.
pub fn attribute(node: &NodeObservables) -> Vec<(String, f64)> {
    let njobs = node.jobs.len();
    if njobs == 0 {
        return Vec::new();
    }
    let nongpu_w = if node.group.ipmi_includes_gpus() {
        node.ipmi_w - node.gpu_total_w
    } else {
        node.ipmi_w
    };
    let (cpu_frac, dram_frac) = if node.group.has_dram_counters() {
        let denom = node.rapl_cpu_w + node.rapl_dram_w;
        if denom > 0.0 {
            (node.rapl_cpu_w / denom, node.rapl_dram_w / denom)
        } else {
            (1.0, 0.0)
        }
    } else {
        (1.0, 0.0)
    };
    // 10% of the non-GPU power (GPU draw is exact, not estimated — sharing
    // a fraction of it to the network would double-count).
    let net_per_job = NETWORK_FRACTION * nongpu_w / njobs as f64;

    node.jobs
        .iter()
        .map(|j| {
            let cpu_share = if node.node_cpu_rate > 0.0 {
                j.cpu_rate / node.node_cpu_rate
            } else {
                0.0
            };
            let mem_share = if node.node_mem_bytes > 0.0 {
                j.mem_bytes / node.node_mem_bytes
            } else {
                0.0
            };
            let cpu_w = 0.9 * nongpu_w * cpu_frac * cpu_share;
            let dram_w = if node.group.has_dram_counters() {
                0.9 * nongpu_w * dram_frac * mem_share
            } else {
                0.0
            };
            (j.uuid.clone(), cpu_w + dram_w + j.gpu_w + net_per_job)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::labels;
    use ceems_metrics::matcher::LabelMatcher;
    use ceems_tsdb::rules::RuleEngine;
    use ceems_tsdb::Tsdb;

    #[test]
    fn groups_classify_profiles() {
        use ceems_simnode::power::GpuModel;
        assert_eq!(
            NodeGroup::for_profile(&HardwareProfile::IntelCpu),
            NodeGroup::IntelDram
        );
        assert_eq!(
            NodeGroup::for_profile(&HardwareProfile::AmdCpu),
            NodeGroup::AmdNoDram
        );
        assert_eq!(
            NodeGroup::for_profile(&HardwareProfile::Gpu {
                model: GpuModel::V100,
                count: 4,
                coverage: IpmiCoverage::IncludesGpus
            }),
            NodeGroup::GpuIpmiInclusive
        );
        let labels: std::collections::BTreeSet<_> =
            NodeGroup::all().iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn all_rules_parse() {
        for g in NodeGroup::all() {
            let rules = rules_for_group(g, "2m");
            assert!(rules.len() >= 7, "{g:?} has {} rules", rules.len());
        }
        let groups = all_rule_groups("2m", 30_000);
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn closed_form_conserves_power() {
        let node = NodeObservables {
            group: NodeGroup::IntelDram,
            ipmi_w: 500.0,
            rapl_cpu_w: 240.0,
            rapl_dram_w: 60.0,
            node_cpu_rate: 10.0,
            node_mem_bytes: 100e9,
            gpu_total_w: 0.0,
            jobs: vec![
                JobObservables {
                    uuid: "a".into(),
                    cpu_rate: 7.0,
                    mem_bytes: 60e9,
                    gpu_w: 0.0,
                },
                JobObservables {
                    uuid: "b".into(),
                    cpu_rate: 3.0,
                    mem_bytes: 40e9,
                    gpu_w: 0.0,
                },
            ],
        };
        let out = attribute(&node);
        let total: f64 = out.iter().map(|(_, w)| w).sum();
        // Shares sum to exactly 1 here, so jobs get 0.9+0.1 of the node.
        assert!((total - 500.0).abs() < 1e-9, "total={total}");
        // Job a: cpu 0.9*500*0.8*0.7=252, dram 0.9*500*0.2*0.6=54, net 25.
        let a = out.iter().find(|(u, _)| u == "a").unwrap().1;
        assert!((a - 331.0).abs() < 1e-9, "a={a}");
    }

    #[test]
    fn closed_form_gpu_wirings_differ() {
        let jobs = vec![JobObservables {
            uuid: "g".into(),
            cpu_rate: 4.0,
            mem_bytes: 50e9,
            gpu_w: 800.0,
        }];
        let base = NodeObservables {
            group: NodeGroup::GpuIpmiInclusive,
            ipmi_w: 1400.0,
            rapl_cpu_w: 200.0,
            rapl_dram_w: 50.0,
            node_cpu_rate: 4.0,
            node_mem_bytes: 50e9,
            gpu_total_w: 800.0,
            jobs: jobs.clone(),
        };
        let inclusive = attribute(&base)[0].1;
        // Type A: nongpu = 1400-800 = 600; the lone job gets the whole node
        // back: 0.9*600 + 800 + 0.1*600 = 1400 = IPMI. Conservation exact.
        assert!((inclusive - 1400.0).abs() < 1e-9, "inclusive={inclusive}");

        let exclusive = attribute(&NodeObservables {
            group: NodeGroup::GpuIpmiExclusive,
            ..base
        })[0]
            .1;
        // Type B: ipmi (1400) is already non-GPU; total = 1400 + 800.
        assert!((exclusive - 2200.0).abs() < 1e-9, "exclusive={exclusive}");
        assert!(exclusive > inclusive);
    }

    #[test]
    fn empty_node_attributes_nothing() {
        let node = NodeObservables {
            group: NodeGroup::AmdNoDram,
            ipmi_w: 300.0,
            rapl_cpu_w: 100.0,
            rapl_dram_w: 0.0,
            node_cpu_rate: 0.5,
            node_mem_bytes: 8e9,
            gpu_total_w: 0.0,
            jobs: vec![],
        };
        assert!(attribute(&node).is_empty());
    }

    /// The E5 experiment in miniature: feed a TSDB with raw exporter-shaped
    /// series, run the recording rules, and check the derived per-job power
    /// matches the closed form.
    #[test]
    fn rule_pipeline_matches_closed_form() {
        let db = Tsdb::default();
        let g = NodeGroup::IntelDram.label();
        let inst = "jz-intel-0001:9100";
        // 10 minutes of 15 s samples. Node: busy 10 cores (7 job-a, 3
        // job-b... plus 0 overhead to keep closed form exact), RAPL 240/60 W,
        // IPMI 500 W, memory 60/40 of 100 GB.
        for i in 0..41i64 {
            let t = i * 15_000;
            let secs = (i * 15) as f64;
            db.append(&labels! {"__name__" => "ceems_ipmi_dcmi_power_current_watts", "instance" => inst, "nodegroup" => g}, t, 500.0);
            db.append(&labels! {"__name__" => "ceems_rapl_package_joules_total", "instance" => inst, "nodegroup" => g, "path" => "intel-rapl:0"}, t, 240.0 * secs);
            db.append(&labels! {"__name__" => "ceems_rapl_dram_joules_total", "instance" => inst, "nodegroup" => g, "path" => "intel-rapl:0:0"}, t, 60.0 * secs);
            db.append(&labels! {"__name__" => "ceems_cpu_seconds_total", "mode" => "user", "instance" => inst, "nodegroup" => g}, t, 9.0 * secs);
            db.append(&labels! {"__name__" => "ceems_cpu_seconds_total", "mode" => "system", "instance" => inst, "nodegroup" => g}, t, 1.0 * secs);
            db.append(&labels! {"__name__" => "ceems_cpu_seconds_total", "mode" => "idle", "instance" => inst, "nodegroup" => g}, t, 30.0 * secs);
            for (uuid, cores, mem) in [("slurm-1", 7.0, 60e9), ("slurm-2", 3.0, 40e9)] {
                db.append(&labels! {"__name__" => "ceems_compute_unit_cpu_user_seconds_total", "uuid" => uuid, "instance" => inst, "nodegroup" => g}, t, cores * 0.92 * secs);
                db.append(&labels! {"__name__" => "ceems_compute_unit_cpu_system_seconds_total", "uuid" => uuid, "instance" => inst, "nodegroup" => g}, t, cores * 0.08 * secs);
                db.append(&labels! {"__name__" => "ceems_compute_unit_memory_used_bytes", "uuid" => uuid, "instance" => inst, "nodegroup" => g}, t, mem);
            }
            db.append(&labels! {"__name__" => "ceems_memory_used_bytes", "instance" => inst, "nodegroup" => g}, t, 100e9);
        }

        let mut engine = RuleEngine::new(all_rule_groups("2m", 30_000));
        let written = engine.force_eval(&db, 600_000);
        assert!(written > 0, "rules wrote nothing");
        assert_eq!(engine.stats().failures, 0);

        let got = db.select(
            &[LabelMatcher::eq("__name__", "uuid:ceems_power:watts")],
            599_000,
            601_000,
        );
        assert_eq!(got.len(), 2, "expected 2 per-job power series");

        let expected = attribute(&NodeObservables {
            group: NodeGroup::IntelDram,
            ipmi_w: 500.0,
            rapl_cpu_w: 240.0,
            rapl_dram_w: 60.0,
            node_cpu_rate: 10.0,
            node_mem_bytes: 100e9,
            gpu_total_w: 0.0,
            jobs: vec![
                JobObservables {
                    uuid: "slurm-1".into(),
                    cpu_rate: 7.0,
                    mem_bytes: 60e9,
                    gpu_w: 0.0,
                },
                JobObservables {
                    uuid: "slurm-2".into(),
                    cpu_rate: 3.0,
                    mem_bytes: 40e9,
                    gpu_w: 0.0,
                },
            ],
        });
        for (uuid, want_w) in expected {
            let series = got
                .iter()
                .find(|s| s.labels.get("uuid") == Some(uuid.as_str()))
                .unwrap_or_else(|| panic!("missing series for {uuid}"));
            let got_w = series.samples.last().unwrap().v;
            assert!(
                (got_w - want_w).abs() / want_w < 0.02,
                "{uuid}: rule={got_w:.2} closed-form={want_w:.2}"
            );
        }
        // Conservation: per-job powers sum to the whole node.
        let total: f64 = got.iter().map(|s| s.samples.last().unwrap().v).sum();
        assert!((total - 500.0).abs() / 500.0 < 0.02, "total={total}");
    }
}
