//! Typed configuration for the whole stack, loadable from one YAML file
//! (§II.D: "All the CEEMS components can be configured in a single YAML
//! file where each component will read its relevant configuration").

use ceems_simnode::ClusterSpec;

use crate::yaml::{parse, Yaml};

/// Query-frontend (`ceems-qfe`) settings.
#[derive(Clone, Debug)]
pub struct QfeSettings {
    /// Sub-range width for range splitting (seconds). Default: one day.
    pub split_interval_s: f64,
    /// Results-cache budget in bytes; 0 disables caching.
    pub cache_bytes: usize,
    /// Window before "now" that is never cached (seconds).
    pub recent_window_s: f64,
    /// Queued queries allowed per tenant before shedding with 429.
    pub tenant_queue_depth: usize,
    /// Concurrent queries allowed per tenant.
    pub max_tenant_concurrency: usize,
    /// Staleness bound (seconds) for degraded stale-cache serves: a cached
    /// answer older than this is a 502, not a silently ancient "success".
    /// 0 (the default) keeps the bound off — any cached extent may serve.
    pub max_stale_s: f64,
}

impl Default for QfeSettings {
    fn default() -> Self {
        QfeSettings {
            split_interval_s: 86_400.0,
            cache_bytes: 64 << 20,
            recent_window_s: 600.0,
            tenant_queue_depth: 16,
            max_tenant_concurrency: 4,
            max_stale_s: 0.0,
        }
    }
}

/// The `failover:` YAML section (S24): automatic leader failover for the
/// TSDB replication group. Presence of the section enables it; the stack
/// then runs `replicas` TSDB nodes under a [`ceems_tsdb::ReplicationGroup`]
/// with epoch-fenced writes and deterministic elections.
#[derive(Clone, Debug)]
pub struct FailoverSettings {
    /// Master switch; presence of the `failover:` section enables it.
    pub enabled: bool,
    /// TSDB nodes in the replication group (one leader + followers).
    pub replicas: usize,
    /// Leader liveness probe interval (seconds).
    pub probe_interval_s: f64,
    /// Missed-probe window before the leader is deposed and an election
    /// runs (seconds).
    pub election_timeout_s: f64,
    /// Catch-up gate: a follower lagging the dead leader's last known
    /// position by more than this many WAL records is not promotable.
    /// `u64::MAX` (the default) promotes the most-caught-up candidate
    /// unconditionally.
    pub min_catchup_records: u64,
}

impl Default for FailoverSettings {
    fn default() -> Self {
        FailoverSettings {
            enabled: false,
            replicas: 3,
            probe_interval_s: 1.0,
            election_timeout_s: 3.0,
            min_catchup_records: u64::MAX,
        }
    }
}

impl FailoverSettings {
    /// These settings as the TSDB crate's [`ceems_tsdb::FailoverConfig`].
    pub fn failover_config(&self) -> ceems_tsdb::FailoverConfig {
        ceems_tsdb::FailoverConfig {
            probe_interval_ms: (self.probe_interval_s * 1000.0).max(1.0) as i64,
            election_timeout_ms: (self.election_timeout_s * 1000.0).max(1.0) as i64,
            min_catchup_records: self.min_catchup_records,
            ..Default::default()
        }
    }
}

/// The `http:` YAML section: tuning for the shared epoll HTTP substrate
/// (S20) — every served component and every pooled client reads these.
#[derive(Clone, Debug)]
pub struct HttpSettings {
    /// Open-connection cap per server; accepts beyond it are shed so the
    /// process never exhausts its fd table.
    pub max_connections: usize,
    /// Keep-alive connections idle for longer than this are closed (s).
    pub idle_timeout_s: f64,
    /// Epoll event-loop threads per server.
    pub reactor_threads: usize,
    /// Idle keep-alive connections a client pools per host; 0 disables
    /// client-side connection reuse.
    pub pool_per_host: usize,
    /// Listen backlog for the accept queue.
    pub backlog: i32,
}

impl Default for HttpSettings {
    fn default() -> Self {
        let sc = ceems_http::ServerConfig::default();
        HttpSettings {
            max_connections: sc.max_connections,
            idle_timeout_s: sc.idle_timeout.as_secs_f64(),
            reactor_threads: sc.reactor_threads,
            pool_per_host: ceems_http::pool::DEFAULT_POOL_PER_HOST,
            backlog: sc.backlog,
        }
    }
}

impl HttpSettings {
    /// These settings as a [`ceems_http::ServerConfig`] bound to an
    /// ephemeral port (components override `addr`/`workers`/auth on top).
    pub fn server_config(&self) -> ceems_http::ServerConfig {
        ceems_http::ServerConfig::ephemeral()
            .with_max_connections(self.max_connections)
            .with_idle_timeout(std::time::Duration::from_secs_f64(
                self.idle_timeout_s.max(0.001),
            ))
            .with_reactor_threads(self.reactor_threads)
            .with_backlog(self.backlog)
    }

    /// A pooled [`ceems_http::Client`] honoring `pool_per_host`.
    pub fn client(&self) -> ceems_http::Client {
        ceems_http::Client::new().with_pool_per_host(self.pool_per_host)
    }
}

/// One fault rule from the `fault:` YAML section. Plain data: it parses in
/// every build, but only binaries compiled with the `fault` feature turn it
/// into live injection ([`FaultSettings::build_plan`]).
#[derive(Clone, Debug)]
pub struct FaultRuleSettings {
    /// Fault kind: `latency`, `reset`, `5xx`, `truncate` or `corrupt`.
    pub kind: String,
    /// Substring of the request path that the rule applies to (empty =
    /// every request).
    pub endpoint: String,
    /// Injection probability per request, clamped to `[0, 1]`.
    pub probability: f64,
    /// Kind parameter: delay in ms for `latency`, status code for `5xx`.
    pub param: f64,
    /// The rule only fires from this per-endpoint request index on.
    pub after: u64,
    /// The rule stops firing at this request index (0 = never stops).
    pub until: u64,
}

/// The `fault:` YAML section: a seeded, deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultSettings {
    /// Seed for the schedule; the same seed over the same request sequence
    /// replays the exact same faults.
    pub seed: u64,
    /// Rules, evaluated in order per request.
    pub rules: Vec<FaultRuleSettings>,
}

impl FaultSettings {
    /// True when at least one rule is configured.
    pub fn enabled(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Builds the live [`ceems_http::fault::FaultPlan`] for this schedule.
    /// Only exists in `fault`-feature builds; production binaries compile
    /// the section down to inert data.
    #[cfg(feature = "fault")]
    pub fn build_plan(&self) -> Result<ceems_http::fault::FaultPlan, String> {
        use ceems_http::fault::{FaultKind, FaultRule};
        let mut plan = ceems_http::fault::FaultPlan::new(self.seed);
        for r in &self.rules {
            let kind = match r.kind.as_str() {
                "latency" => FaultKind::Latency {
                    ms: r.param.max(0.0) as u64,
                },
                "reset" => FaultKind::ConnReset,
                "5xx" => FaultKind::ServerError {
                    status: if (100.0..=599.0).contains(&r.param) {
                        r.param as u16
                    } else {
                        503
                    },
                },
                "truncate" => FaultKind::TruncateBody,
                "corrupt" => FaultKind::CorruptBody,
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            let until = if r.until == 0 { u64::MAX } else { r.until };
            plan = plan
                .with_rule(FaultRule::new(&r.endpoint, kind, r.probability).between(r.after, until));
        }
        Ok(plan)
    }
}

/// The `resilience:` YAML section: retry, deadline and breaker tuning
/// shared by every client-side hop in the stack.
#[derive(Clone, Debug)]
pub struct ResilienceSettings {
    /// Attempts per logical request (1 = no retries).
    pub retry_attempts: u32,
    /// First backoff ceiling (ms).
    pub retry_base_ms: u64,
    /// Backoff ceiling cap (ms).
    pub retry_max_ms: u64,
    /// Total deadline across attempts and sleeps (ms); 0 disables.
    pub deadline_ms: u64,
    /// Consecutive failures that open a circuit breaker.
    pub breaker_failures: u32,
    /// Time an open breaker waits before half-open probes (ms).
    pub breaker_cooldown_ms: u64,
}

impl Default for ResilienceSettings {
    fn default() -> Self {
        ResilienceSettings {
            retry_attempts: 3,
            retry_base_ms: 10,
            retry_max_ms: 500,
            deadline_ms: 2_000,
            breaker_failures: 3,
            breaker_cooldown_ms: 1_000,
        }
    }
}

impl ResilienceSettings {
    /// These settings as a [`ceems_http::resilience::RetryPolicy`].
    pub fn retry_policy(&self) -> ceems_http::resilience::RetryPolicy {
        let p = ceems_http::resilience::RetryPolicy::new(self.retry_attempts).with_backoff(
            std::time::Duration::from_millis(self.retry_base_ms),
            std::time::Duration::from_millis(self.retry_max_ms.max(self.retry_base_ms)),
        );
        if self.deadline_ms > 0 {
            p.with_deadline(std::time::Duration::from_millis(self.deadline_ms))
        } else {
            p
        }
    }

    /// These settings as a [`ceems_http::resilience::BreakerConfig`].
    pub fn breaker_config(&self) -> ceems_http::resilience::BreakerConfig {
        ceems_http::resilience::BreakerConfig {
            failure_threshold: self.breaker_failures.max(1),
            cooldown_ms: self.breaker_cooldown_ms.max(1),
            half_open_max_probes: 1,
        }
    }
}

/// The `alerting:` YAML section (`ceems-alertsrv`): evaluation cadence,
/// Alertmanager-style group timers, delivery target, and thresholds for
/// the built-in rule packs (a non-positive threshold disables its pack).
#[derive(Clone, Debug)]
pub struct AlertingSettings {
    /// Master switch; the stack only builds an alerting service when true.
    pub enabled: bool,
    /// Rule-evaluation interval (seconds).
    pub eval_interval_s: f64,
    /// Delay before a new group's first notification (seconds).
    pub group_wait_s: f64,
    /// Minimum spacing between notifications for a changed group (s).
    pub group_interval_s: f64,
    /// Re-notification interval for an unchanged firing group (s).
    pub repeat_interval_s: f64,
    /// How long resolved alerts are retained before GC (seconds).
    pub resolved_retention_s: f64,
    /// Webhook receiver URL; unset routes everything to the log sink.
    pub webhook_url: Option<String>,
    /// Per-project energy budget (W); the pack fires per `uuid` above it.
    pub energy_budget_watts: f64,
    /// `for:` hold of the energy-budget pack (seconds).
    pub energy_budget_for_s: f64,
    /// Emission-factor staleness bound (seconds) before the
    /// factor-source-down pack fires.
    pub factor_max_age_s: f64,
    /// Per-node power bound (W) for the node-anomaly pack.
    pub node_power_max_watts: f64,
    /// Replica WAL-lag bound (records) for the replica-lag pack.
    pub wal_lag_max_records: f64,
}

impl Default for AlertingSettings {
    fn default() -> Self {
        AlertingSettings {
            enabled: false,
            eval_interval_s: 30.0,
            group_wait_s: 15.0,
            group_interval_s: 60.0,
            repeat_interval_s: 4.0 * 3600.0,
            resolved_retention_s: 300.0,
            webhook_url: None,
            energy_budget_watts: 0.0,
            energy_budget_for_s: 120.0,
            factor_max_age_s: 0.0,
            node_power_max_watts: 0.0,
            wal_lag_max_records: 0.0,
        }
    }
}

/// The `obs:` YAML section (S22): always-on trace sampling and the durable
/// trace store every component ships finished `TraceReport`s to.
#[derive(Clone, Debug)]
pub struct ObsSettings {
    /// Head-sampling probability for finished traces, in `[0, 1]`. The
    /// decision hashes the trace ID, so every hop of a request reaches the
    /// same verdict. 0 disables head sampling (tail capture still applies).
    pub trace_sample_rate: f64,
    /// Per-tenant overrides of `trace_sample_rate`, each in `[0, 1]`. The
    /// query frontend resolves the effective rate and propagates it
    /// downstream; the reserved `__ceems_meta__` tenant is always pinned
    /// to 1.0 regardless of this map.
    pub tenant_sample_rates: std::collections::BTreeMap<String, f64>,
    /// Tail-capture threshold (ms): every trace slower than this is stored
    /// regardless of the head decision. Non-positive disables tail capture.
    pub trace_slow_ms: f64,
    /// Byte bound of the trace ring buffer; oldest spans are evicted first.
    pub trace_store_max_bytes: u64,
    /// Age bound (seconds) for stored spans, enforced by GC on
    /// `CeemsStack::advance`. Non-positive disables age eviction.
    pub trace_store_max_age_s: f64,
}

impl Default for ObsSettings {
    fn default() -> Self {
        ObsSettings {
            trace_sample_rate: 0.1,
            tenant_sample_rates: Default::default(),
            trace_slow_ms: 250.0,
            trace_store_max_bytes: 4 << 20,
            trace_store_max_age_s: 3600.0,
        }
    }
}

/// The `stream:` YAML section (S23): push-mode sample ingest over the
/// streaming bus plus live query push. Presence of the section enables it;
/// exporters then publish renders instead of being scraped, recording rules
/// re-evaluate incrementally, and `query_live` subscriptions are served.
#[derive(Clone, Debug)]
pub struct StreamSettings {
    /// Master switch; presence of the `stream:` section enables it.
    pub enabled: bool,
    /// Topic exporter renders are published on.
    pub topic: String,
    /// Replay-ring capacity per (tenant, topic); subscribers resuming from
    /// an offset older than the ring receive a gap record.
    pub ring_capacity: usize,
    /// Raw-frame subscriber cap per tenant on `/api/v1/stream/subscribe`.
    pub max_subscribers_per_tenant: usize,
    /// Live `query_live` subscription cap per tenant at the frontend.
    pub max_live_per_tenant: usize,
}

impl Default for StreamSettings {
    fn default() -> Self {
        StreamSettings {
            enabled: false,
            topic: "node-metrics".to_string(),
            ring_capacity: 256,
            max_subscribers_per_tenant: 64,
            max_live_per_tenant: 16,
        }
    }
}

/// The `meta:` YAML section (S22): self-scrape meta-monitoring — the stack
/// scrapes every component's own `/metrics` into the reserved
/// `__ceems_meta__` tenant of its own TSDB.
#[derive(Clone, Debug)]
pub struct MetaSettings {
    /// Master switch; presence of the `meta:` section enables it.
    pub enabled: bool,
    /// Self-scrape interval (seconds).
    pub scrape_interval_s: f64,
    /// Staleness bound (seconds) before the `MetaScrapeStale` alert fires.
    pub stale_after_s: f64,
    /// Breaker opens over 5 minutes before `BreakerOpenStorm` fires.
    pub breaker_storm_opens: f64,
}

impl Default for MetaSettings {
    fn default() -> Self {
        MetaSettings {
            enabled: false,
            scrape_interval_s: 30.0,
            stale_after_s: 90.0,
            breaker_storm_opens: 3.0,
        }
    }
}

/// Churn generator settings.
#[derive(Clone, Debug)]
pub struct ChurnSettings {
    /// Distinct users.
    pub users: usize,
    /// Projects.
    pub projects: usize,
    /// Mean arrivals per simulated hour.
    pub arrivals_per_hour: f64,
}

/// Full stack configuration.
#[derive(Clone, Debug)]
pub struct CeemsConfig {
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// RNG seed for the whole simulation.
    pub seed: u64,
    /// Scrape interval (seconds).
    pub scrape_interval_s: f64,
    /// Recording-rule `rate()` window (PromQL duration, e.g. `2m`).
    pub rule_window: String,
    /// Recording-rule evaluation interval (seconds).
    pub rule_interval_s: f64,
    /// API-server updater poll interval (seconds).
    pub updater_interval_s: f64,
    /// §II.C cleanup: purge TSDB series of units shorter than this
    /// (seconds); 0 disables.
    pub cleanup_cutoff_s: f64,
    /// Country/zone for emission factors.
    pub zone: String,
    /// Emission providers to enable, in priority order
    /// (`rte`, `emaps`, `owid`).
    pub emission_providers: Vec<String>,
    /// Operators allowed unscoped queries.
    pub admin_users: Vec<String>,
    /// LB strategy: `round_robin` or `least_connection`.
    pub lb_strategy: String,
    /// Churn generation; `None` means jobs are submitted manually.
    pub churn: Option<ChurnSettings>,
    /// Worker threads for stepping/scraping.
    pub threads: usize,
    /// Worker threads for TSDB select materialization and intra-group rule
    /// evaluation (1 = serial read path).
    pub query_threads: usize,
    /// Capacity of the TSDB matcher-result posting cache; 0 disables it.
    pub posting_cache_size: usize,
    /// WAL directory for the hot TSDB; `None` (default) keeps the head
    /// purely in memory with no durability.
    pub wal_dir: Option<String>,
    /// WAL segment rotation size in bytes.
    pub wal_segment_bytes: u64,
    /// Seconds between WAL checkpoints (covered segments are GC'd).
    pub wal_checkpoint_interval_s: f64,
    /// WAL fsync policy: `always`, `batch`, or `never`.
    pub wal_fsync: String,
    /// Slow-query log threshold in milliseconds; queries slower than this
    /// emit one structured log line. Non-positive (the default) disables.
    pub slow_query_ms: f64,
    /// Sustained `/api/v1/wal/fetch` rate allowed per follower (req/s).
    pub wal_fetch_rate_per_s: f64,
    /// Token-bucket burst for `/api/v1/wal/fetch`.
    pub wal_fetch_burst: f64,
    /// Query-frontend settings (always present; the stack only runs a
    /// frontend when one is served explicitly).
    pub qfe: QfeSettings,
    /// HTTP substrate tuning shared by every server and client.
    pub http: HttpSettings,
    /// Fault-injection schedule (inert without the `fault` feature).
    pub fault: FaultSettings,
    /// Retry/deadline/breaker tuning for every client-side hop.
    pub resilience: ResilienceSettings,
    /// Alerting service settings (disabled by default).
    pub alerting: AlertingSettings,
    /// Trace sampling + durable trace-store settings.
    pub obs: ObsSettings,
    /// Self-scrape meta-monitoring settings (disabled by default).
    pub meta: MetaSettings,
    /// Streaming ingest bus + live query push (disabled by default).
    pub stream: StreamSettings,
    /// TSDB leader failover (disabled by default).
    pub failover: FailoverSettings,
}

impl Default for CeemsConfig {
    fn default() -> Self {
        CeemsConfig {
            cluster: ClusterSpec::small(),
            seed: 42,
            scrape_interval_s: 15.0,
            rule_window: "2m".to_string(),
            rule_interval_s: 30.0,
            updater_interval_s: 60.0,
            cleanup_cutoff_s: 0.0,
            zone: "FR".to_string(),
            emission_providers: vec!["rte".into(), "owid".into()],
            admin_users: vec!["root".into()],
            lb_strategy: "round_robin".to_string(),
            churn: None,
            threads: 4,
            query_threads: 4,
            posting_cache_size: 128,
            wal_dir: None,
            wal_segment_bytes: 4 << 20,
            wal_checkpoint_interval_s: 300.0,
            wal_fsync: "batch".to_string(),
            slow_query_ms: 0.0,
            wal_fetch_rate_per_s: 200.0,
            wal_fetch_burst: 50.0,
            qfe: QfeSettings::default(),
            http: HttpSettings::default(),
            fault: FaultSettings::default(),
            resilience: ResilienceSettings::default(),
            alerting: AlertingSettings::default(),
            obs: ObsSettings::default(),
            meta: MetaSettings::default(),
            stream: StreamSettings::default(),
            failover: FailoverSettings::default(),
        }
    }
}

impl CeemsConfig {
    /// Parses the single-file YAML configuration; unset keys keep defaults.
    pub fn from_yaml(text: &str) -> Result<CeemsConfig, String> {
        let doc = parse(text).map_err(|e| e.to_string())?;
        let mut cfg = CeemsConfig::default();

        if let Some(c) = doc.get("cluster") {
            let mut spec = ClusterSpec::small();
            let get = |k: &str, default: usize| -> usize {
                c.get(k).and_then(Yaml::as_i64).map(|v| v as usize).unwrap_or(default)
            };
            spec.intel_nodes = get("intel_nodes", spec.intel_nodes);
            spec.amd_nodes = get("amd_nodes", spec.amd_nodes);
            spec.v100_nodes = get("v100_nodes", spec.v100_nodes);
            spec.a100_nodes = get("a100_nodes", spec.a100_nodes);
            spec.h100_nodes = get("h100_nodes", spec.h100_nodes);
            if c.get("preset").and_then(Yaml::as_str) == Some("jean-zay") {
                spec = ClusterSpec::jean_zay();
            }
            cfg.cluster = spec;
            if let Some(seed) = c.get("seed").and_then(Yaml::as_i64) {
                cfg.seed = seed as u64;
            }
        }
        if let Some(t) = doc.get("tsdb") {
            if let Some(v) = t.get("scrape_interval_s").and_then(Yaml::as_f64) {
                cfg.scrape_interval_s = v;
            }
            if let Some(v) = t.get("rule_window").and_then(Yaml::as_str) {
                cfg.rule_window = v.to_string();
            }
            if let Some(v) = t.get("rule_interval_s").and_then(Yaml::as_f64) {
                cfg.rule_interval_s = v;
            }
            if let Some(v) = t.get("query_threads").and_then(Yaml::as_i64) {
                cfg.query_threads = (v as usize).max(1);
            }
            if let Some(v) = t.get("posting_cache_size").and_then(Yaml::as_i64) {
                cfg.posting_cache_size = (v.max(0)) as usize;
            }
            if let Some(v) = t.get("wal_dir").and_then(Yaml::as_str) {
                cfg.wal_dir = Some(v.to_string());
            }
            if let Some(v) = t.get("wal_segment_bytes").and_then(Yaml::as_i64) {
                cfg.wal_segment_bytes = v.max(1) as u64;
            }
            if let Some(v) = t.get("wal_checkpoint_interval_s").and_then(Yaml::as_f64) {
                cfg.wal_checkpoint_interval_s = v;
            }
            if let Some(v) = t.get("slow_query_ms").and_then(Yaml::as_f64) {
                cfg.slow_query_ms = v;
            }
            if let Some(v) = t.get("wal_fsync").and_then(Yaml::as_str) {
                if ceems_tsdb::FsyncMode::parse(v).is_none() {
                    return Err(format!(
                        "bad tsdb.wal_fsync value {v:?} (expected always|batch|never)"
                    ));
                }
                cfg.wal_fsync = v.to_string();
            }
            if let Some(v) = t.get("wal_fetch_rate_per_s").and_then(Yaml::as_f64) {
                cfg.wal_fetch_rate_per_s = v.max(0.001);
            }
            if let Some(v) = t.get("wal_fetch_burst").and_then(Yaml::as_f64) {
                cfg.wal_fetch_burst = v.max(1.0);
            }
        }
        if let Some(q) = doc.get("qfe") {
            if let Some(v) = q.get("split_interval_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!("qfe.split_interval_s must be positive, got {v}"));
                }
                cfg.qfe.split_interval_s = v;
            }
            if let Some(v) = q.get("cache_bytes").and_then(Yaml::as_i64) {
                cfg.qfe.cache_bytes = v.max(0) as usize;
            }
            if let Some(v) = q.get("recent_window_s").and_then(Yaml::as_f64) {
                cfg.qfe.recent_window_s = v.max(0.0);
            }
            if let Some(v) = q.get("tenant_queue_depth").and_then(Yaml::as_i64) {
                cfg.qfe.tenant_queue_depth = (v as usize).max(1);
            }
            if let Some(v) = q.get("max_tenant_concurrency").and_then(Yaml::as_i64) {
                cfg.qfe.max_tenant_concurrency = (v as usize).max(1);
            }
            if let Some(v) = q.get("max_stale_s").and_then(Yaml::as_f64) {
                if v < 0.0 {
                    return Err(format!("qfe.max_stale_s must be non-negative, got {v}"));
                }
                cfg.qfe.max_stale_s = v;
            }
        }
        if let Some(a) = doc.get("api_server") {
            if let Some(v) = a.get("update_interval_s").and_then(Yaml::as_f64) {
                cfg.updater_interval_s = v;
            }
            if let Some(v) = a.get("cleanup_cutoff_s").and_then(Yaml::as_f64) {
                cfg.cleanup_cutoff_s = v;
            }
            if let Some(admins) = a.get("admin_users").and_then(Yaml::as_seq) {
                cfg.admin_users = admins
                    .iter()
                    .filter_map(|y| y.as_str().map(str::to_string))
                    .collect();
            }
        }
        if let Some(e) = doc.get("emissions") {
            if let Some(v) = e.get("zone").and_then(Yaml::as_str) {
                cfg.zone = v.to_string();
            }
            if let Some(ps) = e.get("providers").and_then(Yaml::as_seq) {
                cfg.emission_providers = ps
                    .iter()
                    .filter_map(|y| y.as_str().map(str::to_string))
                    .collect();
            }
        }
        if let Some(l) = doc.get("lb") {
            if let Some(v) = l.get("strategy").and_then(Yaml::as_str) {
                match v {
                    "round_robin" | "least_connection" => cfg.lb_strategy = v.to_string(),
                    other => return Err(format!("unknown lb strategy {other:?}")),
                }
            }
        }
        if let Some(c) = doc.get("churn") {
            cfg.churn = Some(ChurnSettings {
                users: c.get("users").and_then(Yaml::as_i64).unwrap_or(20) as usize,
                projects: c.get("projects").and_then(Yaml::as_i64).unwrap_or(5) as usize,
                arrivals_per_hour: c
                    .get("arrivals_per_hour")
                    .and_then(Yaml::as_f64)
                    .unwrap_or(100.0),
            });
        }
        if let Some(h) = doc.get("http") {
            if let Some(v) = h.get("max_connections").and_then(Yaml::as_i64) {
                cfg.http.max_connections = (v as usize).max(1);
            }
            if let Some(v) = h.get("idle_timeout_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!("http.idle_timeout_s must be positive, got {v}"));
                }
                cfg.http.idle_timeout_s = v;
            }
            if let Some(v) = h.get("reactor_threads").and_then(Yaml::as_i64) {
                cfg.http.reactor_threads = (v as usize).clamp(1, 64);
            }
            if let Some(v) = h.get("pool_per_host").and_then(Yaml::as_i64) {
                cfg.http.pool_per_host = v.max(0) as usize;
            }
            if let Some(v) = h.get("backlog").and_then(Yaml::as_i64) {
                cfg.http.backlog = (v as i32).max(1);
            }
        }
        if let Some(f) = doc.get("fault") {
            if let Some(v) = f.get("seed").and_then(Yaml::as_i64) {
                cfg.fault.seed = v as u64;
            }
            if let Some(rules) = f.get("rules").and_then(Yaml::as_seq) {
                for r in rules {
                    let kind = r
                        .get("kind")
                        .and_then(Yaml::as_str)
                        .ok_or("fault rule missing kind")?
                        .to_string();
                    if !matches!(kind.as_str(), "latency" | "reset" | "5xx" | "truncate" | "corrupt")
                    {
                        return Err(format!(
                            "unknown fault kind {kind:?} (expected latency|reset|5xx|truncate|corrupt)"
                        ));
                    }
                    cfg.fault.rules.push(FaultRuleSettings {
                        kind,
                        endpoint: r
                            .get("endpoint")
                            .and_then(Yaml::as_str)
                            .unwrap_or("")
                            .to_string(),
                        probability: r
                            .get("probability")
                            .and_then(Yaml::as_f64)
                            .unwrap_or(1.0)
                            .clamp(0.0, 1.0),
                        param: r.get("param").and_then(Yaml::as_f64).unwrap_or(0.0),
                        after: r.get("after").and_then(Yaml::as_i64).unwrap_or(0).max(0) as u64,
                        until: r.get("until").and_then(Yaml::as_i64).unwrap_or(0).max(0) as u64,
                    });
                }
            }
        }
        if let Some(r) = doc.get("resilience") {
            if let Some(v) = r.get("retry_attempts").and_then(Yaml::as_i64) {
                cfg.resilience.retry_attempts = v.clamp(1, 100) as u32;
            }
            if let Some(v) = r.get("retry_base_ms").and_then(Yaml::as_i64) {
                cfg.resilience.retry_base_ms = v.max(0) as u64;
            }
            if let Some(v) = r.get("retry_max_ms").and_then(Yaml::as_i64) {
                cfg.resilience.retry_max_ms = v.max(0) as u64;
            }
            if let Some(v) = r.get("deadline_ms").and_then(Yaml::as_i64) {
                cfg.resilience.deadline_ms = v.max(0) as u64;
            }
            if let Some(v) = r.get("breaker_failures").and_then(Yaml::as_i64) {
                cfg.resilience.breaker_failures = v.clamp(1, 1_000) as u32;
            }
            if let Some(v) = r.get("breaker_cooldown_ms").and_then(Yaml::as_i64) {
                cfg.resilience.breaker_cooldown_ms = v.max(1) as u64;
            }
        }
        if let Some(a) = doc.get("alerting") {
            cfg.alerting.enabled = a.get("enabled").and_then(Yaml::as_bool).unwrap_or(true);
            if let Some(v) = a.get("eval_interval_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!(
                        "alerting.eval_interval_s must be positive, got {v}"
                    ));
                }
                cfg.alerting.eval_interval_s = v;
            }
            if let Some(v) = a.get("group_wait_s").and_then(Yaml::as_f64) {
                cfg.alerting.group_wait_s = v.max(0.0);
            }
            if let Some(v) = a.get("group_interval_s").and_then(Yaml::as_f64) {
                cfg.alerting.group_interval_s = v.max(0.0);
            }
            if let Some(v) = a.get("repeat_interval_s").and_then(Yaml::as_f64) {
                cfg.alerting.repeat_interval_s = v.max(0.0);
            }
            if let Some(v) = a.get("resolved_retention_s").and_then(Yaml::as_f64) {
                cfg.alerting.resolved_retention_s = v.max(0.0);
            }
            if let Some(v) = a.get("webhook_url").and_then(Yaml::as_str) {
                cfg.alerting.webhook_url = Some(v.to_string());
            }
            if let Some(v) = a.get("energy_budget_watts").and_then(Yaml::as_f64) {
                cfg.alerting.energy_budget_watts = v;
            }
            if let Some(v) = a.get("energy_budget_for_s").and_then(Yaml::as_f64) {
                cfg.alerting.energy_budget_for_s = v.max(0.0);
            }
            if let Some(v) = a.get("factor_max_age_s").and_then(Yaml::as_f64) {
                cfg.alerting.factor_max_age_s = v;
            }
            if let Some(v) = a.get("node_power_max_watts").and_then(Yaml::as_f64) {
                cfg.alerting.node_power_max_watts = v;
            }
            if let Some(v) = a.get("wal_lag_max_records").and_then(Yaml::as_f64) {
                cfg.alerting.wal_lag_max_records = v;
            }
        }
        if let Some(o) = doc.get("obs") {
            if let Some(v) = o.get("trace_sample_rate").and_then(Yaml::as_f64) {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!(
                        "obs.trace_sample_rate must be in [0, 1], got {v}"
                    ));
                }
                cfg.obs.trace_sample_rate = v;
            }
            if let Some(Yaml::Map(rates)) = o.get("tenant_sample_rates") {
                for (tenant, rate) in rates {
                    let v = rate.as_f64().ok_or_else(|| {
                        format!("obs.tenant_sample_rates.{tenant} must be a number")
                    })?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!(
                            "obs.tenant_sample_rates.{tenant} must be in [0, 1], got {v}"
                        ));
                    }
                    cfg.obs.tenant_sample_rates.insert(tenant.clone(), v);
                }
            }
            if let Some(v) = o.get("trace_slow_ms").and_then(Yaml::as_f64) {
                cfg.obs.trace_slow_ms = v;
            }
            if let Some(v) = o.get("trace_store_max_bytes").and_then(Yaml::as_i64) {
                cfg.obs.trace_store_max_bytes = v.max(1) as u64;
            }
            if let Some(v) = o.get("trace_store_max_age_s").and_then(Yaml::as_f64) {
                cfg.obs.trace_store_max_age_s = v;
            }
        }
        if let Some(m) = doc.get("meta") {
            cfg.meta.enabled = m.get("enabled").and_then(Yaml::as_bool).unwrap_or(true);
            if let Some(v) = m.get("scrape_interval_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!(
                        "meta.scrape_interval_s must be positive, got {v}"
                    ));
                }
                cfg.meta.scrape_interval_s = v;
            }
            if let Some(v) = m.get("stale_after_s").and_then(Yaml::as_f64) {
                cfg.meta.stale_after_s = v.max(0.0);
            }
            if let Some(v) = m.get("breaker_storm_opens").and_then(Yaml::as_f64) {
                cfg.meta.breaker_storm_opens = v.max(0.0);
            }
        }
        if let Some(s) = doc.get("stream") {
            cfg.stream.enabled = s.get("enabled").and_then(Yaml::as_bool).unwrap_or(true);
            if let Some(v) = s.get("topic").and_then(Yaml::as_str) {
                if v.is_empty() {
                    return Err("stream.topic must be non-empty".to_string());
                }
                cfg.stream.topic = v.to_string();
            }
            if let Some(v) = s.get("ring_capacity").and_then(Yaml::as_i64) {
                if v <= 0 {
                    return Err(format!("stream.ring_capacity must be positive, got {v}"));
                }
                cfg.stream.ring_capacity = v as usize;
            }
            if let Some(v) = s.get("max_subscribers_per_tenant").and_then(Yaml::as_i64) {
                cfg.stream.max_subscribers_per_tenant = v.max(0) as usize;
            }
            if let Some(v) = s.get("max_live_per_tenant").and_then(Yaml::as_i64) {
                cfg.stream.max_live_per_tenant = v.max(0) as usize;
            }
        }
        if let Some(f) = doc.get("failover") {
            cfg.failover.enabled = f.get("enabled").and_then(Yaml::as_bool).unwrap_or(true);
            if let Some(v) = f.get("replicas").and_then(Yaml::as_i64) {
                if v < 2 {
                    return Err(format!(
                        "failover.replicas must be at least 2, got {v}"
                    ));
                }
                cfg.failover.replicas = v as usize;
            }
            if let Some(v) = f.get("probe_interval_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!(
                        "failover.probe_interval_s must be positive, got {v}"
                    ));
                }
                cfg.failover.probe_interval_s = v;
            }
            if let Some(v) = f.get("election_timeout_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!(
                        "failover.election_timeout_s must be positive, got {v}"
                    ));
                }
                cfg.failover.election_timeout_s = v;
            }
            if cfg.failover.election_timeout_s < cfg.failover.probe_interval_s {
                return Err(format!(
                    "failover.election_timeout_s ({}) must be at least probe_interval_s ({})",
                    cfg.failover.election_timeout_s, cfg.failover.probe_interval_s
                ));
            }
            if let Some(v) = f.get("min_catchup_records").and_then(Yaml::as_i64) {
                cfg.failover.min_catchup_records = v.max(0) as u64;
            }
        }
        if let Some(v) = doc.get("threads").and_then(Yaml::as_i64) {
            cfg.threads = (v as usize).max(1);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CeemsConfig::default();
        assert_eq!(c.scrape_interval_s, 15.0);
        assert_eq!(c.zone, "FR");
        assert!(c.churn.is_none());
    }

    #[test]
    fn parse_full_config() {
        let text = "\
cluster:
  intel_nodes: 2
  amd_nodes: 1
  v100_nodes: 0
  a100_nodes: 1
  h100_nodes: 0
  seed: 7
tsdb:
  scrape_interval_s: 30
  rule_window: 1m
  rule_interval_s: 60
  query_threads: 6
  posting_cache_size: 0
  slow_query_ms: 250
api_server:
  update_interval_s: 120
  cleanup_cutoff_s: 300
  admin_users:
    - root
    - ops
emissions:
  zone: DE
  providers:
    - emaps
    - owid
lb:
  strategy: least_connection
qfe:
  split_interval_s: 43200
  cache_bytes: 1048576
  recent_window_s: 120
  tenant_queue_depth: 8
  max_tenant_concurrency: 2
churn:
  users: 50
  projects: 10
  arrivals_per_hour: 200
threads: 8
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert_eq!(c.cluster.intel_nodes, 2);
        assert_eq!(c.cluster.total_nodes(), 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scrape_interval_s, 30.0);
        assert_eq!(c.rule_window, "1m");
        assert_eq!(c.updater_interval_s, 120.0);
        assert_eq!(c.cleanup_cutoff_s, 300.0);
        assert_eq!(c.admin_users, vec!["root", "ops"]);
        assert_eq!(c.zone, "DE");
        assert_eq!(c.emission_providers, vec!["emaps", "owid"]);
        assert_eq!(c.lb_strategy, "least_connection");
        assert_eq!(c.churn.as_ref().unwrap().users, 50);
        assert_eq!(c.threads, 8);
        assert_eq!(c.query_threads, 6);
        assert_eq!(c.posting_cache_size, 0);
        assert_eq!(c.slow_query_ms, 250.0);
        assert_eq!(c.qfe.split_interval_s, 43_200.0);
        assert_eq!(c.qfe.cache_bytes, 1 << 20);
        assert_eq!(c.qfe.recent_window_s, 120.0);
        assert_eq!(c.qfe.tenant_queue_depth, 8);
        assert_eq!(c.qfe.max_tenant_concurrency, 2);
    }

    #[test]
    fn qfe_defaults_and_floors() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.qfe.split_interval_s, 86_400.0);
        assert_eq!(c.qfe.cache_bytes, 64 << 20);
        let c = CeemsConfig::from_yaml(
            "qfe:\n  tenant_queue_depth: 0\n  max_tenant_concurrency: 0\n  cache_bytes: -5\n",
        )
        .unwrap();
        assert_eq!(c.qfe.tenant_queue_depth, 1);
        assert_eq!(c.qfe.max_tenant_concurrency, 1);
        assert_eq!(c.qfe.cache_bytes, 0);
        assert!(CeemsConfig::from_yaml("qfe:\n  split_interval_s: 0\n").is_err());
    }

    #[test]
    fn alerting_section_parses_with_floors() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert!(!c.alerting.enabled);
        assert_eq!(c.alerting.eval_interval_s, 30.0);

        let text = "\
alerting:
  eval_interval_s: 10
  group_wait_s: 5
  group_interval_s: 30
  repeat_interval_s: 600
  webhook_url: http://127.0.0.1:9093/hook
  energy_budget_watts: 900
  energy_budget_for_s: 60
  factor_max_age_s: 900
  node_power_max_watts: 1500
  wal_lag_max_records: 200
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        // Presence of the section enables the service.
        assert!(c.alerting.enabled);
        assert_eq!(c.alerting.eval_interval_s, 10.0);
        assert_eq!(c.alerting.group_wait_s, 5.0);
        assert_eq!(
            c.alerting.webhook_url.as_deref(),
            Some("http://127.0.0.1:9093/hook")
        );
        assert_eq!(c.alerting.energy_budget_watts, 900.0);
        assert_eq!(c.alerting.wal_lag_max_records, 200.0);

        let c = CeemsConfig::from_yaml("alerting:\n  enabled: false\n  group_wait_s: -3\n")
            .unwrap();
        assert!(!c.alerting.enabled);
        assert_eq!(c.alerting.group_wait_s, 0.0);
        assert!(CeemsConfig::from_yaml("alerting:\n  eval_interval_s: 0\n").is_err());
    }

    #[test]
    fn obs_and_meta_sections_parse() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.obs.trace_sample_rate, 0.1);
        assert_eq!(c.obs.trace_slow_ms, 250.0);
        assert_eq!(c.obs.trace_store_max_bytes, 4 << 20);
        assert_eq!(c.obs.trace_store_max_age_s, 3600.0);
        assert!(!c.meta.enabled);
        assert_eq!(c.meta.scrape_interval_s, 30.0);

        let text = "\
obs:
  trace_sample_rate: 0.5
  trace_slow_ms: 100
  trace_store_max_bytes: 1048576
  trace_store_max_age_s: 600
meta:
  scrape_interval_s: 15
  stale_after_s: 45
  breaker_storm_opens: 5
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert_eq!(c.obs.trace_sample_rate, 0.5);
        assert_eq!(c.obs.trace_slow_ms, 100.0);
        assert_eq!(c.obs.trace_store_max_bytes, 1 << 20);
        assert_eq!(c.obs.trace_store_max_age_s, 600.0);
        // Presence of the section enables meta-monitoring.
        assert!(c.meta.enabled);
        assert_eq!(c.meta.scrape_interval_s, 15.0);
        assert_eq!(c.meta.stale_after_s, 45.0);
        assert_eq!(c.meta.breaker_storm_opens, 5.0);

        let c = CeemsConfig::from_yaml("meta:\n  enabled: false\n").unwrap();
        assert!(!c.meta.enabled);
        assert!(CeemsConfig::from_yaml("obs:\n  trace_sample_rate: 1.5\n").is_err());
        assert!(CeemsConfig::from_yaml("meta:\n  scrape_interval_s: 0\n").is_err());
    }

    #[test]
    fn obs_tenant_sample_rate_overrides_parse() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert!(c.obs.tenant_sample_rates.is_empty());

        let text = "\
obs:
  trace_sample_rate: 0.1
  tenant_sample_rates:
    prj-alpha: 1.0
    prj-beta: 0.02
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert_eq!(c.obs.tenant_sample_rates.get("prj-alpha"), Some(&1.0));
        assert_eq!(c.obs.tenant_sample_rates.get("prj-beta"), Some(&0.02));
        assert_eq!(c.obs.tenant_sample_rates.len(), 2);

        assert!(CeemsConfig::from_yaml(
            "obs:\n  tenant_sample_rates:\n    prj-x: 2.0\n"
        )
        .is_err());
        assert!(CeemsConfig::from_yaml(
            "obs:\n  tenant_sample_rates:\n    prj-x: nope\n"
        )
        .is_err());
    }

    #[test]
    fn stream_section_parses_with_presence_enabling() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert!(!c.stream.enabled);
        assert_eq!(c.stream.topic, "node-metrics");
        assert_eq!(c.stream.ring_capacity, 256);
        assert_eq!(c.stream.max_subscribers_per_tenant, 64);
        assert_eq!(c.stream.max_live_per_tenant, 16);

        let text = "\
stream:
  topic: gpu-metrics
  ring_capacity: 512
  max_subscribers_per_tenant: 8
  max_live_per_tenant: 4
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        // Presence of the section enables streaming.
        assert!(c.stream.enabled);
        assert_eq!(c.stream.topic, "gpu-metrics");
        assert_eq!(c.stream.ring_capacity, 512);
        assert_eq!(c.stream.max_subscribers_per_tenant, 8);
        assert_eq!(c.stream.max_live_per_tenant, 4);

        let c = CeemsConfig::from_yaml("stream:\n  enabled: false\n").unwrap();
        assert!(!c.stream.enabled);
        assert!(CeemsConfig::from_yaml("stream:\n  ring_capacity: 0\n").is_err());
        assert!(CeemsConfig::from_yaml("stream:\n  topic: \"\"\n").is_err());
    }

    #[test]
    fn failover_section_parses_with_presence_enabling() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert!(!c.failover.enabled);
        assert_eq!(c.failover.replicas, 3);
        assert_eq!(c.failover.probe_interval_s, 1.0);
        assert_eq!(c.failover.election_timeout_s, 3.0);
        assert_eq!(c.failover.min_catchup_records, u64::MAX);

        let text = "\
failover:
  replicas: 5
  probe_interval_s: 0.5
  election_timeout_s: 2
  min_catchup_records: 100
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        // Presence of the section enables failover.
        assert!(c.failover.enabled);
        assert_eq!(c.failover.replicas, 5);
        assert_eq!(c.failover.probe_interval_s, 0.5);
        assert_eq!(c.failover.election_timeout_s, 2.0);
        assert_eq!(c.failover.min_catchup_records, 100);
        let fc = c.failover.failover_config();
        assert_eq!(fc.probe_interval_ms, 500);
        assert_eq!(fc.election_timeout_ms, 2_000);
        assert_eq!(fc.min_catchup_records, 100);

        let c = CeemsConfig::from_yaml("failover:\n  enabled: false\n").unwrap();
        assert!(!c.failover.enabled);
        assert!(CeemsConfig::from_yaml("failover:\n  replicas: 1\n").is_err());
        assert!(CeemsConfig::from_yaml("failover:\n  probe_interval_s: 0\n").is_err());
        assert!(CeemsConfig::from_yaml("failover:\n  election_timeout_s: 0\n").is_err());
        assert!(
            CeemsConfig::from_yaml(
                "failover:\n  probe_interval_s: 5\n  election_timeout_s: 2\n"
            )
            .is_err(),
            "election timeout shorter than the probe interval must be rejected"
        );
    }

    #[test]
    fn qfe_max_stale_parses_with_zero_meaning_unbounded() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.qfe.max_stale_s, 0.0);
        let c = CeemsConfig::from_yaml("qfe:\n  max_stale_s: 900\n").unwrap();
        assert_eq!(c.qfe.max_stale_s, 900.0);
        assert!(CeemsConfig::from_yaml("qfe:\n  max_stale_s: -1\n").is_err());
    }

    #[test]
    fn query_threads_floor_is_one() {
        let c = CeemsConfig::from_yaml("tsdb:\n  query_threads: 0\n").unwrap();
        assert_eq!(c.query_threads, 1);
        assert_eq!(c.posting_cache_size, CeemsConfig::default().posting_cache_size);
    }

    #[test]
    fn http_section_parses_and_builds_server_config() {
        let text = "\
http:
  max_connections: 20000
  idle_timeout_s: 15
  reactor_threads: 4
  pool_per_host: 16
  backlog: 2048
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert_eq!(c.http.max_connections, 20_000);
        assert_eq!(c.http.idle_timeout_s, 15.0);
        assert_eq!(c.http.reactor_threads, 4);
        assert_eq!(c.http.pool_per_host, 16);
        assert_eq!(c.http.backlog, 2048);
        let sc = c.http.server_config();
        assert_eq!(sc.max_connections, 20_000);
        assert_eq!(sc.idle_timeout, std::time::Duration::from_secs(15));
        assert_eq!(sc.reactor_threads, 4);
        assert_eq!(sc.backlog, 2048);
    }

    #[test]
    fn http_defaults_and_floors() {
        let c = CeemsConfig::from_yaml("").unwrap();
        let sc = ceems_http::ServerConfig::default();
        assert_eq!(c.http.max_connections, sc.max_connections);
        assert_eq!(c.http.reactor_threads, sc.reactor_threads);
        assert_eq!(c.http.backlog, sc.backlog);
        assert_eq!(c.http.pool_per_host, ceems_http::pool::DEFAULT_POOL_PER_HOST);

        let c = CeemsConfig::from_yaml(
            "http:\n  max_connections: 0\n  reactor_threads: 0\n  backlog: -1\n  pool_per_host: -3\n",
        )
        .unwrap();
        assert_eq!(c.http.max_connections, 1);
        assert_eq!(c.http.reactor_threads, 1);
        assert_eq!(c.http.backlog, 1);
        assert_eq!(c.http.pool_per_host, 0, "negative pool size clamps to disabled");
        assert!(CeemsConfig::from_yaml("http:\n  idle_timeout_s: 0\n").is_err());
    }

    #[test]
    fn jean_zay_preset() {
        let c = CeemsConfig::from_yaml("cluster:\n  preset: jean-zay\n").unwrap();
        assert_eq!(c.cluster.total_nodes(), 1400);
    }

    #[test]
    fn bad_strategy_rejected() {
        assert!(CeemsConfig::from_yaml("lb:\n  strategy: random\n").is_err());
    }

    #[test]
    fn empty_config_is_default() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.scrape_interval_s, CeemsConfig::default().scrape_interval_s);
    }

    #[test]
    fn parse_fault_and_resilience_sections() {
        let text = "\
fault:
  seed: 42
  rules:
    - kind: latency
      endpoint: /api/v1/query_range
      probability: 0.25
      param: 50
    - kind: 5xx
      endpoint: /api/v1/query
      probability: 1.5
      param: 503
      after: 10
      until: 20
resilience:
  retry_attempts: 5
  retry_base_ms: 25
  retry_max_ms: 800
  deadline_ms: 3000
  breaker_failures: 4
  breaker_cooldown_ms: 2500
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert!(c.fault.enabled());
        assert_eq!(c.fault.seed, 42);
        assert_eq!(c.fault.rules.len(), 2);
        assert_eq!(c.fault.rules[0].kind, "latency");
        assert_eq!(c.fault.rules[0].endpoint, "/api/v1/query_range");
        assert_eq!(c.fault.rules[0].probability, 0.25);
        assert_eq!(c.fault.rules[0].param, 50.0);
        // Probability clamps into [0, 1]; window bounds carry through.
        assert_eq!(c.fault.rules[1].probability, 1.0);
        assert_eq!(c.fault.rules[1].after, 10);
        assert_eq!(c.fault.rules[1].until, 20);
        assert_eq!(c.resilience.retry_attempts, 5);
        assert_eq!(c.resilience.retry_base_ms, 25);
        assert_eq!(c.resilience.retry_max_ms, 800);
        assert_eq!(c.resilience.deadline_ms, 3_000);
        assert_eq!(c.resilience.breaker_failures, 4);
        assert_eq!(c.resilience.breaker_cooldown_ms, 2_500);
        let bc = c.resilience.breaker_config();
        assert_eq!(bc.failure_threshold, 4);
        assert_eq!(bc.cooldown_ms, 2_500);
    }

    #[test]
    fn fault_defaults_off_and_bad_kind_rejected() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert!(!c.fault.enabled());
        assert_eq!(c.resilience.retry_attempts, 3);
        assert_eq!(c.resilience.breaker_failures, 3);
        assert!(
            CeemsConfig::from_yaml("fault:\n  rules:\n    - kind: explode\n").is_err(),
            "unknown fault kind must be rejected at parse time"
        );
        assert!(
            CeemsConfig::from_yaml("fault:\n  rules:\n    - endpoint: /x\n").is_err(),
            "rule without a kind must be rejected"
        );
    }

    #[cfg(feature = "fault")]
    #[test]
    fn fault_settings_build_a_plan() {
        let c = CeemsConfig::from_yaml(
            "fault:\n  seed: 9\n  rules:\n    - kind: reset\n      endpoint: /api/v1/query\n      probability: 1.0\n",
        )
        .unwrap();
        let plan = c.fault.build_plan().unwrap();
        let d = plan.decide("/api/v1/query");
        assert!(matches!(d, Some(ceems_http::fault::FaultKind::ConnReset)));
    }

    #[test]
    fn resilience_floors() {
        let c = CeemsConfig::from_yaml(
            "resilience:\n  retry_attempts: 0\n  breaker_failures: 0\n  breaker_cooldown_ms: 0\n",
        )
        .unwrap();
        assert_eq!(c.resilience.retry_attempts, 1);
        assert_eq!(c.resilience.breaker_failures, 1);
        assert_eq!(c.resilience.breaker_cooldown_ms, 1);
        // deadline_ms == 0 means "no deadline": the policy must still run.
        let c = CeemsConfig::from_yaml("resilience:\n  deadline_ms: 0\n").unwrap();
        let policy = c.resilience.retry_policy();
        let out: Result<(), ()> = policy.run(|_| Ok(()));
        assert_eq!(out, Ok(()));
    }
}
