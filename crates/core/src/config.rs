//! Typed configuration for the whole stack, loadable from one YAML file
//! (§II.D: "All the CEEMS components can be configured in a single YAML
//! file where each component will read its relevant configuration").

use ceems_simnode::ClusterSpec;

use crate::yaml::{parse, Yaml};

/// Query-frontend (`ceems-qfe`) settings.
#[derive(Clone, Debug)]
pub struct QfeSettings {
    /// Sub-range width for range splitting (seconds). Default: one day.
    pub split_interval_s: f64,
    /// Results-cache budget in bytes; 0 disables caching.
    pub cache_bytes: usize,
    /// Window before "now" that is never cached (seconds).
    pub recent_window_s: f64,
    /// Queued queries allowed per tenant before shedding with 429.
    pub tenant_queue_depth: usize,
    /// Concurrent queries allowed per tenant.
    pub max_tenant_concurrency: usize,
}

impl Default for QfeSettings {
    fn default() -> Self {
        QfeSettings {
            split_interval_s: 86_400.0,
            cache_bytes: 64 << 20,
            recent_window_s: 600.0,
            tenant_queue_depth: 16,
            max_tenant_concurrency: 4,
        }
    }
}

/// Churn generator settings.
#[derive(Clone, Debug)]
pub struct ChurnSettings {
    /// Distinct users.
    pub users: usize,
    /// Projects.
    pub projects: usize,
    /// Mean arrivals per simulated hour.
    pub arrivals_per_hour: f64,
}

/// Full stack configuration.
#[derive(Clone, Debug)]
pub struct CeemsConfig {
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// RNG seed for the whole simulation.
    pub seed: u64,
    /// Scrape interval (seconds).
    pub scrape_interval_s: f64,
    /// Recording-rule `rate()` window (PromQL duration, e.g. `2m`).
    pub rule_window: String,
    /// Recording-rule evaluation interval (seconds).
    pub rule_interval_s: f64,
    /// API-server updater poll interval (seconds).
    pub updater_interval_s: f64,
    /// §II.C cleanup: purge TSDB series of units shorter than this
    /// (seconds); 0 disables.
    pub cleanup_cutoff_s: f64,
    /// Country/zone for emission factors.
    pub zone: String,
    /// Emission providers to enable, in priority order
    /// (`rte`, `emaps`, `owid`).
    pub emission_providers: Vec<String>,
    /// Operators allowed unscoped queries.
    pub admin_users: Vec<String>,
    /// LB strategy: `round_robin` or `least_connection`.
    pub lb_strategy: String,
    /// Churn generation; `None` means jobs are submitted manually.
    pub churn: Option<ChurnSettings>,
    /// Worker threads for stepping/scraping.
    pub threads: usize,
    /// Worker threads for TSDB select materialization and intra-group rule
    /// evaluation (1 = serial read path).
    pub query_threads: usize,
    /// Capacity of the TSDB matcher-result posting cache; 0 disables it.
    pub posting_cache_size: usize,
    /// WAL directory for the hot TSDB; `None` (default) keeps the head
    /// purely in memory with no durability.
    pub wal_dir: Option<String>,
    /// WAL segment rotation size in bytes.
    pub wal_segment_bytes: u64,
    /// Seconds between WAL checkpoints (covered segments are GC'd).
    pub wal_checkpoint_interval_s: f64,
    /// WAL fsync policy: `always`, `batch`, or `never`.
    pub wal_fsync: String,
    /// Slow-query log threshold in milliseconds; queries slower than this
    /// emit one structured log line. Non-positive (the default) disables.
    pub slow_query_ms: f64,
    /// Sustained `/api/v1/wal/fetch` rate allowed per follower (req/s).
    pub wal_fetch_rate_per_s: f64,
    /// Token-bucket burst for `/api/v1/wal/fetch`.
    pub wal_fetch_burst: f64,
    /// Query-frontend settings (always present; the stack only runs a
    /// frontend when one is served explicitly).
    pub qfe: QfeSettings,
}

impl Default for CeemsConfig {
    fn default() -> Self {
        CeemsConfig {
            cluster: ClusterSpec::small(),
            seed: 42,
            scrape_interval_s: 15.0,
            rule_window: "2m".to_string(),
            rule_interval_s: 30.0,
            updater_interval_s: 60.0,
            cleanup_cutoff_s: 0.0,
            zone: "FR".to_string(),
            emission_providers: vec!["rte".into(), "owid".into()],
            admin_users: vec!["root".into()],
            lb_strategy: "round_robin".to_string(),
            churn: None,
            threads: 4,
            query_threads: 4,
            posting_cache_size: 128,
            wal_dir: None,
            wal_segment_bytes: 4 << 20,
            wal_checkpoint_interval_s: 300.0,
            wal_fsync: "batch".to_string(),
            slow_query_ms: 0.0,
            wal_fetch_rate_per_s: 200.0,
            wal_fetch_burst: 50.0,
            qfe: QfeSettings::default(),
        }
    }
}

impl CeemsConfig {
    /// Parses the single-file YAML configuration; unset keys keep defaults.
    pub fn from_yaml(text: &str) -> Result<CeemsConfig, String> {
        let doc = parse(text).map_err(|e| e.to_string())?;
        let mut cfg = CeemsConfig::default();

        if let Some(c) = doc.get("cluster") {
            let mut spec = ClusterSpec::small();
            let get = |k: &str, default: usize| -> usize {
                c.get(k).and_then(Yaml::as_i64).map(|v| v as usize).unwrap_or(default)
            };
            spec.intel_nodes = get("intel_nodes", spec.intel_nodes);
            spec.amd_nodes = get("amd_nodes", spec.amd_nodes);
            spec.v100_nodes = get("v100_nodes", spec.v100_nodes);
            spec.a100_nodes = get("a100_nodes", spec.a100_nodes);
            spec.h100_nodes = get("h100_nodes", spec.h100_nodes);
            if c.get("preset").and_then(Yaml::as_str) == Some("jean-zay") {
                spec = ClusterSpec::jean_zay();
            }
            cfg.cluster = spec;
            if let Some(seed) = c.get("seed").and_then(Yaml::as_i64) {
                cfg.seed = seed as u64;
            }
        }
        if let Some(t) = doc.get("tsdb") {
            if let Some(v) = t.get("scrape_interval_s").and_then(Yaml::as_f64) {
                cfg.scrape_interval_s = v;
            }
            if let Some(v) = t.get("rule_window").and_then(Yaml::as_str) {
                cfg.rule_window = v.to_string();
            }
            if let Some(v) = t.get("rule_interval_s").and_then(Yaml::as_f64) {
                cfg.rule_interval_s = v;
            }
            if let Some(v) = t.get("query_threads").and_then(Yaml::as_i64) {
                cfg.query_threads = (v as usize).max(1);
            }
            if let Some(v) = t.get("posting_cache_size").and_then(Yaml::as_i64) {
                cfg.posting_cache_size = (v.max(0)) as usize;
            }
            if let Some(v) = t.get("wal_dir").and_then(Yaml::as_str) {
                cfg.wal_dir = Some(v.to_string());
            }
            if let Some(v) = t.get("wal_segment_bytes").and_then(Yaml::as_i64) {
                cfg.wal_segment_bytes = v.max(1) as u64;
            }
            if let Some(v) = t.get("wal_checkpoint_interval_s").and_then(Yaml::as_f64) {
                cfg.wal_checkpoint_interval_s = v;
            }
            if let Some(v) = t.get("slow_query_ms").and_then(Yaml::as_f64) {
                cfg.slow_query_ms = v;
            }
            if let Some(v) = t.get("wal_fsync").and_then(Yaml::as_str) {
                if ceems_tsdb::FsyncMode::parse(v).is_none() {
                    return Err(format!(
                        "bad tsdb.wal_fsync value {v:?} (expected always|batch|never)"
                    ));
                }
                cfg.wal_fsync = v.to_string();
            }
            if let Some(v) = t.get("wal_fetch_rate_per_s").and_then(Yaml::as_f64) {
                cfg.wal_fetch_rate_per_s = v.max(0.001);
            }
            if let Some(v) = t.get("wal_fetch_burst").and_then(Yaml::as_f64) {
                cfg.wal_fetch_burst = v.max(1.0);
            }
        }
        if let Some(q) = doc.get("qfe") {
            if let Some(v) = q.get("split_interval_s").and_then(Yaml::as_f64) {
                if v <= 0.0 {
                    return Err(format!("qfe.split_interval_s must be positive, got {v}"));
                }
                cfg.qfe.split_interval_s = v;
            }
            if let Some(v) = q.get("cache_bytes").and_then(Yaml::as_i64) {
                cfg.qfe.cache_bytes = v.max(0) as usize;
            }
            if let Some(v) = q.get("recent_window_s").and_then(Yaml::as_f64) {
                cfg.qfe.recent_window_s = v.max(0.0);
            }
            if let Some(v) = q.get("tenant_queue_depth").and_then(Yaml::as_i64) {
                cfg.qfe.tenant_queue_depth = (v as usize).max(1);
            }
            if let Some(v) = q.get("max_tenant_concurrency").and_then(Yaml::as_i64) {
                cfg.qfe.max_tenant_concurrency = (v as usize).max(1);
            }
        }
        if let Some(a) = doc.get("api_server") {
            if let Some(v) = a.get("update_interval_s").and_then(Yaml::as_f64) {
                cfg.updater_interval_s = v;
            }
            if let Some(v) = a.get("cleanup_cutoff_s").and_then(Yaml::as_f64) {
                cfg.cleanup_cutoff_s = v;
            }
            if let Some(admins) = a.get("admin_users").and_then(Yaml::as_seq) {
                cfg.admin_users = admins
                    .iter()
                    .filter_map(|y| y.as_str().map(str::to_string))
                    .collect();
            }
        }
        if let Some(e) = doc.get("emissions") {
            if let Some(v) = e.get("zone").and_then(Yaml::as_str) {
                cfg.zone = v.to_string();
            }
            if let Some(ps) = e.get("providers").and_then(Yaml::as_seq) {
                cfg.emission_providers = ps
                    .iter()
                    .filter_map(|y| y.as_str().map(str::to_string))
                    .collect();
            }
        }
        if let Some(l) = doc.get("lb") {
            if let Some(v) = l.get("strategy").and_then(Yaml::as_str) {
                match v {
                    "round_robin" | "least_connection" => cfg.lb_strategy = v.to_string(),
                    other => return Err(format!("unknown lb strategy {other:?}")),
                }
            }
        }
        if let Some(c) = doc.get("churn") {
            cfg.churn = Some(ChurnSettings {
                users: c.get("users").and_then(Yaml::as_i64).unwrap_or(20) as usize,
                projects: c.get("projects").and_then(Yaml::as_i64).unwrap_or(5) as usize,
                arrivals_per_hour: c
                    .get("arrivals_per_hour")
                    .and_then(Yaml::as_f64)
                    .unwrap_or(100.0),
            });
        }
        if let Some(v) = doc.get("threads").and_then(Yaml::as_i64) {
            cfg.threads = (v as usize).max(1);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CeemsConfig::default();
        assert_eq!(c.scrape_interval_s, 15.0);
        assert_eq!(c.zone, "FR");
        assert!(c.churn.is_none());
    }

    #[test]
    fn parse_full_config() {
        let text = "\
cluster:
  intel_nodes: 2
  amd_nodes: 1
  v100_nodes: 0
  a100_nodes: 1
  h100_nodes: 0
  seed: 7
tsdb:
  scrape_interval_s: 30
  rule_window: 1m
  rule_interval_s: 60
  query_threads: 6
  posting_cache_size: 0
  slow_query_ms: 250
api_server:
  update_interval_s: 120
  cleanup_cutoff_s: 300
  admin_users:
    - root
    - ops
emissions:
  zone: DE
  providers:
    - emaps
    - owid
lb:
  strategy: least_connection
qfe:
  split_interval_s: 43200
  cache_bytes: 1048576
  recent_window_s: 120
  tenant_queue_depth: 8
  max_tenant_concurrency: 2
churn:
  users: 50
  projects: 10
  arrivals_per_hour: 200
threads: 8
";
        let c = CeemsConfig::from_yaml(text).unwrap();
        assert_eq!(c.cluster.intel_nodes, 2);
        assert_eq!(c.cluster.total_nodes(), 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scrape_interval_s, 30.0);
        assert_eq!(c.rule_window, "1m");
        assert_eq!(c.updater_interval_s, 120.0);
        assert_eq!(c.cleanup_cutoff_s, 300.0);
        assert_eq!(c.admin_users, vec!["root", "ops"]);
        assert_eq!(c.zone, "DE");
        assert_eq!(c.emission_providers, vec!["emaps", "owid"]);
        assert_eq!(c.lb_strategy, "least_connection");
        assert_eq!(c.churn.as_ref().unwrap().users, 50);
        assert_eq!(c.threads, 8);
        assert_eq!(c.query_threads, 6);
        assert_eq!(c.posting_cache_size, 0);
        assert_eq!(c.slow_query_ms, 250.0);
        assert_eq!(c.qfe.split_interval_s, 43_200.0);
        assert_eq!(c.qfe.cache_bytes, 1 << 20);
        assert_eq!(c.qfe.recent_window_s, 120.0);
        assert_eq!(c.qfe.tenant_queue_depth, 8);
        assert_eq!(c.qfe.max_tenant_concurrency, 2);
    }

    #[test]
    fn qfe_defaults_and_floors() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.qfe.split_interval_s, 86_400.0);
        assert_eq!(c.qfe.cache_bytes, 64 << 20);
        let c = CeemsConfig::from_yaml(
            "qfe:\n  tenant_queue_depth: 0\n  max_tenant_concurrency: 0\n  cache_bytes: -5\n",
        )
        .unwrap();
        assert_eq!(c.qfe.tenant_queue_depth, 1);
        assert_eq!(c.qfe.max_tenant_concurrency, 1);
        assert_eq!(c.qfe.cache_bytes, 0);
        assert!(CeemsConfig::from_yaml("qfe:\n  split_interval_s: 0\n").is_err());
    }

    #[test]
    fn query_threads_floor_is_one() {
        let c = CeemsConfig::from_yaml("tsdb:\n  query_threads: 0\n").unwrap();
        assert_eq!(c.query_threads, 1);
        assert_eq!(c.posting_cache_size, CeemsConfig::default().posting_cache_size);
    }

    #[test]
    fn jean_zay_preset() {
        let c = CeemsConfig::from_yaml("cluster:\n  preset: jean-zay\n").unwrap();
        assert_eq!(c.cluster.total_nodes(), 1400);
    }

    #[test]
    fn bad_strategy_rejected() {
        assert!(CeemsConfig::from_yaml("lb:\n  strategy: random\n").is_err());
    }

    #[test]
    fn empty_config_is_default() {
        let c = CeemsConfig::from_yaml("").unwrap();
        assert_eq!(c.scrape_interval_s, CeemsConfig::default().scrape_interval_s);
    }
}
