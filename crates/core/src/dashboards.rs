//! ASCII dashboards reproducing the paper's Fig. 2.
//!
//! Grafana builds its panels from two data sources — Prometheus for time
//! series and the CEEMS API server for aggregates (§II.C). These renderers
//! consume exactly those sources and print terminal panels:
//!
//! * [`render_user_overview`] — Fig. 2a: a user's aggregate usage (avg
//!   CPU/GPU and memory usage, total energy, equivalent emissions).
//! * [`render_job_list`] — Fig. 2b: the user's units with per-job
//!   aggregates.
//! * [`render_job_timeseries`] — Fig. 2c: time-series CPU metrics of one
//!   job as sparklines.

use std::fmt::Write as _;

use ceems_apiserver::schema::{unit_cols, usage_cols, UNITS_TABLE, USAGE_TABLE};
use ceems_apiserver::updater::Updater;
use ceems_relstore::{Filter, Order, Query, Value};
use ceems_tsdb::promql::{parse_expr, range_query, Queryable};

/// Renders a numeric series as a block-character sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return "·".repeat(values.len());
    }
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

fn fmt_opt_real(v: &Value, unit: &str, digits: usize) -> String {
    match v.as_real() {
        Some(x) => format!("{x:.digits$}{unit}"),
        None => "-".to_string(),
    }
}

fn fmt_bytes(v: &Value) -> String {
    match v.as_real() {
        Some(b) if b >= (1i64 << 30) as f64 => format!("{:.1}GiB", b / (1i64 << 30) as f64),
        Some(b) if b >= (1 << 20) as f64 => format!("{:.1}MiB", b / (1 << 20) as f64),
        Some(b) => format!("{b:.0}B"),
        None => "-".to_string(),
    }
}

/// Fig. 2a: aggregate usage metrics of a user.
pub fn render_user_overview(updater: &Updater, user: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "┌─ Aggregate usage — user {user} ─────────────────────────");

    let usage = updater
        .db()
        .query(
            USAGE_TABLE,
            &Query::all().filter(Filter::Eq("user".into(), user.into())),
        )
        .unwrap_or_default();
    let mut total_units = 0i64;
    let (mut cpu_h, mut gpu_h, mut kwh, mut gco2) = (0.0, 0.0, 0.0, 0.0);
    for row in &usage {
        total_units += row[usage_cols::NUM_UNITS].as_int().unwrap_or(0);
        cpu_h += row[usage_cols::CPU_HOURS].as_real().unwrap_or(0.0);
        gpu_h += row[usage_cols::GPU_HOURS].as_real().unwrap_or(0.0);
        kwh += row[usage_cols::ENERGY_KWH].as_real().unwrap_or(0.0);
        gco2 += row[usage_cols::EMISSIONS_G].as_real().unwrap_or(0.0);
    }

    // Averages over the user's units.
    let units = updater
        .db()
        .query(
            UNITS_TABLE,
            &Query::all().filter(Filter::Eq("user".into(), user.into())),
        )
        .unwrap_or_default();
    let avg = |col: usize| -> Option<f64> {
        let vals: Vec<f64> = units.iter().filter_map(|r| r[col].as_real()).collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    let avg_cpu = avg(unit_cols::AVG_CPU_USAGE);
    let avg_gpu = avg(unit_cols::AVG_GPU_USAGE);
    let avg_mem = avg(unit_cols::AVG_MEM);

    let _ = writeln!(out, "│ units: {total_units:<8} CPU-hours: {cpu_h:<10.1} GPU-hours: {gpu_h:<8.1}");
    let _ = writeln!(
        out,
        "│ avg CPU usage: {:<8} avg GPU usage: {:<8} avg mem: {}",
        avg_cpu.map(|v| format!("{v:.1}%")).unwrap_or("-".into()),
        avg_gpu.map(|v| format!("{v:.1}%")).unwrap_or("-".into()),
        avg_mem
            .map(|v| fmt_bytes(&Value::Real(v)))
            .unwrap_or("-".into()),
    );
    let _ = writeln!(out, "│ total energy: {kwh:.3} kWh    equivalent emissions: {gco2:.1} gCO2e");
    let _ = writeln!(out, "└──────────────────────────────────────────────────────────");
    out
}

/// Fig. 2b: the user's units with aggregated per-job metrics.
pub fn render_job_list(updater: &Updater, user: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:<10} {:>6} {:>6} {:>8} {:>8} {:>11} {:>12}",
        "UUID", "PARTITION", "STATE", "CPUS", "GPUS", "ELAPSED", "CPU%", "ENERGY", "EMISSIONS"
    );
    let units = updater
        .db()
        .query(
            UNITS_TABLE,
            &Query::all()
                .filter(Filter::Eq("user".into(), user.into()))
                .order_by("submitted_at_ms", Order::Desc),
        )
        .unwrap_or_default();
    for r in &units {
        // Pre-render cells: `Value`'s Display does not honour format widths.
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:<10} {:>6} {:>6} {:>8} {:>8} {:>11} {:>12}",
            r[unit_cols::UUID].to_string(),
            r[unit_cols::PARTITION].to_string(),
            r[unit_cols::STATE].to_string(),
            r[unit_cols::NCPUS].to_string(),
            r[unit_cols::NGPUS].to_string(),
            format!("{:.0}s", r[unit_cols::ELAPSED_S].as_real().unwrap_or(0.0)),
            fmt_opt_real(&r[unit_cols::AVG_CPU_USAGE], "%", 1),
            fmt_opt_real(&r[unit_cols::ENERGY_KWH], "kWh", 4),
            fmt_opt_real(&r[unit_cols::EMISSIONS_G], "g", 2),
        );
    }
    out
}

/// Fig. 2c: time-series CPU metrics of one job.
pub fn render_job_timeseries(
    db: &dyn Queryable,
    uuid: &str,
    start_ms: i64,
    end_ms: i64,
    step_ms: i64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Time series — unit {uuid} ({}s span)", (end_ms - start_ms) / 1000);
    for (title, query) in [
        (
            "CPU cores busy ",
            format!("sum(uuid:ceems_cpu_time:rate{{uuid=\"{uuid}\"}})"),
        ),
        (
            "Memory (GiB)   ",
            format!(
                "sum(ceems_compute_unit_memory_used_bytes{{uuid=\"{uuid}\"}}) / 1073741824"
            ),
        ),
        (
            "Power (W)      ",
            format!("sum(uuid:ceems_power:watts{{uuid=\"{uuid}\"}})"),
        ),
        (
            "GFLOP/s        ",
            format!(
                "sum(rate(ceems_compute_unit_perf_flops_total{{uuid=\"{uuid}\"}}[2m])) / 1e9"
            ),
        ),
        (
            "Net RX (MB/s)  ",
            format!(
                "sum(rate(ceems_compute_unit_net_rx_bytes_total{{uuid=\"{uuid}\"}}[2m])) / 1e6"
            ),
        ),
    ] {
        let Ok(expr) = parse_expr(&query) else { continue };
        let Ok(series) = range_query(db, &expr, start_ms, end_ms, step_ms) else {
            continue;
        };
        match series.first() {
            Some(s) => {
                let values: Vec<f64> = s.samples.iter().map(|x| x.v).collect();
                let last = values.last().copied().unwrap_or(0.0);
                let peak = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let _ = writeln!(
                    out,
                    "{title} {}  last={last:.2} peak={peak:.2}",
                    sparkline(&values)
                );
            }
            None => {
                let _ = writeln!(out, "{title} (no data)");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        // Constant series renders low blocks, not a crash.
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
        // NaN becomes a dot.
        let s = sparkline(&[1.0, f64::NAN, 2.0]);
        assert!(s.contains('·'));
        assert_eq!(sparkline(&[f64::NAN]), "·");
    }

    #[test]
    fn panels_render_from_a_live_stack() {
        use ceems_simnode::WorkloadProfile;
        let mut stack = crate::stack::CeemsStack::build_default();
        stack
            .submit(ceems_slurm::JobRequest {
                user: "dash".into(),
                account: "proj".into(),
                partition: "cpu-intel".into(),
                nodes: 1,
                cores_per_node: 8,
                memory_per_node: 16 << 30,
                gpus_per_node: 0,
                walltime_s: 7200,
                workload: WorkloadProfile::CpuBound { intensity: 0.85 },
            })
            .unwrap();
        stack.run_for(600.0, 15.0);

        let upd = stack.updater.lock();
        let overview = render_user_overview(&upd, "dash");
        assert!(overview.contains("Aggregate usage — user dash"));
        assert!(overview.contains("total energy"));
        assert!(!overview.contains("units: 0 "));

        let list = render_job_list(&upd, "dash");
        assert!(list.contains("slurm-1"));
        assert!(list.contains("cpu-intel"));
        drop(upd);

        let ts = render_job_timeseries(
            stack.tsdb.as_ref(),
            "slurm-1",
            60_000,
            stack.clock.now_ms(),
            30_000,
        );
        assert!(ts.contains("CPU cores busy"));
        assert!(ts.contains("Power (W)"));
        // At least one sparkline present.
        assert!(ts.chars().any(|c| "▁▂▃▄▅▆▇█".contains(c)), "{ts}");
    }
}

/// Serves the three panels over HTTP, playing Grafana's role in Fig. 1:
/// `/d/overview` and `/d/jobs` for the requesting user (identified by
/// `X-Grafana-User`, like Grafana's `send_user_header`), `/d/job/:uuid`
/// for one unit (ownership enforced).
pub fn dashboard_router(
    updater: std::sync::Arc<parking_lot::Mutex<Updater>>,
    tsdb: std::sync::Arc<ceems_tsdb::Tsdb>,
    clock: ceems_simnode::SimClock,
) -> ceems_http::Router {
    use ceems_http::{Response, Router, Status};

    let mut router = Router::new();
    let user_of = |req: &ceems_http::Request| -> Result<String, Response> {
        req.header("x-grafana-user")
            .map(str::to_string)
            .ok_or_else(|| Response::error(Status::UNAUTHORIZED, "missing X-Grafana-User"))
    };

    {
        let updater = updater.clone();
        router.get("/d/overview", move |req| match user_of(req) {
            Ok(user) => Response::text(render_user_overview(&updater.lock(), &user)),
            Err(e) => e,
        });
    }
    {
        let updater = updater.clone();
        router.get("/d/jobs", move |req| match user_of(req) {
            Ok(user) => Response::text(render_job_list(&updater.lock(), &user)),
            Err(e) => e,
        });
    }
    {
        let updater = updater.clone();
        router.get("/d/job/:uuid", move |req| {
            let user = match user_of(req) {
                Ok(u) => u,
                Err(e) => return e,
            };
            let uuid = req.path_param("uuid").unwrap_or_default().to_string();
            if !ceems_apiserver::updater::verify_ownership_in_db(
                updater.lock().db(),
                &user,
                &uuid,
            ) {
                return Response::error(Status::FORBIDDEN, "not your unit");
            }
            let now = clock.now_ms();
            let start = (now - 3_600_000).max(0);
            Response::text(render_job_timeseries(
                tsdb.as_ref(),
                &uuid,
                start,
                now,
                ((now - start) / 40).max(15_000),
            ))
        });
    }
    router
}

#[cfg(test)]
mod http_tests {
    use super::*;
    use ceems_http::{Client, HttpServer, ServerConfig};
    use ceems_simnode::WorkloadProfile;

    #[test]
    fn dashboard_server_enforces_identity() {
        let mut stack = crate::stack::CeemsStack::build_default();
        stack
            .submit(ceems_slurm::JobRequest {
                user: "webu".into(),
                account: "proj".into(),
                partition: "cpu-intel".into(),
                nodes: 1,
                cores_per_node: 8,
                memory_per_node: 8 << 30,
                gpus_per_node: 0,
                walltime_s: 7200,
                workload: WorkloadProfile::CpuBound { intensity: 0.9 },
            })
            .unwrap();
        stack.run_for(300.0, 15.0);

        let router = dashboard_router(
            stack.updater.clone(),
            stack.tsdb.clone(),
            stack.clock.clone(),
        );
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        let get = |path: &str, user: Option<&str>| {
            let mut c = Client::new();
            if let Some(u) = user {
                c = c.with_header("X-Grafana-User", u);
            }
            c.get(&format!("{}{}", server.base_url(), path)).unwrap()
        };

        // Identity required.
        assert_eq!(get("/d/overview", None).status.0, 401);
        // The user's own panels render.
        let overview = get("/d/overview", Some("webu"));
        assert_eq!(overview.status.0, 200);
        assert!(overview.body_string().contains("Aggregate usage — user webu"));
        let jobs = get("/d/jobs", Some("webu"));
        assert!(jobs.body_string().contains("slurm-1"));
        let ts = get("/d/job/slurm-1", Some("webu"));
        assert_eq!(ts.status.0, 200);
        assert!(ts.body_string().contains("CPU cores busy"));
        // Foreign units are forbidden.
        assert_eq!(get("/d/job/slurm-1", Some("mallory")).status.0, 403);
        server.shutdown();
    }
}
