#![warn(missing_docs)]
//! CEEMS stack orchestration (S14 in `DESIGN.md`).
//!
//! The paper's Fig. 1 architecture, wired end to end over the simulated
//! cluster:
//!
//! * [`yaml`] — a hand-rolled YAML-subset parser ("all the CEEMS components
//!   can be configured in a single YAML file", §II.D).
//! * [`config`] — typed configuration for every component.
//! * [`attribution`] — Eq. (1): per-node-group recording rules that split
//!   IPMI power across jobs using RAPL ratios, CPU-time and memory shares,
//!   plus the closed-form reference implementation tests compare against.
//! * [`stack`] — [`stack::CeemsStack`]: cluster + scheduler + exporters +
//!   TSDB + rules + API server + LB, advanced on the simulated clock.
//! * [`dashboards`] — ASCII renderings of the paper's Fig. 2 panels from
//!   the same two data sources Grafana uses (TSDB + API server).

pub mod attribution;
pub mod config;
pub mod dashboards;
pub mod meta;
pub mod stack;
pub mod yaml;

pub use attribution::NodeGroup;
pub use config::CeemsConfig;
pub use stack::CeemsStack;
