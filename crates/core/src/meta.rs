//! Self-scrape meta-monitoring (S22).
//!
//! The stack watches itself the same way it watches the cluster: every
//! component's own `/metrics` exposition is scraped on an interval and
//! ingested — through the normal ingest path — into a reserved
//! `__ceems_meta__` tenant of the stack's own TSDB. PromQL, the qfe cache
//! and the S21 alerting DAG then work over the stack's own health series
//! exactly as they do over job telemetry.
//!
//! Per target, every pass also writes three synthetic series:
//!
//! * `ceems_meta_up` — 1 when the target answered and parsed, else 0.
//! * `ceems_meta_scrape_duration_seconds` — wall time of the scrape.
//! * `ceems_meta_scrape_staleness_seconds` — seconds since the last
//!   successful scrape (0 while healthy; grows while a target is down).
//!
//! Targets are in-process render closures (the single-binary stack) or
//! HTTP URLs (components served behind real sockets, registered via
//! [`crate::CeemsStack::register_meta_target`]).

use std::sync::Arc;

use ceems_http::Client;
use ceems_metrics::labels::{LabelSetBuilder, METRIC_NAME_LABEL};
use ceems_metrics::parse::parse_text;
use ceems_tsdb::Tsdb;

/// The reserved tenant meta-monitoring series live under.
pub const META_TENANT: &str = "__ceems_meta__";

/// The `job` label stamped on every meta series.
pub const META_JOB: &str = "ceems-meta";

/// Where a meta target's exposition text comes from.
#[derive(Clone)]
pub enum MetaSource {
    /// Call a closure returning exposition text (in-process component).
    InProcess(Arc<dyn Fn() -> String + Send + Sync>),
    /// Scrape a `/metrics` URL over HTTP.
    Http(String),
}

/// One component under self-scrape.
pub struct MetaTarget {
    /// `component` label value (`tsdb`, `lb`, `qfe`, ...).
    pub component: String,
    /// `instance` label value.
    pub instance: String,
    /// Exposition source.
    pub source: MetaSource,
    last_ok_ms: Option<i64>,
}

impl MetaTarget {
    /// An in-process target rendering its exposition via `f`.
    pub fn in_process(
        component: &str,
        instance: &str,
        f: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> MetaTarget {
        MetaTarget {
            component: component.to_string(),
            instance: instance.to_string(),
            source: MetaSource::InProcess(f),
            last_ok_ms: None,
        }
    }

    /// An HTTP target scraping `url` (a full `/metrics` URL).
    pub fn http(component: &str, instance: &str, url: &str) -> MetaTarget {
        MetaTarget {
            component: component.to_string(),
            instance: instance.to_string(),
            source: MetaSource::Http(url.to_string()),
            last_ok_ms: None,
        }
    }
}

/// Result of one meta pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaScrapeStats {
    /// Targets that answered and parsed.
    pub ok: u64,
    /// Targets that were down or unparseable.
    pub failed: u64,
    /// Exposition samples ingested (excludes the synthetic health series).
    pub samples: u64,
}

/// Scrapes the stack's own components into the meta tenant of a TSDB.
pub struct MetaMonitor {
    targets: Vec<MetaTarget>,
    client: Client,
}

impl MetaMonitor {
    /// Creates a monitor over an initial target set.
    pub fn new(targets: Vec<MetaTarget>) -> MetaMonitor {
        MetaMonitor {
            targets,
            client: Client::new(),
        }
    }

    /// Registers another component (components served later, e.g. an LB or
    /// qfe bound to a real socket).
    pub fn add_target(&mut self, t: MetaTarget) {
        self.targets.push(t);
    }

    /// Target count.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Scrapes every target once at simulated time `now_ms`.
    ///
    /// The handful of stack components doesn't warrant a thread fan-out the
    /// way 1,400 node exporters do, so this is a serial pass.
    pub fn scrape_once(&mut self, db: &Tsdb, now_ms: i64) -> MetaScrapeStats {
        let mut stats = MetaScrapeStats::default();
        for t in &mut self.targets {
            let started = std::time::Instant::now();
            let fetched = fetch(&self.client, &t.source);
            let duration_s = started.elapsed().as_secs_f64();
            match fetched.and_then(|body| ingest(db, t, now_ms, &body)) {
                Ok(n) => {
                    stats.ok += 1;
                    stats.samples += n;
                    t.last_ok_ms = Some(now_ms);
                    write_health(db, t, now_ms, 1.0, duration_s, 0.0);
                }
                Err(_) => {
                    stats.failed += 1;
                    let staleness = t
                        .last_ok_ms
                        .map(|ok| (now_ms - ok).max(0) as f64 / 1000.0)
                        .unwrap_or(0.0);
                    write_health(db, t, now_ms, 0.0, duration_s, staleness);
                }
            }
        }
        stats
    }
}

fn fetch(client: &Client, source: &MetaSource) -> Result<String, String> {
    match source {
        MetaSource::InProcess(f) => Ok(f()),
        MetaSource::Http(url) => {
            let resp = client.get(url).map_err(|e| e.to_string())?;
            if !resp.status.is_success() {
                return Err(format!("meta scrape returned {}", resp.status.0));
            }
            Ok(resp.body_string())
        }
    }
}

fn meta_labels(t: &MetaTarget, name: &str) -> LabelSetBuilder {
    LabelSetBuilder::new()
        .label(METRIC_NAME_LABEL, name)
        .label("tenant", META_TENANT)
        .label("component", &t.component)
        .label("instance", &t.instance)
        .label("job", META_JOB)
}

fn ingest(db: &Tsdb, t: &MetaTarget, now_ms: i64, body: &str) -> Result<u64, String> {
    let parsed = parse_text(body).map_err(|e| e.to_string())?;
    let mut batch = Vec::with_capacity(parsed.samples.len());
    for s in parsed.samples {
        let b = LabelSetBuilder::from(s.labels)
            .label(METRIC_NAME_LABEL, &s.name)
            .label("tenant", META_TENANT)
            .label("component", &t.component)
            .label("instance", &t.instance)
            .label("job", META_JOB);
        batch.push((b.build(), s.timestamp_ms.unwrap_or(now_ms), s.value));
    }
    let n = batch.len() as u64;
    db.append_batch(&batch);
    Ok(n)
}

fn write_health(db: &Tsdb, t: &MetaTarget, now_ms: i64, up: f64, duration_s: f64, staleness_s: f64) {
    db.append(&meta_labels(t, "ceems_meta_up").build(), now_ms, up);
    db.append(
        &meta_labels(t, "ceems_meta_scrape_duration_seconds").build(),
        now_ms,
        duration_s,
    );
    db.append(
        &meta_labels(t, "ceems_meta_scrape_staleness_seconds").build(),
        now_ms,
        staleness_s,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::matcher::LabelMatcher;

    fn render_target(component: &str, body: &'static str) -> MetaTarget {
        MetaTarget::in_process(
            component,
            &format!("{component}:0"),
            Arc::new(move || body.to_string()),
        )
    }

    #[test]
    fn meta_scrape_ingests_under_meta_tenant() {
        let db = Tsdb::default();
        let mut mon = MetaMonitor::new(vec![render_target(
            "tsdb",
            "# TYPE ceems_build_info gauge\nceems_build_info{component=\"tsdb\"} 1\ntsdb_head_series 42\n",
        )]);
        let s = mon.scrape_once(&db, 30_000);
        assert_eq!(s.ok, 1);
        assert_eq!(s.failed, 0);
        assert_eq!(s.samples, 2);

        let got = db.select(
            &[LabelMatcher::eq("__name__", "tsdb_head_series")],
            0,
            i64::MAX,
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].labels.get("tenant"), Some(META_TENANT));
        assert_eq!(got[0].labels.get("component"), Some("tsdb"));
        assert_eq!(got[0].labels.get("job"), Some(META_JOB));

        let up = db.select(&[LabelMatcher::eq("__name__", "ceems_meta_up")], 0, i64::MAX);
        assert_eq!(up.len(), 1);
        assert_eq!(up[0].samples[0].v, 1.0);
        let dur = db.select(
            &[LabelMatcher::eq("__name__", "ceems_meta_scrape_duration_seconds")],
            0,
            i64::MAX,
        );
        assert_eq!(dur.len(), 1);
    }

    #[test]
    fn dead_target_drops_up_and_staleness_grows() {
        let db = Tsdb::default();
        let mut mon = MetaMonitor::new(vec![MetaTarget::http(
            "lb",
            "lb:0",
            "http://127.0.0.1:1/metrics",
        )]);
        // A healthy in-process target first, so last_ok is set.
        let alive = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let alive2 = alive.clone();
        let mut mon2 = MetaMonitor::new(vec![MetaTarget::in_process(
            "qfe",
            "qfe:0",
            Arc::new(move || {
                if alive2.load(std::sync::atomic::Ordering::SeqCst) {
                    "qfe_cache_hits_total 3\n".to_string()
                } else {
                    "{{{ dead".to_string()
                }
            }),
        )]);

        let s = mon.scrape_once(&db, 1000);
        assert_eq!(s.failed, 1);
        let up = db.select(
            &[
                LabelMatcher::eq("__name__", "ceems_meta_up"),
                LabelMatcher::eq("component", "lb"),
            ],
            0,
            i64::MAX,
        );
        assert_eq!(up[0].samples[0].v, 0.0);

        // Healthy, then killed: staleness counts up from the last success.
        assert_eq!(mon2.scrape_once(&db, 1000).ok, 1);
        alive.store(false, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(mon2.scrape_once(&db, 31_000).failed, 1);
        assert_eq!(mon2.scrape_once(&db, 61_000).failed, 1);
        let stale = db.select(
            &[
                LabelMatcher::eq("__name__", "ceems_meta_scrape_staleness_seconds"),
                LabelMatcher::eq("component", "qfe"),
            ],
            0,
            i64::MAX,
        );
        let vals: Vec<f64> = stale[0].samples.iter().map(|s| s.v).collect();
        assert_eq!(vals, vec![0.0, 30.0, 60.0]);
    }

    #[test]
    fn unparseable_body_is_a_failure() {
        let db = Tsdb::default();
        let mut mon = MetaMonitor::new(vec![render_target("exporter", "{{{ nope")]);
        let s = mon.scrape_once(&db, 0);
        assert_eq!(s.failed, 1);
        assert_eq!(s.samples, 0);
    }
}
