//! Full-stack wiring (the paper's Fig. 1).
//!
//! [`CeemsStack`] assembles: simulated cluster → per-node exporters →
//! scrape manager → hot TSDB → recording rules (Eq. 1 per node group) →
//! API-server updater (backed by the relational store) → long-term store.
//! [`CeemsStack::advance`] moves the whole system one simulation step; the
//! 1,400-node Jean-Zay experiment is just this with the big cluster spec.

use std::sync::Arc;

use parking_lot::Mutex;

use ceems_alertsrv::{
    packs, AlertConfig, AlertRule, AlertService, LocalQuerySource, LogSink, NotificationSink,
    QuerySource, RoutingTree, RuleSet, WebhookSink,
};
use ceems_apiserver::metrics_source::TsdbLocalSource;
use ceems_apiserver::rm::SlurmRmClient;
use ceems_apiserver::updater::{Updater, UpdaterConfig};
use ceems_emissions::emaps::{EMapsProvider, EMapsService};
use ceems_emissions::owid::OwidStatic;
use ceems_emissions::rte::RteSimulated;
use ceems_emissions::{EmissionProvider, LastKnownGood, ProviderChain};
use ceems_exporter::{CeemsExporter, ExporterConfig};
use ceems_obs::{TraceSampler, TraceSink, TraceStore, TraceStoreConfig};
use ceems_relstore::Db;
use ceems_simnode::{SimClock, SimCluster};
use ceems_slurm::{ChurnGenerator, JobRequest, Partition, Scheduler};
use ceems_stream::{PublishOutcome, SampleFrame, SinkReceipt, StreamBus, StreamBusConfig};
use ceems_tsdb::rules::RuleEngine;
use ceems_tsdb::scrape::{ScrapeManager, ScrapeStats, ScrapeTarget, TargetSource};
use ceems_tsdb::{ReplicationGroup, Tsdb, TsdbConfig, WriteRouter};

use crate::attribution::{all_rule_groups, NodeGroup};
use crate::config::CeemsConfig;
use crate::meta::{MetaMonitor, MetaScrapeStats, MetaTarget};

/// Cumulative stack statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackStats {
    /// Scrape passes performed.
    pub scrape_passes: u64,
    /// Samples ingested by scraping.
    pub samples_scraped: u64,
    /// Scrape failures.
    pub scrape_failures: u64,
    /// Recording-rule series written.
    pub rule_series_written: u64,
    /// Updater polls performed.
    pub updater_polls: u64,
    /// Jobs submitted by the churn generator.
    pub jobs_submitted: u64,
    /// WAL checkpoints taken (0 unless `wal_dir` is configured).
    pub wal_checkpoints: u64,
    /// Alert-rule evaluation passes (0 unless `alerting:` is enabled).
    pub alert_ticks: u64,
    /// Alert notifications delivered.
    pub alert_notifications: u64,
    /// Self-scrape meta passes (0 unless `meta:` is enabled).
    pub meta_passes: u64,
    /// Samples ingested into the `__ceems_meta__` tenant.
    pub meta_samples: u64,
    /// Meta targets that failed a pass.
    pub meta_failures: u64,
    /// Trace spans evicted by the store's byte/age GC.
    pub traces_evicted: u64,
    /// Push passes over the stream bus (0 unless `stream:` is enabled).
    pub stream_pushes: u64,
    /// Samples ingested through the stream bus.
    pub samples_pushed: u64,
    /// Publish attempts the bus's sink rejected.
    pub stream_failures: u64,
    /// Recording rules evaluated incrementally (stream mode).
    pub incremental_rule_evals: u64,
    /// Leader failovers completed by the replication group (0 unless
    /// `failover:` is enabled).
    pub tsdb_failovers: u64,
}

/// The assembled CEEMS deployment.
pub struct CeemsStack {
    /// Shared simulated clock.
    pub clock: SimClock,
    /// The node fleet.
    pub cluster: SimCluster,
    /// The batch scheduler.
    pub scheduler: Arc<Mutex<Scheduler>>,
    /// The hot TSDB.
    pub tsdb: Arc<Tsdb>,
    /// The API-server updater (shared with the HTTP API layer).
    pub updater: Arc<Mutex<Updater>>,
    /// Per-node exporters, index-aligned with `cluster.nodes()`.
    pub exporters: Vec<Arc<CeemsExporter>>,

    /// The alerting service (`None` unless `alerting:` is enabled). Its
    /// default log sink keeps the notification audit trail in-process.
    pub alertsrv: Option<Arc<AlertService>>,
    /// The alerting service's log sink (present iff `alertsrv` is).
    pub alert_log: Option<Arc<LogSink>>,

    scrape_mgr: ScrapeManager,
    rule_engine: RuleEngine,
    replication: Option<FailoverState>,
    churn: Option<ChurnGenerator>,
    trace_sink: Arc<TraceSink>,
    meta_mon: Option<MetaMonitor>,
    stream_bus: Option<Arc<StreamBus>>,
    push_sources: Vec<PushSource>,
    config: CeemsConfig,
    last_scrape_ms: i64,
    last_rule_ms: i64,
    last_update_ms: i64,
    last_checkpoint_ms: i64,
    last_alert_ms: i64,
    last_meta_ms: i64,
    stats: StackStats,
}

/// Push-mode identity of one exporter: who it publishes as and the target
/// labels its samples get stamped with (same as its scrape target, so a
/// push-mode run lands byte-identical series).
struct PushSource {
    publisher: String,
    instance: String,
    extra_labels: Vec<(String, String)>,
    next_seq: u64,
}

/// The S24 failover machinery when `failover:` is enabled: the
/// deterministic election coordinator plus the shared write route that
/// every in-process writer follows across leader changes.
struct FailoverState {
    group: Arc<Mutex<ReplicationGroup>>,
    router: WriteRouter,
}

/// Alert evaluation that follows the write route: each query resolves the
/// current leader's database, so rule evaluation re-targets within one
/// probe interval of a failover instead of pinning the original leader.
struct RoutedQuerySource {
    router: WriteRouter,
    fallback: Arc<Tsdb>,
    lookback_ms: i64,
}

impl QuerySource for RoutedQuerySource {
    fn name(&self) -> &'static str {
        "routed-local"
    }

    fn query(
        &self,
        expr_src: &str,
        expr: &ceems_tsdb::promql::Expr,
        now_ms: i64,
    ) -> Result<Vec<(ceems_metrics::labels::LabelSet, f64)>, String> {
        let db = self
            .router
            .leader_db()
            .unwrap_or_else(|| self.fallback.clone());
        LocalQuerySource::new(db, self.lookback_ms).query(expr_src, expr, now_ms)
    }
}

fn build_providers(cfg: &CeemsConfig) -> Vec<Arc<dyn EmissionProvider>> {
    let mut providers: Vec<Arc<dyn EmissionProvider>> = cfg
        .emission_providers
        .iter()
        .filter_map(|name| -> Option<Arc<dyn EmissionProvider>> {
            match name.as_str() {
                "owid" => Some(Arc::new(OwidStatic)),
                "rte" => Some(Arc::new(RteSimulated::default())),
                "emaps" => {
                    let service = Arc::new(EMapsService::new("ceems-sim-token", 1000));
                    Some(Arc::new(EMapsProvider::new(service, "ceems-sim-token")))
                }
                _ => None,
            }
        })
        .collect();
    // Alongside the raw per-provider factors, expose one resilient series:
    // the configured chain (priority order) wrapped in last-known-good
    // retention, so a real-time feed outage degrades to the most recent
    // factor instead of a gap (S19).
    if !providers.is_empty() {
        let chain = ProviderChain::new(providers.clone());
        providers.push(Arc::new(LastKnownGood::new(Arc::new(chain))));
    }
    providers
}

impl CeemsStack {
    /// Builds the full stack from a configuration. `db_dir` hosts the API
    /// server's relational store.
    pub fn build(config: CeemsConfig, db_dir: &std::path::Path) -> Result<CeemsStack, String> {
        let clock = SimClock::new();
        let cluster = SimCluster::build(&config.cluster, clock.clone(), config.seed);

        // Partitions by hostname prefix.
        let mut partitions: Vec<Partition> = Vec::new();
        for (name, prefix, walltime_h) in [
            ("cpu-intel", "jz-intel-", 72u64),
            ("cpu-amd", "jz-amd-", 72),
            ("gpu-v100", "jz-v100-", 20),
            ("gpu-a100", "jz-a100-", 20),
            ("gpu-h100", "jz-h100-", 20),
        ] {
            let nodes: Vec<_> = cluster
                .nodes()
                .iter()
                .filter(|n| n.lock().hostname().starts_with(prefix))
                .cloned()
                .collect();
            if !nodes.is_empty() {
                partitions.push(Partition::new(name, nodes, walltime_h * 3600));
            }
        }
        let partition_weights: Vec<(String, f64)> = partitions
            .iter()
            .map(|p| (p.name.clone(), p.nodes.len() as f64))
            .collect();
        let scheduler = Arc::new(Mutex::new(Scheduler::new(partitions, config.seed ^ 0x5eed)));

        // Exporters + scrape targets, one per node, grouped per §III.
        let providers = build_providers(&config);
        let mut exporters = Vec::with_capacity(cluster.len());
        let mut targets = Vec::with_capacity(cluster.len());
        let mut push_sources = Vec::with_capacity(cluster.len());
        for node in cluster.nodes() {
            let group = NodeGroup::for_profile(&node.lock().spec().profile);
            let hostname = node.lock().hostname().to_string();
            let exporter = Arc::new(CeemsExporter::new(
                node.clone(),
                clock.clone(),
                ExporterConfig {
                    emission_providers: providers.clone(),
                    zone: config.zone.clone(),
                    ..Default::default()
                },
            ));
            let instance = format!("{hostname}:9100");
            let extra_labels = vec![("nodegroup".to_string(), group.label().to_string())];
            targets.push(ScrapeTarget {
                instance: instance.clone(),
                job: "ceems".to_string(),
                extra_labels: extra_labels.clone(),
                source: TargetSource::InProcess(exporter.render_fn()),
            });
            push_sources.push(PushSource {
                publisher: hostname,
                instance,
                extra_labels,
                next_seq: 1,
            });
            exporters.push(exporter);
        }
        let scrape_mgr = ScrapeManager::new(targets);

        let tsdb_config = TsdbConfig {
            query_threads: config.query_threads,
            posting_cache_size: config.posting_cache_size,
            ..TsdbConfig::default()
        };
        // Durable sampled trace store (S22): one store + sampling policy
        // shared by every component the stack wires. The sim clock stamps
        // stored spans so eviction is deterministic under a fixed seed.
        let trace_store = Arc::new(TraceStore::open(
            &db_dir.join("traces"),
            TraceStoreConfig {
                max_bytes: config.obs.trace_store_max_bytes,
                max_age_ms: (config.obs.trace_store_max_age_s * 1000.0) as i64,
            },
        )?);
        let trace_clock = clock.clone();
        let trace_sink = Arc::new(
            TraceSink::new(
                TraceSampler::new(config.obs.trace_sample_rate, config.obs.trace_slow_ms),
                trace_store.clone(),
            )
            .with_now(Arc::new(move || trace_clock.now_ms())),
        );

        let wal_opts = ceems_tsdb::WalOptions {
            segment_bytes: config.wal_segment_bytes,
            fsync: ceems_tsdb::FsyncMode::parse(&config.wal_fsync)
                .ok_or_else(|| format!("bad wal_fsync {:?}", config.wal_fsync))?,
        };
        // Leader failover (S24): a replication group replaces the single
        // durable head. Node WAL directories live under `wal_dir`; the sim
        // clock paces probes and elections so a fixed seed replays the same
        // failover trace.
        let replication = if config.failover.enabled {
            let dir = config.wal_dir.as_ref().ok_or(
                "failover: requires tsdb.wal_dir (replicas elect on WAL position)",
            )?;
            let fo_clock = clock.clone();
            let group = ReplicationGroup::new(
                std::path::Path::new(dir),
                config.failover.replicas,
                wal_opts,
                tsdb_config.clone(),
                config.failover.failover_config(),
                Arc::new(move || fo_clock.now_ms()),
            )
            .map_err(|e| format!("build replication group under {dir:?}: {e}"))?
            .with_trace_sink(trace_sink.clone());
            let router = group.write_router();
            Some(FailoverState {
                group: Arc::new(Mutex::new(group)),
                router,
            })
        } else {
            None
        };
        let tsdb = match &replication {
            // `tsdb` tracks the elected leader; `advance` re-points it
            // after every failover so scrape/rule/checkpoint traffic
            // follows the route.
            Some(f) => f.router.leader_db().expect("a fresh group elects node-0"),
            None => Arc::new(match &config.wal_dir {
                // Durable head: recover whatever a previous run logged,
                // keep logging + checkpointing from here on.
                Some(dir) => Tsdb::open(std::path::Path::new(dir), wal_opts, tsdb_config)
                    .map_err(|e| format!("open WAL dir {dir:?}: {e}"))?,
                None => Tsdb::new(tsdb_config),
            }),
        };
        let rule_engine = RuleEngine::new(all_rule_groups(
            &config.rule_window,
            (config.rule_interval_s * 1000.0) as i64,
        ))
        .with_eval_threads(config.query_threads);

        // Streaming ingest bus (S23): exporters publish renders instead of
        // being scraped. The sink parses the exposition text through the
        // same label-stamping path as a scrape and appends synchronously —
        // one acked frame is one TSDB batch (and one WAL group commit when
        // durability is on) — returning the metric names that arrived so
        // the rule engine can re-evaluate just the affected sub-DAG.
        let stream_bus = if config.stream.enabled {
            let sink_db = tsdb.clone();
            let sink_router = replication.as_ref().map(|f| f.router.clone());
            let sink: ceems_stream::IngestSink = Arc::new(move |f: &SampleFrame| {
                let batch = ceems_tsdb::scrape::exposition_to_batch(
                    &f.body,
                    &f.instance,
                    &f.job,
                    &f.extra_labels,
                    f.produced_ms,
                )?;
                let names: std::collections::BTreeSet<String> = batch
                    .iter()
                    .filter_map(|(ls, _, _)| ls.metric_name().map(str::to_string))
                    .collect();
                let samples = batch.len() as u64;
                match &sink_router {
                    // Failover mode: append through the write route, fenced
                    // with the route's epoch. A leaderless window or a stale
                    // epoch rejects the frame; the publisher keeps it
                    // buffered and resumes after the election.
                    Some(router) => router.append_batch(&batch)?,
                    None => sink_db.append_batch(&batch),
                }
                Ok(SinkReceipt {
                    samples,
                    names: names.into_iter().collect(),
                })
            });
            Some(Arc::new(StreamBus::new(
                StreamBusConfig {
                    ring_capacity: config.stream.ring_capacity,
                    max_subscribers_per_tenant: config.stream.max_subscribers_per_tenant,
                },
                sink,
            )))
        } else {
            None
        };

        let rm = Arc::new(SlurmRmClient::new(scheduler.clone()));
        let metrics = Arc::new(TsdbLocalSource::new(tsdb.clone()));
        let admin: Arc<dyn ceems_apiserver::updater::TsdbAdmin> = Arc::new(tsdb.clone());
        let updater = Updater::new(
            Db::open(db_dir).map_err(|e| e.to_string())?,
            rm,
            metrics,
            Some(admin),
            UpdaterConfig {
                cleanup_cutoff_s: config.cleanup_cutoff_s,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;

        let churn = config.churn.as_ref().map(|c| {
            ChurnGenerator::new(
                ceems_slurm::churn::ChurnConfig {
                    users: c.users,
                    projects: c.projects,
                    mean_arrivals_per_hour: c.arrivals_per_hour,
                    partitions: partition_weights,
                    gpu_fraction: 0.6,
                },
                config.seed ^ 0xc4u64,
            )
        });

        // Alerting service over the hot TSDB (S21). Rules come from the
        // built-in packs whose thresholds are set; notifications go to the
        // webhook when one is configured, always mirrored to the log sink.
        let (alertsrv, alert_log) = if config.alerting.enabled {
            let a = &config.alerting;
            let mut rules: Vec<AlertRule> = Vec::new();
            if a.energy_budget_watts > 0.0 {
                rules.push(packs::energy_budget(
                    a.energy_budget_watts,
                    (a.energy_budget_for_s * 1000.0) as i64,
                ));
            }
            if a.factor_max_age_s > 0.0 {
                rules.push(packs::emission_factor_stale(a.factor_max_age_s, 0));
            }
            if a.node_power_max_watts > 0.0 {
                rules.push(packs::node_power_anomaly(a.node_power_max_watts, 0));
            }
            if a.wal_lag_max_records > 0.0 {
                rules.push(packs::replica_wal_lag(a.wal_lag_max_records, 0));
            }
            // The meta pack (S22) rides along whenever self-scrape runs:
            // its rules query the `__ceems_meta__` series the meta monitor
            // writes into the same TSDB these rules evaluate over.
            if config.meta.enabled {
                let m = &config.meta;
                rules.push(packs::component_down(0));
                if m.stale_after_s > 0.0 {
                    rules.push(packs::meta_scrape_stale(m.stale_after_s, 0));
                }
                if m.breaker_storm_opens > 0.0 {
                    rules.push(packs::breaker_open_storm(m.breaker_storm_opens, 0));
                }
            }
            let log = LogSink::new();
            let mut sinks: Vec<Arc<dyn NotificationSink>> = vec![log.clone()];
            let default_sink = match &a.webhook_url {
                Some(url) => {
                    sinks.push(Arc::new(
                        WebhookSink::new(url.clone()).with_client(config.http.client()),
                    ));
                    "webhook"
                }
                None => "log",
            };
            // Rule queries look back far enough to bridge one recording-rule
            // interval plus a scrape, so a fresh tick still sees data.
            let lookback_ms =
                ((config.rule_interval_s + config.scrape_interval_s) * 2.0 * 1000.0) as i64;
            let source: Arc<dyn QuerySource> = match &replication {
                Some(f) => Arc::new(RoutedQuerySource {
                    router: f.router.clone(),
                    fallback: tsdb.clone(),
                    lookback_ms,
                }),
                None => Arc::new(LocalQuerySource::new(tsdb.clone(), lookback_ms)),
            };
            let svc = AlertService::new(
                RuleSet::compile(rules),
                source,
                sinks,
                RoutingTree::new(default_sink),
                AlertConfig {
                    group_wait_ms: (a.group_wait_s * 1000.0) as i64,
                    group_interval_ms: (a.group_interval_s * 1000.0) as i64,
                    repeat_interval_ms: (a.repeat_interval_s * 1000.0) as i64,
                    resolved_retention_ms: (a.resolved_retention_s * 1000.0) as i64,
                    lookback_ms,
                },
                &db_dir.join("alertsrv"),
            )?
            .with_trace_sink(trace_sink.clone());
            (Some(Arc::new(svc)), Some(log))
        } else {
            (None, None)
        };

        // Self-scrape meta monitor (S22): the stack's own components as
        // scrape targets, ingested into the reserved `__ceems_meta__`
        // tenant of the same TSDB. In-process components register render
        // closures here; socket-served ones (LB, qfe, apiserver) join via
        // [`Self::register_meta_target`].
        let meta_mon = if config.meta.enabled {
            let mut targets: Vec<MetaTarget> = Vec::new();
            // The TSDB's own registry, extended with build identity and the
            // trace-store health gauges so `ceems_trace_store_bytes` rides
            // the meta tenant too.
            let reg = ceems_tsdb::selfmon::default_registry(tsdb.clone());
            ceems_obs::register_build_info(&reg, "tsdb");
            trace_store.register_metrics(&reg);
            if let Some(f) = &replication {
                Self::register_failover_metrics(&reg, &f.group);
            }
            targets.push(MetaTarget::in_process(
                "tsdb",
                "tsdb:0",
                Arc::new(move || ceems_metrics::encode_families(&reg.gather())),
            ));
            if let Some(svc) = &alertsrv {
                let reg = svc.registry();
                targets.push(MetaTarget::in_process(
                    "alertsrv",
                    "alertsrv:0",
                    Arc::new(move || ceems_metrics::encode_families(&reg.gather())),
                ));
            }
            // One representative node exporter; the full fleet is already
            // scraped as regular `job="ceems"` targets.
            if let Some(exporter) = exporters.first() {
                targets.push(MetaTarget::in_process(
                    "exporter",
                    "exporter:0",
                    exporter.render_fn(),
                ));
            }
            // The stream bus's health gauges (ring occupancy, publisher
            // lag, subscriber counts) join the meta tenant when streaming
            // is on.
            if let Some(bus) = &stream_bus {
                let reg = ceems_metrics::registry::Registry::new();
                bus.register_metrics(&reg);
                ceems_obs::register_build_info(&reg, "stream");
                targets.push(MetaTarget::in_process(
                    "stream",
                    "stream:0",
                    Arc::new(move || ceems_metrics::encode_families(&reg.gather())),
                ));
            }
            Some(MetaMonitor::new(targets))
        } else {
            None
        };

        Ok(CeemsStack {
            clock,
            cluster,
            scheduler,
            tsdb,
            updater: Arc::new(Mutex::new(updater)),
            exporters,
            alertsrv,
            alert_log,
            scrape_mgr,
            rule_engine,
            replication,
            churn,
            trace_sink,
            meta_mon,
            stream_bus,
            push_sources,
            config,
            last_scrape_ms: i64::MIN / 2,
            last_rule_ms: i64::MIN / 2,
            last_update_ms: i64::MIN / 2,
            last_checkpoint_ms: 0,
            last_alert_ms: i64::MIN / 2,
            last_meta_ms: i64::MIN / 2,
            stats: StackStats::default(),
        })
    }

    /// Convenience: build with defaults into a temp DB dir.
    pub fn build_default() -> CeemsStack {
        let dir = std::env::temp_dir().join(format!(
            "ceems-stack-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        CeemsStack::build(CeemsConfig::default(), &dir).expect("default stack builds")
    }

    /// The configuration.
    pub fn config(&self) -> &CeemsConfig {
        &self.config
    }

    /// The shared trace sink (sampling policy + durable store + sim clock).
    /// Hand this to every served component (`LbConfig::trace_sink`,
    /// `QfeConfig::trace_sink`, [`Self::tsdb_api_options`] wires it itself)
    /// so all hops of a request reach the same sampling verdict.
    pub fn trace_sink(&self) -> Arc<TraceSink> {
        self.trace_sink.clone()
    }

    /// The durable trace store behind the sink (the apiserver's
    /// `/api/v1/traces` endpoints serve from this).
    pub fn trace_store(&self) -> Arc<TraceStore> {
        self.trace_sink.store().clone()
    }

    /// Registers a socket-served component for self-scrape by its full
    /// `/metrics` URL. No-op unless `meta:` is enabled.
    pub fn register_meta_target(&mut self, component: &str, instance: &str, metrics_url: &str) {
        if let Some(mon) = &mut self.meta_mon {
            mon.add_target(MetaTarget::http(component, instance, metrics_url));
        }
    }

    /// Registers an in-process component for self-scrape via a render
    /// closure. No-op unless `meta:` is enabled.
    pub fn register_meta_render(
        &mut self,
        component: &str,
        instance: &str,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) {
        if let Some(mon) = &mut self.meta_mon {
            mon.add_target(MetaTarget::in_process(component, instance, render));
        }
    }

    /// TSDB API-router options wired to this stack's observability
    /// configuration: the default TSDB metrics registry extended with the
    /// per-group rule-evaluation histogram, and a slow-query log honoring
    /// `tsdb.slow_query_ms`. Serve the result with
    /// [`ceems_tsdb::httpapi::api_router_with`].
    pub fn tsdb_api_options(
        &self,
        now: ceems_tsdb::httpapi::NowFn,
    ) -> ceems_tsdb::httpapi::ApiOptions {
        let registry = ceems_tsdb::selfmon::default_registry(self.tsdb.clone());
        registry.register("tsdb_rule_eval", Arc::new(self.rule_engine.eval_histogram()));
        if let Some(f) = &self.replication {
            Self::register_failover_metrics(&registry, &f.group);
        }
        let slow_query = (self.config.slow_query_ms > 0.0)
            .then(|| ceems_obs::slowlog::SlowQueryLog::new(self.config.slow_query_ms));
        ceems_tsdb::httpapi::ApiOptions {
            now,
            registry: Some(registry),
            slow_query,
            wal_fetch_limit: Some(ceems_tsdb::httpapi::WalFetchLimiter::new(
                self.config.wal_fetch_rate_per_s,
                self.config.wal_fetch_burst,
            )),
            trace_sink: Some(self.trace_sink.clone()),
        }
    }

    /// Query-frontend configuration mapped from the stack's YAML `qfe:`
    /// section (seconds → milliseconds, scheduler limits filled in). Pass
    /// it to [`ceems_qfe::QueryFrontend::new`] over an
    /// [`ceems_qfe::HttpDownstream`] of the replica URLs (deployments) or a
    /// [`ceems_qfe::RouterDownstream`] of the TSDB router (single binary).
    /// The clock should match the one given to [`Self::tsdb_api_options`]
    /// so the `recent_window` tracks simulated time.
    pub fn qfe_config(&self, now: ceems_qfe::NowFn) -> ceems_qfe::QfeConfig {
        let q = &self.config.qfe;
        ceems_qfe::QfeConfig {
            split_interval_ms: (q.split_interval_s * 1000.0).max(1.0) as i64,
            cache_bytes: q.cache_bytes,
            recent_window_ms: (q.recent_window_s * 1000.0).max(0.0) as i64,
            scheduler: ceems_qfe::SchedulerConfig {
                tenant_queue_depth: q.tenant_queue_depth,
                max_tenant_concurrency: q.max_tenant_concurrency,
                // Leave headroom for several tenants at their caps.
                max_concurrency: q.max_tenant_concurrency.saturating_mul(4).max(1),
                retry_after_s: 1.0,
            },
            max_fanout: 8,
            now,
            trace_sink: Some(self.trace_sink.clone()),
            max_live_per_tenant: self.config.stream.max_live_per_tenant,
            tenant_sample_rates: self.config.obs.tenant_sample_rates.clone(),
            max_stale_ms: (q.max_stale_s * 1000.0).max(0.0) as i64,
        }
    }

    /// The replication group coordinator (`None` unless `failover:` is
    /// enabled). Chaos tests drive kills and rejoins through this; its
    /// event log is the deterministic failover trace.
    pub fn replication_group(&self) -> Option<Arc<Mutex<ReplicationGroup>>> {
        self.replication.as_ref().map(|f| f.group.clone())
    }

    /// The shared write route (`None` unless `failover:` is enabled).
    /// Every clone follows failovers; out-of-process writers consult
    /// `route().leader_url` instead.
    pub fn write_router(&self) -> Option<WriteRouter> {
        self.replication.as_ref().map(|f| f.router.clone())
    }

    /// Registers the S24 failover gauges on a component registry: the
    /// group's write epoch, fenced (stale-epoch) write rejections, and
    /// completed failovers.
    fn register_failover_metrics(
        registry: &ceems_metrics::registry::Registry,
        group: &Arc<Mutex<ReplicationGroup>>,
    ) {
        let g = group.clone();
        registry.register(
            "tsdb_failover",
            Arc::new(move || {
                let g = g.lock();
                let point = |v: f64| vec![ceems_obs::metric(ceems_metrics::labels::LabelSet::empty(), v)];
                vec![
                    ceems_obs::family_with_metrics(
                        "ceems_tsdb_epoch",
                        "Current write epoch of the TSDB replication group.",
                        ceems_metrics::MetricType::Gauge,
                        point(g.epoch() as f64),
                    ),
                    ceems_obs::family_with_metrics(
                        "ceems_tsdb_fenced_writes_total",
                        "Writes rejected by stale-epoch fencing across the group.",
                        ceems_metrics::MetricType::Counter,
                        point(g.fenced_writes() as f64),
                    ),
                    ceems_obs::family_with_metrics(
                        "ceems_tsdb_failovers_total",
                        "Completed leader failovers.",
                        ceems_metrics::MetricType::Counter,
                        point(g.failovers() as f64),
                    ),
                ]
            }),
        );
    }

    /// The streaming ingest bus (`None` unless `stream:` is enabled).
    /// Mount its HTTP surface with [`ceems_stream::http::mount`] to accept
    /// out-of-process publishers and raw-frame subscribers.
    pub fn stream_bus(&self) -> Option<Arc<StreamBus>> {
        self.stream_bus.clone()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// One push pass (stream mode): every exporter publishes its render
    /// onto the bus, then the rule engine re-evaluates only the sub-DAG
    /// whose input series actually arrived.
    fn push_pass(&mut self, now: i64) {
        let Some(bus) = self.stream_bus.clone() else {
            return;
        };
        let mut arrived: std::collections::HashSet<String> = Default::default();
        for (i, exporter) in self.exporters.iter().enumerate() {
            let src = &mut self.push_sources[i];
            let frame = SampleFrame {
                topic: self.config.stream.topic.clone(),
                publisher: src.publisher.clone(),
                seq: src.next_seq,
                instance: src.instance.clone(),
                job: "ceems".to_string(),
                extra_labels: src.extra_labels.clone(),
                body: exporter.render_for_push(),
                produced_ms: now,
            };
            match bus.publish("anonymous", frame, now) {
                Ok(PublishOutcome::Ingested { receipt, .. }) => {
                    src.next_seq += 1;
                    self.stats.samples_pushed += receipt.samples;
                    arrived.extend(receipt.names);
                }
                Ok(PublishOutcome::Duplicate { .. }) => {
                    src.next_seq += 1;
                }
                Err(_) => {
                    self.stats.stream_failures += 1;
                }
            }
        }
        self.stats.stream_pushes += 1;
        if !arrived.is_empty() {
            let before = self.rule_engine.total_evals();
            self.stats.rule_series_written +=
                self.rule_engine.tick_incremental(&self.tsdb, now, &arrived);
            self.stats.incremental_rule_evals += self.rule_engine.total_evals() - before;
        }
    }

    /// Submits a job by hand (examples/tests that do not use churn).
    pub fn submit(&self, req: JobRequest) -> Result<u64, ceems_slurm::sched::SubmitError> {
        let now = self.clock.now_ms();
        self.scheduler.lock().submit(req, now)
    }

    /// Advances the whole deployment by `dt_s` simulated seconds: cluster
    /// step → churn submissions → scheduler tick → scrape (on interval) →
    /// recording rules → updater poll.
    pub fn advance(&mut self, dt_s: f64) {
        self.cluster.step_all(dt_s, self.config.threads);
        let now = self.clock.now_ms();

        // Drive the failover state machine first, then re-point `tsdb` at
        // the elected leader so everything below this line (ingest, rules,
        // checkpoints, meta) already writes to the new route this step.
        if let Some(f) = &self.replication {
            let mut g = f.group.lock();
            g.tick(now);
            self.stats.tsdb_failovers = g.failovers();
            drop(g);
            if let Some(db) = f.router.leader_db() {
                if !Arc::ptr_eq(&db, &self.tsdb) {
                    self.tsdb = db;
                }
            }
        }

        if let Some(churn) = &mut self.churn {
            let reqs = churn.poll(now);
            let mut sched = self.scheduler.lock();
            for req in reqs {
                if sched.submit(req, now).is_ok() {
                    self.stats.jobs_submitted += 1;
                }
            }
        }
        self.scheduler.lock().tick(now);

        if now - self.last_scrape_ms >= (self.config.scrape_interval_s * 1000.0) as i64 {
            self.last_scrape_ms = now;
            if self.stream_bus.is_some() {
                self.push_pass(now);
            } else {
                let s: ScrapeStats =
                    self.scrape_mgr.scrape_once(&self.tsdb, now, self.config.threads);
                self.stats.scrape_passes += 1;
                self.stats.samples_scraped += s.samples;
                self.stats.scrape_failures += s.failed;
            }
        }
        // In stream mode rule evaluation is event-driven: `push_pass` ticks
        // the affected sub-DAG as samples arrive, so the timer-driven full
        // tick only runs in pull mode.
        if self.stream_bus.is_none()
            && now - self.last_rule_ms >= (self.config.rule_interval_s * 1000.0) as i64
        {
            self.last_rule_ms = now;
            self.stats.rule_series_written += self.rule_engine.tick(&self.tsdb, now);
        }
        if now - self.last_update_ms >= (self.config.updater_interval_s * 1000.0) as i64 {
            self.last_update_ms = now;
            if self.updater.lock().poll(now).is_ok() {
                self.stats.updater_polls += 1;
            }
        }
        if self.tsdb.wal_enabled()
            && now - self.last_checkpoint_ms
                >= (self.config.wal_checkpoint_interval_s * 1000.0) as i64
        {
            self.last_checkpoint_ms = now;
            if self.tsdb.checkpoint().is_ok() {
                self.stats.wal_checkpoints += 1;
            }
        }
        if let Some(meta) = &mut self.meta_mon {
            if now - self.last_meta_ms >= (self.config.meta.scrape_interval_s * 1000.0) as i64 {
                self.last_meta_ms = now;
                let s: MetaScrapeStats = meta.scrape_once(&self.tsdb, now);
                self.stats.meta_passes += 1;
                self.stats.meta_samples += s.samples;
                self.stats.meta_failures += s.failed;
            }
        }
        if let Some(alertsrv) = &self.alertsrv {
            if now - self.last_alert_ms >= (self.config.alerting.eval_interval_s * 1000.0) as i64
            {
                self.last_alert_ms = now;
                let s = alertsrv.tick(now);
                self.stats.alert_ticks += 1;
                self.stats.alert_notifications += s.notifications_sent as u64;
            }
        }
        // Trace-store GC every step: the age sweep stops at the first young
        // span and the byte re-check is O(1) when nothing is over bound.
        self.stats.traces_evicted += self.trace_sink.store().gc(now);
    }

    /// Runs the stack for `seconds` of simulated time in `step_s` slices.
    pub fn run_for(&mut self, seconds: f64, step_s: f64) {
        let steps = (seconds / step_s).ceil() as usize;
        for _ in 0..steps {
            self.advance(step_s);
        }
    }

    /// Sum of the latest per-job attributed power (W) across the cluster.
    ///
    /// Applies a staleness horizon of two rule intervals: finished jobs
    /// keep their last recorded sample forever in the TSDB, and counting
    /// those would overstate the live fleet draw (Prometheus handles the
    /// same problem with staleness markers).
    pub fn total_attributed_power(&self) -> f64 {
        let horizon =
            self.clock.now_ms() - 2 * (self.config.rule_interval_s * 1000.0) as i64 - 1000;
        // Restrict to units the scheduler currently runs: rate() windows
        // keep a finished job's series warm briefly after it retires, and
        // counting that tail would double-count with its successor.
        let running: std::collections::HashSet<String> = {
            let sched = self.scheduler.lock();
            sched
                .dbd()
                .all()
                .filter(|r| r.state == ceems_slurm::JobState::Running)
                .map(|r| r.uuid.clone())
                .collect()
        };
        self.tsdb
            .select_latest(&[ceems_metrics::matcher::LabelMatcher::eq(
                "__name__",
                "uuid:ceems_power:watts",
            )])
            .iter()
            .filter(|(l, s)| {
                s.t_ms >= horizon
                    && l.get("uuid").is_some_and(|u| running.contains(u))
            })
            .map(|(_, s)| s.v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::matcher::LabelMatcher;
    use ceems_simnode::WorkloadProfile;

    fn cpu_job(user: &str, cores: usize) -> JobRequest {
        JobRequest {
            user: user.into(),
            account: "proj".into(),
            partition: "cpu-intel".into(),
            nodes: 1,
            cores_per_node: cores,
            memory_per_node: 16 << 30,
            gpus_per_node: 0,
            walltime_s: 7200,
            workload: WorkloadProfile::CpuBound { intensity: 0.9 },
        }
    }

    #[test]
    fn stack_builds_and_monitors_a_job() {
        let mut stack = CeemsStack::build_default();
        assert_eq!(stack.cluster.len(), 8);
        assert_eq!(stack.exporters.len(), 8);

        stack.submit(cpu_job("alice", 16)).unwrap();
        // 10 simulated minutes at 15 s steps.
        stack.run_for(600.0, 15.0);

        let st = stack.stats();
        assert!(st.scrape_passes >= 35, "passes={}", st.scrape_passes);
        assert_eq!(st.scrape_failures, 0);
        assert!(st.samples_scraped > 1000);
        assert!(st.rule_series_written > 0);
        assert!(st.updater_polls >= 9);

        // Raw job metrics flowed in.
        let cpu = stack.tsdb.select(
            &[
                LabelMatcher::eq("__name__", "ceems_compute_unit_cpu_user_seconds_total"),
                LabelMatcher::eq("uuid", "slurm-1"),
            ],
            0,
            i64::MAX,
        );
        assert_eq!(cpu.len(), 1);
        assert!(cpu[0].samples.last().unwrap().v > 100.0);

        // Eq. (1) produced attributed power for the job.
        let power = stack.tsdb.select_latest(&[
            LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
            LabelMatcher::eq("uuid", "slurm-1"),
        ]);
        assert_eq!(power.len(), 1);
        let w = power[0].1.v;
        // A 16-core hot job on a ~40-core node draws a substantial share.
        assert!(w > 30.0 && w < 500.0, "attributed {w} W");

        // API server has the unit with aggregates.
        let upd = stack.updater.lock();
        let rows = upd
            .db()
            .query(
                ceems_apiserver::schema::UNITS_TABLE,
                &ceems_relstore::Query::all(),
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        let energy = rows[0][ceems_apiserver::schema::unit_cols::ENERGY_KWH].as_real();
        assert!(energy.is_some(), "energy not filled: {rows:?}");
        assert!(energy.unwrap() > 0.0);
    }

    #[test]
    fn gpu_job_gets_gpu_power_attributed() {
        let mut stack = CeemsStack::build_default();
        stack
            .submit(JobRequest {
                user: "ml".into(),
                account: "proj".into(),
                partition: "gpu-a100".into(),
                nodes: 1,
                cores_per_node: 8,
                memory_per_node: 64 << 30,
                gpus_per_node: 4,
                walltime_s: 7200,
                workload: WorkloadProfile::GpuTraining {
                    intensity: 0.9,
                    period_s: 600.0,
                },
            })
            .unwrap();
        stack.run_for(300.0, 15.0);

        let comp = stack.tsdb.select_latest(&[
            LabelMatcher::eq("__name__", "uuid:ceems_power_component:watts"),
            LabelMatcher::eq("uuid", "slurm-1"),
            LabelMatcher::eq("component", "gpu"),
        ]);
        assert_eq!(comp.len(), 1);
        // 4 busy A100s: >1 kW of GPU power.
        assert!(comp[0].1.v > 1000.0, "gpu component {} W", comp[0].1.v);

        let total = stack.tsdb.select_latest(&[
            LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
            LabelMatcher::eq("uuid", "slurm-1"),
        ]);
        assert!(total[0].1.v > comp[0].1.v);
    }

    #[test]
    fn stream_mode_pushes_samples_and_matches_pull_mode() {
        let dir = |tag: &str| {
            std::env::temp_dir().join(format!(
                "ceems-streamstack-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ))
        };
        let push_dir = dir("push");
        let pull_dir = dir("pull");
        let stream_cfg = CeemsConfig {
            stream: crate::config::StreamSettings {
                enabled: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut push = CeemsStack::build(stream_cfg, &push_dir).unwrap();
        let mut pull = CeemsStack::build(CeemsConfig::default(), &pull_dir).unwrap();
        for stack in [&mut push, &mut pull] {
            stack.submit(cpu_job("alice", 16)).unwrap();
            stack.run_for(600.0, 15.0);
        }

        let st = push.stats();
        assert_eq!(st.scrape_passes, 0, "stream mode must not scrape");
        assert!(st.stream_pushes >= 35, "pushes={}", st.stream_pushes);
        assert!(st.samples_pushed > 1000);
        assert_eq!(st.stream_failures, 0);
        assert!(st.incremental_rule_evals > 0);
        assert!(st.rule_series_written > 0);
        let bus = push.stream_bus().expect("bus present in stream mode");
        assert_eq!(bus.stats().published, st.stream_pushes * 8);

        // Push-mode ingest lands the same series a pull-mode run does:
        // same sample count and same values at the same timestamps.
        for stack in [&push, &pull] {
            let power = stack.tsdb.select_latest(&[
                LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
                LabelMatcher::eq("uuid", "slurm-1"),
            ]);
            assert_eq!(power.len(), 1);
        }
        let series = |stack: &CeemsStack| {
            stack.tsdb.select(
                &[
                    LabelMatcher::eq("__name__", "ceems_compute_unit_cpu_user_seconds_total"),
                    LabelMatcher::eq("uuid", "slurm-1"),
                ],
                0,
                i64::MAX,
            )
        };
        let (a, b) = (series(&push), series(&pull));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].samples.len(), b[0].samples.len());
        for (sa, sb) in a[0].samples.iter().zip(&b[0].samples) {
            assert_eq!(sa.t_ms, sb.t_ms);
            assert_eq!(sa.v, sb.v);
        }
        std::fs::remove_dir_all(push_dir).ok();
        std::fs::remove_dir_all(pull_dir).ok();
    }

    #[test]
    fn failover_reroutes_ingest_to_a_new_leader() {
        let dir = std::env::temp_dir().join(format!(
            "ceems-fostack-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = CeemsConfig {
            wal_dir: Some(dir.join("wal").to_string_lossy().into_owned()),
            failover: crate::config::FailoverSettings {
                enabled: true,
                replicas: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut stack = CeemsStack::build(cfg, &dir.join("db")).unwrap();
        stack.submit(cpu_job("alice", 16)).unwrap();
        stack.run_for(300.0, 15.0);

        let group = stack.replication_group().expect("failover enabled");
        {
            let g = group.lock();
            assert_eq!(g.epoch(), 1);
            assert_eq!(g.leader_id(), Some("node-0"));
        }
        let kill_ms = stack.clock.now_ms();
        group.lock().kill("node-0");
        stack.run_for(300.0, 15.0);

        {
            let g = group.lock();
            assert_eq!(g.leader_id(), Some("node-1"), "events: {:?}", g.events());
            assert_eq!(g.epoch(), 2);
        }
        assert_eq!(stack.stats().tsdb_failovers, 1);
        // `tsdb` re-pointed at the new leader, and ingest + rules kept
        // flowing: attributed power exists with post-kill timestamps.
        assert!(Arc::ptr_eq(
            &stack.tsdb,
            &group.lock().node_db("node-1").unwrap()
        ));
        let power = stack.tsdb.select_latest(&[
            LabelMatcher::eq("__name__", "uuid:ceems_power:watts"),
            LabelMatcher::eq("uuid", "slurm-1"),
        ]);
        assert_eq!(power.len(), 1);
        assert!(
            power[0].1.t_ms > kill_ms,
            "no post-failover rule writes: t={} kill={kill_ms}",
            power[0].1.t_ms
        );
        // The failover gauges ride the TSDB registry.
        let reg = stack
            .tsdb_api_options(Arc::new(|| 0))
            .registry
            .expect("registry wired");
        let text = ceems_metrics::encode_families(&reg.gather());
        assert!(text.contains("ceems_tsdb_epoch 2"), "{text}");
        assert!(text.contains("ceems_tsdb_failovers_total 1"), "{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn churn_driven_stack_sustains_load() {
        let cfg = CeemsConfig {
            churn: Some(crate::config::ChurnSettings {
                users: 10,
                projects: 3,
                arrivals_per_hour: 400.0,
            }),
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!(
            "ceems-churnstack-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut stack = CeemsStack::build(cfg, &dir).unwrap();
        stack.run_for(1800.0, 15.0);
        let st = stack.stats();
        assert!(st.jobs_submitted > 50, "submitted {}", st.jobs_submitted);
        let upd = stack.updater.lock();
        let n_units = upd
            .db()
            .table(ceems_apiserver::schema::UNITS_TABLE)
            .unwrap()
            .len();
        assert!(n_units > 50, "units {n_units}");
        drop(upd);
        assert!(stack.total_attributed_power() > 0.0);
        std::fs::remove_dir_all(dir).ok();
    }
}
