//! A minimal YAML-subset parser.
//!
//! Supports exactly what the CEEMS configuration file needs: nested
//! mappings by indentation, block sequences (`- item`), scalars (strings,
//! quoted strings, integers, floats, booleans, null), inline comments and
//! blank lines. No anchors, no flow collections, no multi-document streams
//! — operators' monitoring configs do not use them.

use std::collections::BTreeMap;

/// A parsed YAML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Yaml {
    /// Mapping (insertion order not preserved; keys are unique).
    Map(BTreeMap<String, Yaml>),
    /// Sequence.
    Seq(Vec<Yaml>),
    /// String scalar.
    Str(String),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Boolean scalar.
    Bool(bool),
    /// Null (`null`, `~` or empty).
    Null,
}

impl Yaml {
    /// Map member access.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// Nested access by dotted path (`"tsdb.scrape_interval_s"`).
    pub fn path(&self, dotted: &str) -> Option<&Yaml> {
        let mut cur = self;
        for part in dotted.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Yaml::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor (ints coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Yaml::Float(f) => Some(*f),
            Yaml::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Yaml::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence accessor.
    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error with 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct YamlError {
    /// Line of the failure.
    pub line: usize,
    /// Reason.
    pub message: String,
}

impl std::fmt::Display for YamlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "yaml error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

struct Line {
    number: usize,
    indent: usize,
    content: String,
}

/// Parses a document.
pub fn parse(input: &str) -> Result<Yaml, YamlError> {
    let lines: Vec<Line> = input
        .lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let without_comment = strip_comment(raw);
            let trimmed = without_comment.trim_end();
            if trimmed.trim().is_empty() {
                return None;
            }
            let indent = trimmed.len() - trimmed.trim_start().len();
            if trimmed.trim_start().starts_with('\t') {
                // Treat tabs as errors like real YAML.
                return Some(Err(YamlError {
                    line: i + 1,
                    message: "tabs are not allowed for indentation".into(),
                }));
            }
            Some(Ok(Line {
                number: i + 1,
                indent,
                content: trimmed.trim_start().to_string(),
            }))
        })
        .collect::<Result<_, _>>()?;

    if lines.is_empty() {
        return Ok(Yaml::Null);
    }
    let mut pos = 0;
    let doc = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos != lines.len() {
        return Err(YamlError {
            line: lines[pos].number,
            message: "unexpected dedent/indent structure".into(),
        });
    }
    Ok(doc)
}

fn strip_comment(raw: &str) -> String {
    // A '#' starts a comment unless inside quotes.
    let mut out = String::with_capacity(raw.len());
    let mut quote: Option<char> = None;
    for c in raw.chars() {
        match quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '"' || c == '\'' {
                    quote = Some(c);
                    out.push(c);
                } else if c == '#' {
                    break;
                } else {
                    out.push(c);
                }
            }
        }
    }
    out
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let first = &lines[*pos];
    if first.content.starts_with("- ") || first.content == "-" {
        parse_seq(lines, pos, indent)
    } else {
        parse_map(lines, pos, indent)
    }
}

fn parse_seq(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut items = Vec::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(YamlError {
                line: line.number,
                message: "unexpected indentation in sequence".into(),
            });
        }
        if !(line.content.starts_with("- ") || line.content == "-") {
            break;
        }
        let rest = line.content[1..].trim_start().to_string();
        *pos += 1;
        if rest.is_empty() {
            // Nested block under the dash.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(Yaml::Null);
            }
        } else if let Some((key, value)) = split_mapping(&rest) {
            // "- key: value" starts an inline mapping item; subsequent more-
            // indented lines belong to it.
            let mut map = BTreeMap::new();
            insert_entry(&mut map, key, value, lines, pos, line, indent + 2)?;
            while *pos < lines.len() && lines[*pos].indent > indent {
                let child = &lines[*pos];
                let Some((k, v)) = split_mapping(&child.content) else {
                    return Err(YamlError {
                        line: child.number,
                        message: "expected key: value inside sequence item".into(),
                    });
                };
                let child_indent = child.indent;
                *pos += 1;
                insert_entry(&mut map, k, v, lines, pos, child, child_indent)?;
            }
            items.push(Yaml::Map(map));
        } else {
            items.push(parse_scalar(&rest));
        }
    }
    Ok(Yaml::Seq(items))
}

fn parse_map(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut map = BTreeMap::new();
    while *pos < lines.len() {
        let line = &lines[*pos];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(YamlError {
                line: line.number,
                message: "unexpected indentation in mapping".into(),
            });
        }
        if line.content.starts_with("- ") || line.content == "-" {
            break;
        }
        let Some((key, value)) = split_mapping(&line.content) else {
            return Err(YamlError {
                line: line.number,
                message: format!("expected key: value, got {:?}", line.content),
            });
        };
        *pos += 1;
        insert_entry(&mut map, key, value, lines, pos, line, indent)?;
    }
    Ok(Yaml::Map(map))
}

fn insert_entry(
    map: &mut BTreeMap<String, Yaml>,
    key: String,
    value: String,
    lines: &[Line],
    pos: &mut usize,
    at: &Line,
    indent: usize,
) -> Result<(), YamlError> {
    if map.contains_key(&key) {
        return Err(YamlError {
            line: at.number,
            message: format!("duplicate key {key:?}"),
        });
    }
    let v = if value.is_empty() {
        // Block value (or null).
        if *pos < lines.len() && lines[*pos].indent > indent {
            let child_indent = lines[*pos].indent;
            parse_block(lines, pos, child_indent)?
        } else {
            Yaml::Null
        }
    } else {
        parse_scalar(&value)
    };
    map.insert(key, v);
    Ok(())
}

/// Splits `key: value` (value may be empty). Returns `None` if no colon
/// separates a key (a colon inside quotes does not count).
fn split_mapping(content: &str) -> Option<(String, String)> {
    let mut quote: Option<char> = None;
    for (i, c) in content.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '"' || c == '\'' {
                    quote = Some(c);
                } else if c == ':' {
                    let after = &content[i + 1..];
                    if after.is_empty() || after.starts_with(' ') {
                        let key = unquote(content[..i].trim());
                        return Some((key, after.trim().to_string()));
                    }
                }
            }
        }
    }
    None
}

fn unquote(s: &str) -> String {
    let b = s.as_bytes();
    if b.len() >= 2 && (b[0] == b'"' || b[0] == b'\'') && b[b.len() - 1] == b[0] {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

fn parse_scalar(s: &str) -> Yaml {
    let b = s.as_bytes();
    if b.len() >= 2 && (b[0] == b'"' || b[0] == b'\'') && b[b.len() - 1] == b[0] {
        return Yaml::Str(s[1..s.len() - 1].to_string());
    }
    match s {
        "null" | "~" | "Null" | "NULL" => return Yaml::Null,
        "true" | "True" => return Yaml::Bool(true),
        "false" | "False" => return Yaml::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Yaml::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Yaml::Float(f);
    }
    Yaml::Str(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_scalar("42"), Yaml::Int(42));
        assert_eq!(parse_scalar("-1.5"), Yaml::Float(-1.5));
        assert_eq!(parse_scalar("true"), Yaml::Bool(true));
        assert_eq!(parse_scalar("null"), Yaml::Null);
        assert_eq!(parse_scalar("plain text"), Yaml::Str("plain text".into()));
        assert_eq!(parse_scalar("\"quoted: 42\""), Yaml::Str("quoted: 42".into()));
    }

    #[test]
    fn nested_mappings() {
        let doc = parse(
            "cluster:\n  name: jean-zay   # a comment\n  nodes: 1400\ntsdb:\n  scrape_interval_s: 15\n  retention_days: 30\n",
        )
        .unwrap();
        assert_eq!(doc.path("cluster.name").unwrap().as_str(), Some("jean-zay"));
        assert_eq!(doc.path("cluster.nodes").unwrap().as_i64(), Some(1400));
        assert_eq!(doc.path("tsdb.scrape_interval_s").unwrap().as_f64(), Some(15.0));
        assert!(doc.path("missing.key").is_none());
    }

    #[test]
    fn sequences_of_scalars_and_maps() {
        let doc = parse(
            "admins:\n  - root\n  - ops\npartitions:\n  - name: cpu\n    walltime_h: 72\n  - name: gpu\n    walltime_h: 20\n",
        )
        .unwrap();
        let admins = doc.get("admins").unwrap().as_seq().unwrap();
        assert_eq!(admins.len(), 2);
        assert_eq!(admins[0].as_str(), Some("root"));
        let parts = doc.get("partitions").unwrap().as_seq().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[1].get("name").unwrap().as_str(), Some("gpu"));
        assert_eq!(parts[1].get("walltime_h").unwrap().as_i64(), Some(20));
    }

    #[test]
    fn empty_values_and_null() {
        let doc = parse("a:\nb: 1\n").unwrap();
        assert_eq!(doc.get("a"), Some(&Yaml::Null));
        let doc = parse("").unwrap();
        assert_eq!(doc, Yaml::Null);
        let doc = parse("# only comments\n\n").unwrap();
        assert_eq!(doc, Yaml::Null);
    }

    #[test]
    fn quoted_values_with_special_chars() {
        let doc = parse("query: \"rate(x{uuid=\'a\'}[5m]) # not a comment\"\n").unwrap();
        assert_eq!(
            doc.get("query").unwrap().as_str(),
            Some("rate(x{uuid='a'}[5m]) # not a comment")
        );
    }

    #[test]
    fn errors() {
        let e = parse("a: 1\n\tb: 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("a: 1\na: 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse("a: 1\njust text\n").unwrap_err();
        assert!(e.message.contains("key: value"));
        let e = parse("a: 1\n    b: 2\n").unwrap_err();
        assert!(e.message.contains("indentation"));
    }

    #[test]
    fn deep_nesting() {
        let doc = parse(
            "lb:\n  strategy: round_robin\n  backends:\n    - id: a\n      url: http://a\n    - id: b\n      url: http://b\n  acl:\n    mode: direct\n",
        )
        .unwrap();
        assert_eq!(
            doc.path("lb.acl.mode").unwrap().as_str(),
            Some("direct")
        );
        let backends = doc.path("lb.backends").unwrap().as_seq().unwrap();
        assert_eq!(backends[1].get("url").unwrap().as_str(), Some("http://b"));
    }

    #[test]
    fn sequence_under_dash_block() {
        let doc = parse("groups:\n  -\n    - 1\n    - 2\n").unwrap();
        let groups = doc.get("groups").unwrap().as_seq().unwrap();
        let inner = groups[0].as_seq().unwrap();
        assert_eq!(inner, &[Yaml::Int(1), Yaml::Int(2)]);
    }
}
