//! Simulated Electricity Maps API.
//!
//! The real service exposes per-zone real-time carbon intensity behind an
//! API token, with a rate-limited free tier for non-commercial use (which
//! is what the paper uses). This simulation reproduces the client-visible
//! behaviour: token auth, per-hour rate limiting, and the caching a polite
//! client layers on top.

use parking_lot::Mutex;

use crate::{EmissionProvider, GramsPerKwh};

/// Per-zone mix parameters `(zone, base, daily_amplitude)`.
const ZONES: &[(&str, f64, f64)] = &[
    ("FR", 52.0, 20.0),
    ("DE", 390.0, 120.0),
    ("ES", 170.0, 70.0),
    ("GB", 235.0, 90.0),
    ("IT", 370.0, 80.0),
    ("NL", 330.0, 100.0),
    ("NO", 28.0, 6.0),
    ("PL", 740.0, 90.0),
    ("SE", 44.0, 10.0),
    ("US", 370.0, 80.0),
];

/// API error surfaced by the simulated service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Missing or wrong token.
    Unauthorized,
    /// Free-tier hourly quota exhausted.
    RateLimited,
    /// Zone not covered.
    UnknownZone,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Unauthorized => write!(f, "401 unauthorized"),
            ApiError::RateLimited => write!(f, "429 too many requests"),
            ApiError::UnknownZone => write!(f, "404 unknown zone"),
        }
    }
}

impl std::error::Error for ApiError {}

/// The simulated service endpoint.
pub struct EMapsService {
    token: String,
    hourly_quota: u32,
    state: Mutex<QuotaState>,
}

#[derive(Default)]
struct QuotaState {
    window_start_ms: i64,
    used: u32,
}

impl EMapsService {
    /// Creates the service with a valid token and free-tier quota.
    pub fn new(token: impl Into<String>, hourly_quota: u32) -> EMapsService {
        EMapsService {
            token: token.into(),
            hourly_quota,
            state: Mutex::new(QuotaState::default()),
        }
    }

    /// `GET /v3/carbon-intensity/latest?zone=<zone>`.
    pub fn latest(
        &self,
        token: &str,
        zone: &str,
        now_ms: i64,
    ) -> Result<GramsPerKwh, ApiError> {
        if token != self.token {
            return Err(ApiError::Unauthorized);
        }
        {
            let mut st = self.state.lock();
            if now_ms - st.window_start_ms >= 3_600_000 {
                st.window_start_ms = now_ms - now_ms % 3_600_000;
                st.used = 0;
            }
            if st.used >= self.hourly_quota {
                return Err(ApiError::RateLimited);
            }
            st.used += 1;
        }
        let (_, base, amp) = ZONES
            .iter()
            .find(|(z, _, _)| z.eq_ignore_ascii_case(zone))
            .ok_or(ApiError::UnknownZone)?;
        let hour_of_day = (now_ms as f64 / 3.6e6) % 24.0;
        // Solar dip mid-day in most zones: cleaner around 13:00.
        let solar = (std::f64::consts::TAU * (hour_of_day - 13.0) / 24.0).cos();
        Ok((base - amp * 0.5 * solar + amp * 0.5).max(10.0))
    }
}

/// A caching provider over the simulated service (the CEEMS-side client:
/// honours the rate limit by caching responses for `ttl_ms`).
pub struct EMapsProvider {
    service: std::sync::Arc<EMapsService>,
    token: String,
    ttl_ms: i64,
    cache: Mutex<std::collections::HashMap<String, (i64, GramsPerKwh)>>,
    /// Counts of upstream calls (observable in tests/benches).
    upstream_calls: Mutex<u64>,
}

impl EMapsProvider {
    /// Creates a provider with a 30-minute cache TTL.
    pub fn new(service: std::sync::Arc<EMapsService>, token: impl Into<String>) -> EMapsProvider {
        EMapsProvider {
            service,
            token: token.into(),
            ttl_ms: 30 * 60 * 1000,
            cache: Mutex::new(Default::default()),
            upstream_calls: Mutex::new(0),
        }
    }

    /// Upstream API calls made so far.
    pub fn upstream_calls(&self) -> u64 {
        *self.upstream_calls.lock()
    }
}

impl EmissionProvider for EMapsProvider {
    fn name(&self) -> &'static str {
        "emaps"
    }

    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
        let key = zone.to_ascii_uppercase();
        {
            let cache = self.cache.lock();
            if let Some(&(at, v)) = cache.get(&key) {
                if now_ms - at < self.ttl_ms {
                    return Some(v);
                }
            }
        }
        *self.upstream_calls.lock() += 1;
        match self.service.latest(&self.token, &key, now_ms) {
            Ok(v) => {
                self.cache.lock().insert(key, (now_ms, v));
                Some(v)
            }
            Err(ApiError::RateLimited) => {
                // Serve stale data if we have it (standard client behaviour).
                self.cache.lock().get(&key).map(|&(_, v)| v)
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn service() -> Arc<EMapsService> {
        Arc::new(EMapsService::new("tok123", 10))
    }

    #[test]
    fn auth_and_zones() {
        let s = service();
        assert_eq!(s.latest("bad", "FR", 0), Err(ApiError::Unauthorized));
        assert_eq!(s.latest("tok123", "XX", 0), Err(ApiError::UnknownZone));
        assert!(s.latest("tok123", "FR", 0).is_ok());
        assert!(s.latest("tok123", "de", 0).is_ok());
    }

    #[test]
    fn rate_limit_and_window_reset() {
        let s = service();
        for _ in 0..10 {
            s.latest("tok123", "FR", 1000).unwrap();
        }
        assert_eq!(s.latest("tok123", "FR", 1000), Err(ApiError::RateLimited));
        // Next hour, quota resets.
        assert!(s.latest("tok123", "FR", 3_700_000).is_ok());
    }

    #[test]
    fn provider_caches() {
        let p = EMapsProvider::new(service(), "tok123");
        let a = p.factor("FR", 0).unwrap();
        let b = p.factor("FR", 60_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(p.upstream_calls(), 1);
        // Past TTL the provider refreshes.
        let _ = p.factor("FR", 31 * 60_000).unwrap();
        assert_eq!(p.upstream_calls(), 2);
    }

    #[test]
    fn provider_serves_stale_on_rate_limit() {
        let s = Arc::new(EMapsService::new("tok", 1));
        let p = EMapsProvider::new(s.clone(), "tok");
        let a = p.factor("FR", 0).unwrap();
        // Exhaust quota via a different zone (cache miss → upstream call →
        // rate limited → None since no cache for DE).
        assert!(p.factor("DE", 1_000_000_000 % 3_600_000).is_none());
        // FR, past TTL, upstream rate-limited → stale value served.
        let b = p.factor("FR", 45 * 60_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_token_yields_none() {
        let p = EMapsProvider::new(service(), "wrong");
        assert!(p.factor("FR", 0).is_none());
    }

    #[test]
    fn german_grid_dirtier_than_french() {
        let s = Arc::new(EMapsService::new("t", 1000));
        let fr = s.latest("t", "FR", 0).unwrap();
        let de = s.latest("t", "DE", 0).unwrap();
        assert!(de > 3.0 * fr);
    }
}
