#![warn(missing_docs)]
//! Emission-factor providers (S10 in `DESIGN.md`).
//!
//! §II.A.c of the paper: equivalent emissions = energy × emission factor
//! (gCO₂e per kWh), where the factor depends on the electricity mix at the
//! time of consumption. CEEMS pulls factors from three sources, all
//! reproduced here:
//!
//! * [`owid`] — static country-level factors (OWID historical averages).
//! * [`rte`] — a simulated RTE eco2mix real-time feed for France
//!   (nuclear-heavy, so low and mildly diurnal).
//! * [`emaps`] — a simulated Electricity Maps API: multi-zone, token-
//!   authenticated, rate-limited free tier with client-side caching.
//! * [`registry`] — a provider chain with fallback plus the emissions
//!   calculator that turns Joules into grams of CO₂e.

pub mod emaps;
pub mod owid;
pub mod registry;
pub mod rte;

/// Grams of CO₂-equivalent per kilowatt-hour.
pub type GramsPerKwh = f64;

/// A source of emission factors.
pub trait EmissionProvider: Send + Sync {
    /// Provider name (`owid`, `rte`, `emaps`).
    fn name(&self) -> &'static str;

    /// The emission factor for a zone (ISO country code, e.g. `FR`) at a
    /// simulated instant, or `None` if the provider does not cover it.
    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh>;

    /// Age (ms) of each zone's last *fresh* resolution at `now_ms`, sorted
    /// by zone. Only retention wrappers ([`LastKnownGood`]) report ages;
    /// plain providers have no staleness notion and return nothing. This
    /// feeds the `ceems_emissions_factor_age_seconds` gauge the
    /// "emission-factor source down" alert rule watches.
    fn factor_ages_ms(&self, _now_ms: i64) -> Vec<(String, i64)> {
        Vec::new()
    }
}

pub use registry::{EmissionsCalculator, LastKnownGood, ProviderChain};
