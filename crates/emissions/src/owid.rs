//! Static country-level emission factors.
//!
//! Values are lifecycle-ish carbon intensities of electricity generation
//! (gCO₂e/kWh) in the vein of the OWID data explorer the paper cites; they
//! change only when the table is updated, which is precisely the limitation
//! that motivates the real-time providers.

use crate::{EmissionProvider, GramsPerKwh};

/// `(ISO code, gCO₂e/kWh)` static table.
pub const FACTORS: &[(&str, GramsPerKwh)] = &[
    ("AT", 158.0),
    ("AU", 531.0),
    ("BE", 161.0),
    ("BR", 98.0),
    ("CA", 128.0),
    ("CH", 46.0),
    ("CN", 582.0),
    ("CZ", 415.0),
    ("DE", 381.0),
    ("DK", 181.0),
    ("ES", 174.0),
    ("FI", 79.0),
    ("FR", 56.0),
    ("GB", 238.0),
    ("GR", 344.0),
    ("IE", 346.0),
    ("IN", 713.0),
    ("IT", 372.0),
    ("JP", 485.0),
    ("KR", 436.0),
    ("NL", 328.0),
    ("NO", 29.0),
    ("PL", 751.0),
    ("PT", 185.0),
    ("RO", 264.0),
    ("RU", 441.0),
    ("SE", 45.0),
    ("SG", 471.0),
    ("TW", 560.0),
    ("US", 369.0),
    ("ZA", 709.0),
];

/// The OWID static provider.
#[derive(Clone, Copy, Debug, Default)]
pub struct OwidStatic;

impl EmissionProvider for OwidStatic {
    fn name(&self) -> &'static str {
        "owid"
    }

    fn factor(&self, zone: &str, _now_ms: i64) -> Option<GramsPerKwh> {
        FACTORS
            .iter()
            .find(|(z, _)| z.eq_ignore_ascii_case(zone))
            .map(|(_, f)| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_zones_resolve() {
        let p = OwidStatic;
        assert_eq!(p.factor("FR", 0), Some(56.0));
        assert_eq!(p.factor("fr", 123456), Some(56.0));
        assert_eq!(p.factor("PL", 0), Some(751.0));
        assert_eq!(p.factor("XX", 0), None);
    }

    #[test]
    fn static_over_time() {
        let p = OwidStatic;
        assert_eq!(p.factor("DE", 0), p.factor("DE", 365 * 86_400_000));
    }

    #[test]
    fn table_is_sane() {
        for (zone, f) in FACTORS {
            assert!(zone.len() == 2, "zone {zone}");
            assert!(*f > 0.0 && *f < 1500.0, "{zone} factor {f}");
        }
        // Nuclear/hydro grids must sit far below coal grids.
        let f = |z: &str| OwidStatic.factor(z, 0).unwrap();
        assert!(f("FR") < 100.0 && f("NO") < 100.0);
        assert!(f("PL") > 500.0 && f("IN") > 500.0);
    }
}
