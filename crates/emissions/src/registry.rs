//! Provider chains and the emissions calculator.

use std::sync::Arc;

use crate::{EmissionProvider, GramsPerKwh};

/// An ordered chain of providers: the first one that covers the zone wins,
/// matching how CEEMS lets operators prefer real-time feeds with a static
/// fallback.
pub struct ProviderChain {
    providers: Vec<Arc<dyn EmissionProvider>>,
}

impl ProviderChain {
    /// Builds a chain (highest priority first).
    pub fn new(providers: Vec<Arc<dyn EmissionProvider>>) -> ProviderChain {
        ProviderChain { providers }
    }

    /// Provider names in priority order.
    pub fn names(&self) -> Vec<&'static str> {
        self.providers.iter().map(|p| p.name()).collect()
    }

    /// Resolves a factor and reports which provider supplied it.
    pub fn resolve(&self, zone: &str, now_ms: i64) -> Option<(GramsPerKwh, &'static str)> {
        for p in &self.providers {
            if let Some(f) = p.factor(zone, now_ms) {
                return Some((f, p.name()));
            }
        }
        None
    }
}

impl EmissionProvider for ProviderChain {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
        self.resolve(zone, now_ms).map(|(f, _)| f)
    }
}

/// Converts energy to equivalent emissions using a provider.
pub struct EmissionsCalculator {
    provider: Arc<dyn EmissionProvider>,
    zone: String,
}

impl EmissionsCalculator {
    /// Calculator pinned to a zone (a data centre does not move).
    pub fn new(provider: Arc<dyn EmissionProvider>, zone: impl Into<String>) -> Self {
        EmissionsCalculator {
            provider,
            zone: zone.into(),
        }
    }

    /// The pinned zone.
    pub fn zone(&self) -> &str {
        &self.zone
    }

    /// Emissions (g CO₂e) for `energy_joules` consumed around `now_ms`.
    pub fn emissions_g(&self, energy_joules: f64, now_ms: i64) -> Option<f64> {
        let factor = self.provider.factor(&self.zone, now_ms)?;
        Some(energy_joules / 3.6e6 * factor)
    }

    /// Integrates a power trace `(t_ms, watts)` sampled at irregular
    /// intervals into total emissions, using the factor current at each
    /// interval — the time-varying part is why real-time providers matter.
    pub fn integrate_trace(&self, trace: &[(i64, f64)]) -> Option<f64> {
        let mut total_g = 0.0;
        for pair in trace.windows(2) {
            let (t0, w) = pair[0];
            let (t1, _) = pair[1];
            let dt_s = ((t1 - t0).max(0)) as f64 / 1000.0;
            let joules = w * dt_s;
            total_g += self.emissions_g(joules, t0)?;
        }
        Some(total_g)
    }
}

/// kWh for a given number of joules (shared helper).
pub fn joules_to_kwh(j: f64) -> f64 {
    j / 3.6e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owid::OwidStatic;
    use crate::rte::RteSimulated;

    #[test]
    fn chain_priority_and_fallback() {
        // RTE first (France only), OWID fallback for everything else.
        let chain = ProviderChain::new(vec![
            Arc::new(RteSimulated::default()),
            Arc::new(OwidStatic),
        ]);
        let (f_fr, who_fr) = chain.resolve("FR", 0).unwrap();
        assert_eq!(who_fr, "rte");
        assert!(f_fr > 0.0);
        let (f_de, who_de) = chain.resolve("DE", 0).unwrap();
        assert_eq!(who_de, "owid");
        assert_eq!(f_de, 381.0);
        assert!(chain.resolve("XX", 0).is_none());
        assert_eq!(chain.names(), vec!["rte", "owid"]);
    }

    #[test]
    fn calculator_converts_units() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "FR");
        // 1 kWh = 3.6e6 J at 56 g/kWh.
        let g = calc.emissions_g(3.6e6, 0).unwrap();
        assert!((g - 56.0).abs() < 1e-9);
        assert_eq!(calc.zone(), "FR");
    }

    #[test]
    fn unknown_zone_yields_none() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "QQ");
        assert!(calc.emissions_g(1e6, 0).is_none());
    }

    #[test]
    fn trace_integration_matches_closed_form_for_static_factor() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "DE");
        // 1000 W for 2 hours = 2 kWh at 381 g/kWh = 762 g.
        let trace: Vec<(i64, f64)> = (0..=120).map(|m| (m * 60_000, 1000.0)).collect();
        let g = calc.integrate_trace(&trace).unwrap();
        assert!((g - 762.0).abs() < 1e-6, "g={g}");
    }

    #[test]
    fn time_varying_factor_changes_total() {
        let rte = Arc::new(RteSimulated::default());
        let calc = EmissionsCalculator::new(rte, "FR");
        // Same energy, consumed at night vs at the evening peak.
        let night: Vec<(i64, f64)> = (0..=60).map(|m| (3 * 3_600_000 + m * 60_000, 1000.0)).collect();
        let peak: Vec<(i64, f64)> = (0..=60).map(|m| (19 * 3_600_000 + m * 60_000, 1000.0)).collect();
        let g_night = calc.integrate_trace(&night).unwrap();
        let g_peak = calc.integrate_trace(&peak).unwrap();
        assert!(g_peak > g_night, "peak={g_peak} night={g_night}");
    }

    #[test]
    fn joules_to_kwh_conversion() {
        assert_eq!(joules_to_kwh(3.6e6), 1.0);
        assert_eq!(joules_to_kwh(0.0), 0.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "FR");
        assert_eq!(calc.integrate_trace(&[]), Some(0.0));
        assert_eq!(calc.integrate_trace(&[(0, 100.0)]), Some(0.0));
    }
}
