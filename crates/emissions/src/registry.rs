//! Provider chains, last-known-good retention and the emissions calculator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{EmissionProvider, GramsPerKwh};

/// An ordered chain of providers: the first one that covers the zone wins,
/// matching how CEEMS lets operators prefer real-time feeds with a static
/// fallback.
pub struct ProviderChain {
    providers: Vec<Arc<dyn EmissionProvider>>,
}

impl ProviderChain {
    /// Builds a chain (highest priority first).
    pub fn new(providers: Vec<Arc<dyn EmissionProvider>>) -> ProviderChain {
        ProviderChain { providers }
    }

    /// Provider names in priority order.
    pub fn names(&self) -> Vec<&'static str> {
        self.providers.iter().map(|p| p.name()).collect()
    }

    /// Resolves a factor and reports which provider supplied it.
    pub fn resolve(&self, zone: &str, now_ms: i64) -> Option<(GramsPerKwh, &'static str)> {
        for p in &self.providers {
            if let Some(f) = p.factor(zone, now_ms) {
                return Some((f, p.name()));
            }
        }
        None
    }
}

impl EmissionProvider for ProviderChain {
    fn name(&self) -> &'static str {
        "chain"
    }

    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
        self.resolve(zone, now_ms).map(|(f, _)| f)
    }
}

/// Wraps a provider (typically a whole [`ProviderChain`]) with
/// last-known-good retention: when the inner provider cannot resolve a zone
/// it resolved before — the real-time feed is down and the static fallback
/// does not cover the zone — the previously seen factor is served instead
/// of `None`. A minutes-old emission factor beats dropping the sample, and
/// every stale serve is counted so the degradation stays visible.
pub struct LastKnownGood {
    inner: Arc<dyn EmissionProvider>,
    retained: Mutex<HashMap<String, (GramsPerKwh, i64)>>,
    stale_serves: AtomicU64,
    /// Retained factors older than this stop being served (`None` = no
    /// limit).
    max_age_ms: Option<i64>,
}

impl LastKnownGood {
    /// Wraps `inner` with unbounded retention.
    pub fn new(inner: Arc<dyn EmissionProvider>) -> LastKnownGood {
        LastKnownGood {
            inner,
            retained: Mutex::new(HashMap::new()),
            stale_serves: AtomicU64::new(0),
            max_age_ms: None,
        }
    }

    /// Bounds how stale a retained factor may be before the wrapper gives
    /// up and reports `None` like the inner provider.
    pub fn with_max_age_ms(mut self, max_age_ms: i64) -> LastKnownGood {
        self.max_age_ms = Some(max_age_ms);
        self
    }

    /// Times a retained factor was served because the inner provider
    /// failed.
    pub fn stale_serves(&self) -> u64 {
        self.stale_serves.load(Ordering::Relaxed)
    }

    /// Age (ms) of each retained factor at `now_ms`, sorted by zone — the
    /// signal behind the `ceems_emissions_factor_age_seconds` gauge and the
    /// "emission-factor source down" alert rule. A zone's age is the time
    /// since the *inner* chain last resolved it; it keeps growing while the
    /// wrapper serves retained values.
    pub fn factor_ages_ms(&self, now_ms: i64) -> Vec<(String, i64)> {
        let retained = self.retained.lock();
        let mut out: Vec<(String, i64)> = retained
            .iter()
            .map(|(zone, (_, at_ms))| (zone.clone(), now_ms.saturating_sub(*at_ms)))
            .collect();
        out.sort();
        out
    }
}

impl EmissionProvider for LastKnownGood {
    fn name(&self) -> &'static str {
        "last_known_good"
    }

    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
        if let Some(f) = self.inner.factor(zone, now_ms) {
            self.retained.lock().insert(zone.to_string(), (f, now_ms));
            return Some(f);
        }
        let retained = self.retained.lock();
        let (f, at_ms) = retained.get(zone)?;
        if let Some(max) = self.max_age_ms {
            if now_ms.saturating_sub(*at_ms) > max {
                return None;
            }
        }
        self.stale_serves.fetch_add(1, Ordering::Relaxed);
        Some(*f)
    }

    fn factor_ages_ms(&self, now_ms: i64) -> Vec<(String, i64)> {
        LastKnownGood::factor_ages_ms(self, now_ms)
    }
}

/// Converts energy to equivalent emissions using a provider.
pub struct EmissionsCalculator {
    provider: Arc<dyn EmissionProvider>,
    zone: String,
}

impl EmissionsCalculator {
    /// Calculator pinned to a zone (a data centre does not move).
    pub fn new(provider: Arc<dyn EmissionProvider>, zone: impl Into<String>) -> Self {
        EmissionsCalculator {
            provider,
            zone: zone.into(),
        }
    }

    /// The pinned zone.
    pub fn zone(&self) -> &str {
        &self.zone
    }

    /// Emissions (g CO₂e) for `energy_joules` consumed around `now_ms`.
    pub fn emissions_g(&self, energy_joules: f64, now_ms: i64) -> Option<f64> {
        let factor = self.provider.factor(&self.zone, now_ms)?;
        Some(energy_joules / 3.6e6 * factor)
    }

    /// Integrates a power trace `(t_ms, watts)` sampled at irregular
    /// intervals into total emissions, using the factor current at each
    /// interval — the time-varying part is why real-time providers matter.
    pub fn integrate_trace(&self, trace: &[(i64, f64)]) -> Option<f64> {
        let mut total_g = 0.0;
        for pair in trace.windows(2) {
            let (t0, w) = pair[0];
            let (t1, _) = pair[1];
            let dt_s = ((t1 - t0).max(0)) as f64 / 1000.0;
            let joules = w * dt_s;
            total_g += self.emissions_g(joules, t0)?;
        }
        Some(total_g)
    }
}

/// kWh for a given number of joules (shared helper).
pub fn joules_to_kwh(j: f64) -> f64 {
    j / 3.6e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owid::OwidStatic;
    use crate::rte::RteSimulated;

    #[test]
    fn chain_priority_and_fallback() {
        // RTE first (France only), OWID fallback for everything else.
        let chain = ProviderChain::new(vec![
            Arc::new(RteSimulated::default()),
            Arc::new(OwidStatic),
        ]);
        let (f_fr, who_fr) = chain.resolve("FR", 0).unwrap();
        assert_eq!(who_fr, "rte");
        assert!(f_fr > 0.0);
        let (f_de, who_de) = chain.resolve("DE", 0).unwrap();
        assert_eq!(who_de, "owid");
        assert_eq!(f_de, 381.0);
        assert!(chain.resolve("XX", 0).is_none());
        assert_eq!(chain.names(), vec!["rte", "owid"]);
    }

    struct FlakyProvider {
        up: std::sync::atomic::AtomicBool,
    }

    impl EmissionProvider for FlakyProvider {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
            if self.up.load(Ordering::Relaxed) && zone == "FR" {
                Some(50.0 + now_ms as f64 / 1e6)
            } else {
                None
            }
        }
    }

    #[test]
    fn last_known_good_retains_factor_across_outage() {
        use std::sync::atomic::AtomicBool;
        let flaky = Arc::new(FlakyProvider { up: AtomicBool::new(true) });
        let lkg = LastKnownGood::new(flaky.clone());
        let fresh = lkg.factor("FR", 1_000).unwrap();

        // Outage: the retained factor is served and counted as stale.
        flaky.up.store(false, Ordering::Relaxed);
        assert_eq!(lkg.factor("FR", 2_000), Some(fresh));
        assert_eq!(lkg.stale_serves(), 1);
        // A zone that never resolved stays unresolvable.
        assert_eq!(lkg.factor("DE", 2_000), None);

        // Recovery refreshes the retained value.
        flaky.up.store(true, Ordering::Relaxed);
        let fresh2 = lkg.factor("FR", 3_000_000).unwrap();
        assert_ne!(fresh2, fresh);
        flaky.up.store(false, Ordering::Relaxed);
        assert_eq!(lkg.factor("FR", 3_100_000), Some(fresh2));
    }

    #[test]
    fn last_known_good_respects_max_age() {
        use std::sync::atomic::AtomicBool;
        let flaky = Arc::new(FlakyProvider { up: AtomicBool::new(true) });
        let lkg = LastKnownGood::new(flaky.clone()).with_max_age_ms(10_000);
        lkg.factor("FR", 0).unwrap();
        flaky.up.store(false, Ordering::Relaxed);
        assert!(lkg.factor("FR", 5_000).is_some());
        assert!(lkg.factor("FR", 20_000).is_none(), "past max age");
        assert_eq!(lkg.stale_serves(), 1);
    }

    #[test]
    fn calculator_converts_units() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "FR");
        // 1 kWh = 3.6e6 J at 56 g/kWh.
        let g = calc.emissions_g(3.6e6, 0).unwrap();
        assert!((g - 56.0).abs() < 1e-9);
        assert_eq!(calc.zone(), "FR");
    }

    #[test]
    fn unknown_zone_yields_none() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "QQ");
        assert!(calc.emissions_g(1e6, 0).is_none());
    }

    #[test]
    fn trace_integration_matches_closed_form_for_static_factor() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "DE");
        // 1000 W for 2 hours = 2 kWh at 381 g/kWh = 762 g.
        let trace: Vec<(i64, f64)> = (0..=120).map(|m| (m * 60_000, 1000.0)).collect();
        let g = calc.integrate_trace(&trace).unwrap();
        assert!((g - 762.0).abs() < 1e-6, "g={g}");
    }

    #[test]
    fn time_varying_factor_changes_total() {
        let rte = Arc::new(RteSimulated::default());
        let calc = EmissionsCalculator::new(rte, "FR");
        // Same energy, consumed at night vs at the evening peak.
        let night: Vec<(i64, f64)> = (0..=60).map(|m| (3 * 3_600_000 + m * 60_000, 1000.0)).collect();
        let peak: Vec<(i64, f64)> = (0..=60).map(|m| (19 * 3_600_000 + m * 60_000, 1000.0)).collect();
        let g_night = calc.integrate_trace(&night).unwrap();
        let g_peak = calc.integrate_trace(&peak).unwrap();
        assert!(g_peak > g_night, "peak={g_peak} night={g_night}");
    }

    #[test]
    fn joules_to_kwh_conversion() {
        assert_eq!(joules_to_kwh(3.6e6), 1.0);
        assert_eq!(joules_to_kwh(0.0), 0.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let calc = EmissionsCalculator::new(Arc::new(OwidStatic), "FR");
        assert_eq!(calc.integrate_trace(&[]), Some(0.0));
        assert_eq!(calc.integrate_trace(&[(0, 100.0)]), Some(0.0));
    }
}
