//! Simulated RTE eco2mix real-time feed.
//!
//! RTE publishes the CO₂ intensity of French electricity every few minutes.
//! France's nuclear-heavy mix keeps it low (≈20–90 gCO₂e/kWh) with a
//! diurnal swing: gas peakers at the evening peak push it up, and a slower
//! seasonal term models winter heating load. The simulation is a
//! deterministic function of simulated time, quantised to the 15-minute
//! cadence of the real feed.

use crate::{EmissionProvider, GramsPerKwh};

/// The simulated RTE provider (France only).
#[derive(Clone, Copy, Debug)]
pub struct RteSimulated {
    /// Mean intensity (gCO₂e/kWh).
    pub base: f64,
    /// Diurnal swing amplitude.
    pub daily_amplitude: f64,
    /// Seasonal swing amplitude.
    pub seasonal_amplitude: f64,
}

impl Default for RteSimulated {
    fn default() -> Self {
        RteSimulated {
            base: 50.0,
            daily_amplitude: 22.0,
            seasonal_amplitude: 12.0,
        }
    }
}

/// Feed publication cadence (15 minutes).
pub const PUBLISH_INTERVAL_MS: i64 = 15 * 60 * 1000;

impl RteSimulated {
    /// Raw (unquantised) intensity at a given instant.
    fn raw(&self, now_ms: i64) -> f64 {
        let hours = now_ms as f64 / 3.6e6;
        let hour_of_day = hours % 24.0;
        let day_of_year = (hours / 24.0) % 365.25;
        // Evening peak around 19:00; winter peak around day 15.
        let daily = (std::f64::consts::TAU * (hour_of_day - 19.0) / 24.0).cos();
        let seasonal = (std::f64::consts::TAU * (day_of_year - 15.0) / 365.25).cos();
        (self.base + self.daily_amplitude * daily + self.seasonal_amplitude * seasonal).max(15.0)
    }
}

impl EmissionProvider for RteSimulated {
    fn name(&self) -> &'static str {
        "rte"
    }

    fn factor(&self, zone: &str, now_ms: i64) -> Option<GramsPerKwh> {
        if !zone.eq_ignore_ascii_case("FR") {
            return None;
        }
        // Quantise to the publication cadence.
        let published = (now_ms / PUBLISH_INTERVAL_MS) * PUBLISH_INTERVAL_MS;
        Some(self.raw(published))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn france_only() {
        let p = RteSimulated::default();
        assert!(p.factor("FR", 0).is_some());
        assert!(p.factor("fr", 0).is_some());
        assert!(p.factor("DE", 0).is_none());
    }

    #[test]
    fn stays_in_plausible_french_range() {
        let p = RteSimulated::default();
        for step in 0..(4 * 24 * 10) {
            let t = step * PUBLISH_INTERVAL_MS;
            let f = p.factor("FR", t).unwrap();
            assert!((15.0..=120.0).contains(&f), "t={t} f={f}");
        }
    }

    #[test]
    fn diurnal_variation_visible() {
        let p = RteSimulated::default();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for quarter in 0..96 {
            let f = p.factor("FR", quarter * PUBLISH_INTERVAL_MS).unwrap();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(hi - lo > 20.0, "swing {}", hi - lo);
    }

    #[test]
    fn quantised_to_publication_interval() {
        let p = RteSimulated::default();
        let a = p.factor("FR", 0).unwrap();
        let b = p.factor("FR", PUBLISH_INTERVAL_MS - 1).unwrap();
        let c = p.factor("FR", PUBLISH_INTERVAL_MS).unwrap();
        assert_eq!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn evening_dirtier_than_early_morning() {
        let p = RteSimulated::default();
        let early = p.factor("FR", 5 * 3_600_000).unwrap(); // 05:00
        let peak = p.factor("FR", 19 * 3_600_000).unwrap(); // 19:00
        assert!(peak > early, "peak={peak} early={early}");
    }
}
