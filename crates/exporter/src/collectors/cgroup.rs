//! Per-workload cgroup collector.
//!
//! Walks the SLURM cgroup tree the way the real exporter walks
//! `/sys/fs/cgroup` (§II.A.a): every `job_<id>` directory becomes one
//! compute unit labelled with its CEEMS uuid, and the kernel accounting
//! files are parsed as text — the simulation renders byte-identical
//! layouts, so this code would work against a real cgroup v2 tree.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::cgroup::{parse_job_dir, SLURM_CGROUP_ROOT};
use ceems_simnode::cluster::NodeHandle;
use ceems_simnode::pseudofs::PseudoFs;

/// The cgroup collector.
pub struct CgroupCollector {
    node: NodeHandle,
}

impl CgroupCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> CgroupCollector {
        CgroupCollector { node }
    }
}

fn parse_cpu_stat(text: &str) -> (f64, f64) {
    let mut user = 0.0;
    let mut system = 0.0;
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("user_usec"), Some(v)) => user = v.parse().unwrap_or(0.0),
            (Some("system_usec"), Some(v)) => system = v.parse().unwrap_or(0.0),
            _ => {}
        }
    }
    (user / 1e6, system / 1e6)
}

fn parse_io_stat(text: &str) -> (f64, f64) {
    let mut rbytes = 0.0;
    let mut wbytes = 0.0;
    for token in text.split_whitespace() {
        if let Some(v) = token.strip_prefix("rbytes=") {
            rbytes += v.parse().unwrap_or(0.0);
        } else if let Some(v) = token.strip_prefix("wbytes=") {
            wbytes += v.parse().unwrap_or(0.0);
        }
    }
    (rbytes, wbytes)
}

impl Collector for CgroupCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut cpu_user = MetricFamily::new(
            "ceems_compute_unit_cpu_user_seconds_total",
            "User-mode CPU time of the compute unit on this node",
            MetricType::Counter,
        );
        let mut cpu_sys = MetricFamily::new(
            "ceems_compute_unit_cpu_system_seconds_total",
            "Kernel-mode CPU time of the compute unit on this node",
            MetricType::Counter,
        );
        let mut mem = MetricFamily::new(
            "ceems_compute_unit_memory_used_bytes",
            "Current memory usage of the compute unit",
            MetricType::Gauge,
        );
        let mut mem_peak = MetricFamily::new(
            "ceems_compute_unit_memory_peak_bytes",
            "Peak memory usage of the compute unit",
            MetricType::Gauge,
        );
        let mut rbytes = MetricFamily::new(
            "ceems_compute_unit_read_bytes_total",
            "Bytes read by the compute unit",
            MetricType::Counter,
        );
        let mut wbytes = MetricFamily::new(
            "ceems_compute_unit_write_bytes_total",
            "Bytes written by the compute unit",
            MetricType::Counter,
        );

        let dirs = node.list_dir(SLURM_CGROUP_ROOT).unwrap_or_default();
        for dir in dirs {
            let Some(job_id) = parse_job_dir(&dir) else {
                continue;
            };
            let uuid = format!("slurm-{job_id}");
            let labels = LabelSet::from_pairs([("uuid", uuid.as_str())]);
            let base = format!("{SLURM_CGROUP_ROOT}/{dir}");

            if let Some(text) = node.read_file(&format!("{base}/cpu.stat")) {
                let (user, system) = parse_cpu_stat(&text);
                cpu_user
                    .metrics
                    .push(Metric::new(labels.clone(), Sample::now(user)));
                cpu_sys
                    .metrics
                    .push(Metric::new(labels.clone(), Sample::now(system)));
            }
            if let Some(v) = node.read_u64(&format!("{base}/memory.current")) {
                mem.metrics
                    .push(Metric::new(labels.clone(), Sample::now(v as f64)));
            }
            if let Some(v) = node.read_u64(&format!("{base}/memory.peak")) {
                mem_peak
                    .metrics
                    .push(Metric::new(labels.clone(), Sample::now(v as f64)));
            }
            if let Some(text) = node.read_file(&format!("{base}/io.stat")) {
                let (r, w) = parse_io_stat(&text);
                rbytes
                    .metrics
                    .push(Metric::new(labels.clone(), Sample::now(r)));
                wbytes.metrics.push(Metric::new(labels, Sample::now(w)));
            }
        }
        vec![cpu_user, cpu_sys, mem, mem_peak, rbytes, wbytes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
    use ceems_simnode::workload::WorkloadProfile;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn node_with_jobs() -> NodeHandle {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n1".into(),
                profile: HardwareProfile::IntelCpu,
            },
            1,
        );
        for id in [101u64, 202] {
            n.add_task(
                TaskSpec {
                    id,
                    cores: 4,
                    memory_bytes: 8 << 30,
                    gpus: 0,
                    workload: WorkloadProfile::CpuBound { intensity: 0.9 },
                },
                0,
            )
            .unwrap();
        }
        for i in 1..=10 {
            n.step(i * 1000, 1.0);
        }
        Arc::new(Mutex::new(n))
    }

    #[test]
    fn collects_one_unit_per_job() {
        let c = CgroupCollector::new(node_with_jobs());
        let fams = c.collect();
        assert_eq!(fams.len(), 6);
        let cpu = &fams[0];
        assert_eq!(cpu.name, "ceems_compute_unit_cpu_user_seconds_total");
        assert_eq!(cpu.metrics.len(), 2);
        let uuids: Vec<_> = cpu
            .metrics
            .iter()
            .map(|m| m.labels.get("uuid").unwrap().to_string())
            .collect();
        assert!(uuids.contains(&"slurm-101".to_string()));
        // ~3.6 CPU-seconds/s for 10 s at 92% user split.
        assert!(cpu.metrics[0].sample.value > 20.0);
        let mem = &fams[2];
        assert!(mem.metrics[0].sample.value > 1e9);
    }

    #[test]
    fn empty_node_yields_empty_families() {
        let n = SimNode::new(
            NodeSpec {
                hostname: "idle".into(),
                profile: HardwareProfile::AmdCpu,
            },
            2,
        );
        let c = CgroupCollector::new(Arc::new(Mutex::new(n)));
        let fams = c.collect();
        assert!(fams.iter().all(|f| f.metrics.is_empty()));
    }

    #[test]
    fn parsers() {
        assert_eq!(
            parse_cpu_stat("usage_usec 3000000\nuser_usec 2000000\nsystem_usec 1000000\n"),
            (2.0, 1.0)
        );
        assert_eq!(
            parse_io_stat("8:0 rbytes=100 wbytes=200 rios=1\n8:16 rbytes=50 wbytes=25\n"),
            (150.0, 225.0)
        );
        assert_eq!(parse_cpu_stat("garbage"), (0.0, 0.0));
    }
}
