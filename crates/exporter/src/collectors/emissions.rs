//! Emission-factor collector: exposes the current gCO₂e/kWh of each
//! configured provider so recording rules can multiply energy by it
//! (§II.A.c).

use std::sync::Arc;

use ceems_emissions::EmissionProvider;
use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::clock::SimClock;

/// The emissions collector.
pub struct EmissionsCollector {
    providers: Vec<Arc<dyn EmissionProvider>>,
    zone: String,
    clock: SimClock,
}

impl EmissionsCollector {
    /// Creates a collector for a pinned zone over a set of providers.
    pub fn new(
        providers: Vec<Arc<dyn EmissionProvider>>,
        zone: impl Into<String>,
        clock: SimClock,
    ) -> EmissionsCollector {
        EmissionsCollector {
            providers,
            zone: zone.into(),
            clock,
        }
    }
}

impl Collector for EmissionsCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let now = self.clock.now_ms();
        let mut fam = MetricFamily::new(
            "ceems_emissions_gCo2_kWh",
            "Current emission factor by provider",
            MetricType::Gauge,
        );
        // Staleness of each retention wrapper's zones: how long since the
        // underlying source chain last answered. Scraped into the TSDB so
        // the "emission-factor source down" alert rule has a real signal.
        let mut age = MetricFamily::new(
            "ceems_emissions_factor_age_seconds",
            "Seconds since the emission-factor source chain last resolved each zone",
            MetricType::Gauge,
        );
        for p in &self.providers {
            if let Some(f) = p.factor(&self.zone, now) {
                fam.metrics.push(Metric::new(
                    LabelSet::from_pairs([
                        ("provider", p.name()),
                        ("country_code", self.zone.as_str()),
                    ]),
                    Sample::now(f),
                ));
            }
            for (zone, age_ms) in p.factor_ages_ms(now) {
                age.metrics.push(Metric::new(
                    LabelSet::from_pairs([
                        ("provider", p.name()),
                        ("country_code", zone.as_str()),
                    ]),
                    Sample::now(age_ms as f64 / 1000.0),
                ));
            }
        }
        if age.metrics.is_empty() {
            return vec![fam];
        }
        vec![fam, age]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_emissions::owid::OwidStatic;
    use ceems_emissions::rte::RteSimulated;

    #[test]
    fn exposes_each_covering_provider() {
        let clock = SimClock::new();
        let c = EmissionsCollector::new(
            vec![Arc::new(RteSimulated::default()), Arc::new(OwidStatic)],
            "FR",
            clock,
        );
        let fams = c.collect();
        assert_eq!(fams[0].metrics.len(), 2);
        let providers: Vec<_> = fams[0]
            .metrics
            .iter()
            .map(|m| m.labels.get("provider").unwrap().to_string())
            .collect();
        assert!(providers.contains(&"rte".to_string()));
        assert!(providers.contains(&"owid".to_string()));
    }

    #[test]
    fn uncovered_zone_yields_partial() {
        let clock = SimClock::new();
        let c = EmissionsCollector::new(
            vec![Arc::new(RteSimulated::default()), Arc::new(OwidStatic)],
            "DE", // RTE is France-only
            clock,
        );
        let fams = c.collect();
        assert_eq!(fams[0].metrics.len(), 1);
        assert_eq!(fams[0].metrics[0].labels.get("provider"), Some("owid"));
    }
}
