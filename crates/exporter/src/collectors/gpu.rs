//! GPU collectors.
//!
//! [`DcgmCollector`] plays the role of NVIDIA's DCGM exporter (deployed
//! alongside CEEMS on GPU clusters, §II.B.a); [`GpuMapCollector`] is the
//! CEEMS-side piece: the job→GPU-ordinal map that must be recorded while
//! the job is alive because ordinals are unavailable post-mortem (§II.A.d).

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::cluster::NodeHandle;

/// DCGM-style per-GPU metrics.
pub struct DcgmCollector {
    node: NodeHandle,
}

impl DcgmCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> DcgmCollector {
        DcgmCollector { node }
    }
}

impl Collector for DcgmCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut util = MetricFamily::new(
            "DCGM_FI_DEV_GPU_UTIL",
            "GPU SM utilisation (percent)",
            MetricType::Gauge,
        );
        let mut power = MetricFamily::new(
            "DCGM_FI_DEV_POWER_USAGE",
            "GPU board power draw (watts)",
            MetricType::Gauge,
        );
        let mut fb_used = MetricFamily::new(
            "DCGM_FI_DEV_FB_USED",
            "GPU framebuffer memory used (MiB)",
            MetricType::Gauge,
        );
        let mut energy = MetricFamily::new(
            "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION",
            "GPU cumulative energy (millijoules)",
            MetricType::Counter,
        );
        for g in node.gpus() {
            let ordinal = g.ordinal.to_string();
            let labels = LabelSet::from_pairs([
                ("gpu", ordinal.as_str()),
                ("UUID", g.uuid().as_str()),
                ("modelName", g.model.name()),
            ]);
            util.metrics
                .push(Metric::new(labels.clone(), Sample::now(g.util * 100.0)));
            power
                .metrics
                .push(Metric::new(labels.clone(), Sample::now(g.power_w)));
            fb_used.metrics.push(Metric::new(
                labels.clone(),
                Sample::now(g.memory_used as f64 / (1 << 20) as f64),
            ));
            energy
                .metrics
                .push(Metric::new(labels, Sample::now(g.energy_j * 1000.0)));
        }
        vec![util, power, fb_used, energy]
    }
}

/// The job→GPU-ordinal map: `ceems_compute_unit_gpu_index_flag{uuid,index}=1`.
pub struct GpuMapCollector {
    node: NodeHandle,
}

impl GpuMapCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> GpuMapCollector {
        GpuMapCollector { node }
    }
}

impl Collector for GpuMapCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut fam = MetricFamily::new(
            "ceems_compute_unit_gpu_index_flag",
            "Maps compute units to the GPU ordinals bound to them",
            MetricType::Gauge,
        );
        for task_id in node.task_ids() {
            let Some(ordinals) = node.task_gpu_ordinals(task_id) else {
                continue;
            };
            let uuid = format!("slurm-{task_id}");
            for o in ordinals {
                // `index` matches the real CEEMS metric; `gpu` duplicates it
                // under DCGM's label name so recording rules can join the
                // map against DCGM power/util series on (gpu, instance).
                let ord = o.to_string();
                fam.metrics.push(Metric::new(
                    LabelSet::from_pairs([
                        ("uuid", uuid.as_str()),
                        ("index", ord.as_str()),
                        ("gpu", ord.as_str()),
                    ]),
                    Sample::now(1.0),
                ));
            }
        }
        vec![fam]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
    use ceems_simnode::power::{GpuModel, IpmiCoverage};
    use ceems_simnode::workload::WorkloadProfile;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn gpu_node() -> NodeHandle {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "g".into(),
                profile: HardwareProfile::Gpu {
                    model: GpuModel::A100,
                    count: 4,
                    coverage: IpmiCoverage::IncludesGpus,
                },
            },
            6,
        );
        n.add_task(
            TaskSpec {
                id: 777,
                cores: 8,
                memory_bytes: 64 << 30,
                gpus: 2,
                workload: WorkloadProfile::GpuTraining {
                    intensity: 0.9,
                    period_s: 600.0,
                },
            },
            0,
        )
        .unwrap();
        for i in 1..=5 {
            n.step(i * 1000, 1.0);
        }
        Arc::new(Mutex::new(n))
    }

    #[test]
    fn dcgm_metrics_per_gpu() {
        let fams = DcgmCollector::new(gpu_node()).collect();
        assert_eq!(fams.len(), 4);
        assert_eq!(fams[0].metrics.len(), 4); // 4 GPUs
        // Bound GPUs run hot; unbound idle.
        let utils: Vec<f64> = fams[0].metrics.iter().map(|m| m.sample.value).collect();
        assert!(utils[0] > 50.0 && utils[1] > 50.0);
        assert_eq!(utils[2], 0.0);
        // Energy counter (mJ) accumulates.
        assert!(fams[3].metrics[0].sample.value > 1e6);
        assert_eq!(
            fams[1].metrics[0].labels.get("modelName"),
            Some("NVIDIA A100-SXM4-80GB")
        );
    }

    #[test]
    fn gpu_map_flags() {
        let fams = GpuMapCollector::new(gpu_node()).collect();
        assert_eq!(fams[0].metrics.len(), 2); // job bound to GPUs 0 and 1
        for m in &fams[0].metrics {
            assert_eq!(m.labels.get("uuid"), Some("slurm-777"));
            assert_eq!(m.sample.value, 1.0);
        }
        let indices: Vec<_> = fams[0]
            .metrics
            .iter()
            .map(|m| m.labels.get("index").unwrap().to_string())
            .collect();
        assert!(indices.contains(&"0".to_string()) && indices.contains(&"1".to_string()));
    }
}
