//! IPMI-DCMI collector.
//!
//! Wraps the node's simulated `ipmitool dcmi power reading`. The BMC caches
//! internally (§II.A.b: DCMI is not suitable at high frequency), so calling
//! this on every scrape is safe — most scrapes see the cached value.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::clock::SimClock;
use ceems_simnode::cluster::NodeHandle;

/// The IPMI collector.
///
/// Supports failure injection: real BMCs time out under load, and the rest
/// of the stack must degrade gracefully (the family is simply absent from
/// that scrape; recording rules skip the node for that round).
pub struct IpmiCollector {
    node: NodeHandle,
    clock: SimClock,
    failure_rate: f64,
    attempts: std::sync::atomic::AtomicU64,
    failures: std::sync::atomic::AtomicU64,
}

impl IpmiCollector {
    /// Creates a collector over a node and the simulation clock.
    pub fn new(node: NodeHandle, clock: SimClock) -> IpmiCollector {
        Self::with_failure_rate(node, clock, 0.0)
    }

    /// Creates a collector whose BMC times out on roughly `failure_rate` of
    /// invocations (deterministic per attempt counter, so tests are stable).
    pub fn with_failure_rate(node: NodeHandle, clock: SimClock, failure_rate: f64) -> IpmiCollector {
        IpmiCollector {
            node,
            clock,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            attempts: std::sync::atomic::AtomicU64::new(0),
            failures: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// BMC invocations that timed out.
    pub fn failures(&self) -> u64 {
        self.failures.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Collector for IpmiCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        use std::sync::atomic::Ordering;
        let n = self.attempts.fetch_add(1, Ordering::Relaxed);
        if self.failure_rate > 0.0 {
            // Deterministic pseudo-random failure pattern.
            let h = (n.wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64 / (1u64 << 24) as f64;
            if h < self.failure_rate {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return vec![MetricFamily::new(
                    "ceems_ipmi_dcmi_power_current_watts",
                    "Whole-node power reported by IPMI-DCMI",
                    MetricType::Gauge,
                )];
            }
        }
        let watts = self.node.lock().ipmi_power_reading(self.clock.now_ms());
        let mut fam = MetricFamily::new(
            "ceems_ipmi_dcmi_power_current_watts",
            "Whole-node power reported by IPMI-DCMI",
            MetricType::Gauge,
        );
        fam.metrics
            .push(Metric::new(LabelSet::empty(), Sample::now(watts as f64)));
        vec![fam]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn failure_injection_drops_the_family() {
        let clock = SimClock::new();
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n".into(),
                profile: HardwareProfile::IntelCpu,
            },
            4,
        );
        n.step(1000, 1.0);
        let node = Arc::new(Mutex::new(n));
        let always = IpmiCollector::with_failure_rate(node.clone(), clock.clone(), 1.0);
        let fams = always.collect();
        assert!(fams[0].metrics.is_empty());
        assert_eq!(always.failures(), 1);

        let never = IpmiCollector::with_failure_rate(node.clone(), clock.clone(), 0.0);
        assert_eq!(never.collect()[0].metrics.len(), 1);

        // A partial rate fails some but not all of 100 scrapes.
        let flaky = IpmiCollector::with_failure_rate(node, clock, 0.3);
        let mut ok = 0;
        for _ in 0..100 {
            if !flaky.collect()[0].metrics.is_empty() {
                ok += 1;
            }
        }
        assert!(ok > 40 && ok < 95, "ok={ok}");
    }

    #[test]
    fn reports_node_power() {
        let clock = SimClock::new();
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n".into(),
                profile: HardwareProfile::IntelCpu,
            },
            4,
        );
        n.step(1000, 1.0);
        let c = IpmiCollector::new(Arc::new(Mutex::new(n)), clock.clone());
        clock.advance_ms(1000);
        let fams = c.collect();
        assert_eq!(fams.len(), 1);
        let watts = fams[0].metrics[0].sample.value;
        // Idle dual-socket Intel node: 100-300 W.
        assert!(watts > 100.0 && watts < 400.0, "watts={watts}");
    }
}
