//! Collector implementations.

pub mod cgroup;
pub mod emissions;
pub mod gpu;
pub mod ipmi;
pub mod node;
pub mod perf;
pub mod rapl;
pub mod selfstats;

/// Metric name prefix shared by all CEEMS collectors.
pub const PREFIX: &str = "ceems";
