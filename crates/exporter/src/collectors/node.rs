//! Node-level collector: `/proc/stat` CPU jiffies and `/proc/meminfo`.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::cluster::NodeHandle;
use ceems_simnode::pseudofs::PseudoFs;

/// The node collector.
pub struct NodeCollector {
    node: NodeHandle,
}

impl NodeCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> NodeCollector {
        NodeCollector { node }
    }
}

const USER_HZ: f64 = 100.0;

fn parse_proc_stat(text: &str) -> Option<(f64, f64, f64)> {
    let line = text.lines().find(|l| l.starts_with("cpu "))?;
    let fields: Vec<f64> = line
        .split_whitespace()
        .skip(1)
        .filter_map(|f| f.parse().ok())
        .collect();
    // user nice system idle ...
    Some((
        *fields.first()? / USER_HZ,
        *fields.get(2)? / USER_HZ,
        *fields.get(3)? / USER_HZ,
    ))
}

fn meminfo_kb(text: &str, key: &str) -> Option<f64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start_matches(':').trim();
            let kb: f64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kb * 1024.0);
        }
    }
    None
}

impl Collector for NodeCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut cpu = MetricFamily::new(
            "ceems_cpu_seconds_total",
            "Node CPU time by mode",
            MetricType::Counter,
        );
        if let Some((user, system, idle)) =
            node.read_file("/proc/stat").as_deref().and_then(parse_proc_stat)
        {
            for (mode, v) in [("user", user), ("system", system), ("idle", idle)] {
                cpu.metrics.push(Metric::new(
                    LabelSet::from_pairs([("mode", mode)]),
                    Sample::now(v),
                ));
            }
        }

        let mut mem_total = MetricFamily::new(
            "ceems_memory_total_bytes",
            "Installed memory",
            MetricType::Gauge,
        );
        let mut mem_used = MetricFamily::new(
            "ceems_memory_used_bytes",
            "Memory in use (total minus available)",
            MetricType::Gauge,
        );
        if let Some(text) = node.read_file("/proc/meminfo") {
            if let (Some(total), Some(avail)) = (
                meminfo_kb(&text, "MemTotal"),
                meminfo_kb(&text, "MemAvailable"),
            ) {
                mem_total
                    .metrics
                    .push(Metric::new(LabelSet::empty(), Sample::now(total)));
                mem_used.metrics.push(Metric::new(
                    LabelSet::empty(),
                    Sample::now(total - avail),
                ));
            }
        }
        vec![cpu, mem_total, mem_used]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
    use ceems_simnode::workload::WorkloadProfile;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn parses_proc_files() {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n".into(),
                profile: HardwareProfile::IntelCpu,
            },
            5,
        );
        n.add_task(
            TaskSpec {
                id: 1,
                cores: 20,
                memory_bytes: 64 << 30,
                gpus: 0,
                workload: WorkloadProfile::CpuBound { intensity: 0.95 },
            },
            0,
        )
        .unwrap();
        for i in 1..=10 {
            n.step(i * 1000, 1.0);
        }
        let c = NodeCollector::new(Arc::new(Mutex::new(n)));
        let fams = c.collect();
        let cpu = &fams[0];
        assert_eq!(cpu.metrics.len(), 3);
        let user = cpu
            .metrics
            .iter()
            .find(|m| m.labels.get("mode") == Some("user"))
            .unwrap()
            .sample
            .value;
        // ~19 busy cores for 10s at 92% user: >150 CPU-seconds.
        assert!(user > 100.0, "user={user}");
        let total = fams[1].metrics[0].sample.value;
        let used = fams[2].metrics[0].sample.value;
        assert_eq!(total, (192u64 << 30) as f64);
        assert!(used > 1e9 && used < total);
    }

    #[test]
    fn parser_helpers() {
        let (u, s, i) = parse_proc_stat("cpu  100 0 50 850 0 0 0 0 0 0\n").unwrap();
        assert_eq!((u, s, i), (1.0, 0.5, 8.5));
        assert!(parse_proc_stat("nothing").is_none());
        assert_eq!(
            meminfo_kb("MemTotal:       1024 kB\n", "MemTotal"),
            Some(1024.0 * 1024.0)
        );
        assert!(meminfo_kb("MemTotal: 1 kB", "MemFree").is_none());
    }
}
