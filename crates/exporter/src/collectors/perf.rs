//! Perf and eBPF-style collectors — §IV's future-work list, implemented.
//!
//! "Some of the important features in the pipeline are adding network and
//! IO stats to CEEMS exporter using extended Berkley Packet Filtering
//! (eBPF) framework and adding performance metrics like FLOPS, caching,
//! and memory IO bandwidth ... from Linux's perf framework."
//!
//! [`PerfCollector`] exposes per-unit instruction/cycle/FLOP/cache/DRAM
//! counters; [`NetCollector`] exposes per-unit TX/RX byte counters.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::cluster::NodeHandle;

/// The perf-framework collector.
pub struct PerfCollector {
    node: NodeHandle,
}

impl PerfCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> PerfCollector {
        PerfCollector { node }
    }
}

impl Collector for PerfCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut fams: Vec<MetricFamily> = [
            ("ceems_compute_unit_perf_instructions_total", "Retired instructions"),
            ("ceems_compute_unit_perf_cycles_total", "CPU cycles"),
            ("ceems_compute_unit_perf_flops_total", "Double-precision FLOPs"),
            (
                "ceems_compute_unit_perf_cache_references_total",
                "Last-level cache references",
            ),
            (
                "ceems_compute_unit_perf_cache_misses_total",
                "Last-level cache misses",
            ),
            (
                "ceems_compute_unit_perf_dram_bytes_total",
                "Bytes moved to/from DRAM",
            ),
        ]
        .into_iter()
        .map(|(name, help)| MetricFamily::new(name, help, MetricType::Counter))
        .collect();

        for id in node.task_ids() {
            let Some(perf) = node.task_perf(id) else { continue };
            let uuid = format!("slurm-{id}");
            let labels = LabelSet::from_pairs([("uuid", uuid.as_str())]);
            let values = [
                perf.instructions,
                perf.cycles,
                perf.flops,
                perf.cache_references,
                perf.cache_misses,
                perf.dram_bytes,
            ];
            for (fam, v) in fams.iter_mut().zip(values) {
                fam.metrics
                    .push(Metric::new(labels.clone(), Sample::now(v as f64)));
            }
        }
        fams
    }
}

/// The eBPF-style network collector.
pub struct NetCollector {
    node: NodeHandle,
}

impl NetCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> NetCollector {
        NetCollector { node }
    }
}

impl Collector for NetCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut tx = MetricFamily::new(
            "ceems_compute_unit_net_tx_bytes_total",
            "Bytes transmitted by the compute unit",
            MetricType::Counter,
        );
        let mut rx = MetricFamily::new(
            "ceems_compute_unit_net_rx_bytes_total",
            "Bytes received by the compute unit",
            MetricType::Counter,
        );
        for id in node.task_ids() {
            let Some((tx_b, rx_b)) = node.task_network(id) else { continue };
            let uuid = format!("slurm-{id}");
            let labels = LabelSet::from_pairs([("uuid", uuid.as_str())]);
            tx.metrics
                .push(Metric::new(labels.clone(), Sample::now(tx_b as f64)));
            rx.metrics.push(Metric::new(labels, Sample::now(rx_b as f64)));
        }
        vec![tx, rx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
    use ceems_simnode::workload::WorkloadProfile;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn node_running(workload: WorkloadProfile) -> NodeHandle {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n".into(),
                profile: HardwareProfile::IntelCpu,
            },
            9,
        );
        n.add_task(
            TaskSpec {
                id: 1,
                cores: 8,
                memory_bytes: 16 << 30,
                gpus: 0,
                workload,
            },
            0,
        )
        .unwrap();
        for i in 1..=10 {
            n.step(i * 1000, 1.0);
        }
        Arc::new(Mutex::new(n))
    }

    #[test]
    fn perf_families_per_unit() {
        let c = PerfCollector::new(node_running(WorkloadProfile::CpuBound { intensity: 0.9 }));
        let fams = c.collect();
        assert_eq!(fams.len(), 6);
        for f in &fams {
            assert_eq!(f.metrics.len(), 1);
            assert_eq!(f.metrics[0].labels.get("uuid"), Some("slurm-1"));
            assert!(f.metrics[0].sample.value > 0.0, "{} empty", f.name);
        }
        // Instruction count dwarfs cache misses for CPU-bound code.
        let insns = fams[0].metrics[0].sample.value;
        let misses = fams[4].metrics[0].sample.value;
        assert!(insns > 100.0 * misses);
    }

    #[test]
    fn memory_bound_shows_high_dram_traffic() {
        let cpu = PerfCollector::new(node_running(WorkloadProfile::CpuBound { intensity: 0.9 }));
        let mem = PerfCollector::new(node_running(WorkloadProfile::MemoryBound { resident: 0.9 }));
        let dram_cpu = cpu.collect()[5].metrics[0].sample.value;
        let dram_mem = mem.collect()[5].metrics[0].sample.value;
        assert!(dram_mem > 2.0 * dram_cpu, "mem={dram_mem} cpu={dram_cpu}");
    }

    #[test]
    fn network_counters_accumulate() {
        let c = NetCollector::new(node_running(WorkloadProfile::CpuBound { intensity: 0.9 }));
        let fams = c.collect();
        assert_eq!(fams.len(), 2);
        // 2e7 B/s × 10 s ≈ 2e8 B on each direction for MPI-ish code.
        assert!(fams[0].metrics[0].sample.value > 1e8);
        assert!(fams[1].metrics[0].sample.value > 1e8);
    }
}
