//! RAPL collector: reads the powercap tree.

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_simnode::cluster::NodeHandle;
use ceems_simnode::pseudofs::PseudoFs;

/// The RAPL collector.
pub struct RaplCollector {
    node: NodeHandle,
}

impl RaplCollector {
    /// Creates a collector over a node.
    pub fn new(node: NodeHandle) -> RaplCollector {
        RaplCollector { node }
    }
}

impl Collector for RaplCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let node = self.node.lock();
        let mut package = MetricFamily::new(
            "ceems_rapl_package_joules_total",
            "RAPL package domain cumulative energy",
            MetricType::Counter,
        );
        let mut dram = MetricFamily::new(
            "ceems_rapl_dram_joules_total",
            "RAPL DRAM domain cumulative energy",
            MetricType::Counter,
        );

        let zones = node.list_dir("/sys/class/powercap").unwrap_or_default();
        for zone in zones {
            let base = format!("/sys/class/powercap/{zone}");
            let Some(name) = node.read_file(&format!("{base}/name")) else {
                continue;
            };
            let Some(uj) = node.read_u64(&format!("{base}/energy_uj")) else {
                continue;
            };
            let joules = uj as f64 / 1e6;
            let labels = LabelSet::from_pairs([("path", zone.as_str())]);
            if name.trim().starts_with("package") {
                package.metrics.push(Metric::new(labels, Sample::now(joules)));
            } else if name.trim() == "dram" {
                dram.metrics.push(Metric::new(labels, Sample::now(joules)));
            }
        }
        vec![package, dram]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn stepped(profile: HardwareProfile) -> NodeHandle {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "n".into(),
                profile,
            },
            3,
        );
        for i in 1..=5 {
            n.step(i * 1000, 1.0);
        }
        Arc::new(Mutex::new(n))
    }

    #[test]
    fn intel_has_package_and_dram() {
        let c = RaplCollector::new(stepped(HardwareProfile::IntelCpu));
        let fams = c.collect();
        assert_eq!(fams[0].metrics.len(), 2); // 2 sockets
        assert_eq!(fams[1].metrics.len(), 2); // 2 dram domains
        assert!(fams[0].metrics[0].sample.value > 100.0); // ≥45W*5s
        assert_eq!(fams[0].metrics[0].labels.get("path"), Some("intel-rapl:0"));
    }

    #[test]
    fn amd_has_no_dram_domain() {
        let c = RaplCollector::new(stepped(HardwareProfile::AmdCpu));
        let fams = c.collect();
        assert_eq!(fams[0].metrics.len(), 2);
        assert!(fams[1].metrics.is_empty());
    }
}
