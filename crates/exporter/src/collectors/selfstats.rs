//! The exporter's self-metrics: scrape counters, durations and an estimate
//! of its own memory footprint. §II.B.a claims 15–20 MB of memory and
//! sub-microsecond CPU per scrape; the E4 experiment measures this
//! collector's numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ceems_metrics::labels::LabelSet;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::registry::Collector;
use ceems_metrics::Histogram;

/// Shared scrape statistics, updated by the exporter on each render.
///
/// The mean-only atomics (`scrapes`, `render_ns`) stay as-is — the E4
/// experiment consumes them — and a shared [`Histogram`] instrument sits
/// alongside them so the exposition carries render-latency quantiles too.
#[derive(Debug)]
pub struct SelfStats {
    /// Scrapes served.
    pub scrapes: AtomicU64,
    /// Total time spent rendering, nanoseconds.
    pub render_ns: AtomicU64,
    /// Bytes of the last rendered payload.
    pub last_payload_bytes: AtomicU64,
    /// Samples served to pull-mode scrapes.
    pub samples_scraped: AtomicU64,
    /// Samples published over the streaming push path (S23).
    pub samples_pushed: AtomicU64,
    /// Render latency distribution (`_bucket`/`_sum`/`_count`).
    render_seconds: Histogram,
}

impl Default for SelfStats {
    fn default() -> SelfStats {
        SelfStats {
            scrapes: AtomicU64::new(0),
            render_ns: AtomicU64::new(0),
            last_payload_bytes: AtomicU64::new(0),
            samples_scraped: AtomicU64::new(0),
            samples_pushed: AtomicU64::new(0),
            render_seconds: Histogram::new(Histogram::duration_buckets()),
        }
    }
}

/// How a render left the exporter: pulled by a scraper or pushed onto the
/// streaming bus. Distinguished in `ceems_exporter_samples_total{mode=}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RenderMode {
    /// Pull: a scraper fetched `/metrics` (or the in-process equivalent).
    Scrape,
    /// Push: the exporter published the render onto the stream bus.
    Push,
}

impl SelfStats {
    /// Records one render.
    pub fn record(&self, elapsed_ns: u64, payload_bytes: usize) {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        self.render_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.render_seconds.observe(elapsed_ns as f64 / 1e9);
        self.last_payload_bytes
            .store(payload_bytes as u64, Ordering::Relaxed);
    }

    /// Records `n` samples leaving by `mode`.
    pub fn record_samples(&self, mode: RenderMode, n: u64) {
        match mode {
            RenderMode::Scrape => self.samples_scraped.fetch_add(n, Ordering::Relaxed),
            RenderMode::Push => self.samples_pushed.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Mean render time in nanoseconds.
    pub fn mean_render_ns(&self) -> f64 {
        let n = self.scrapes.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.render_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// A clone of the render-latency histogram (shares state).
    pub fn render_histogram(&self) -> Histogram {
        self.render_seconds.clone()
    }
}

/// The self-metrics collector.
pub struct SelfCollector {
    stats: Arc<SelfStats>,
}

impl SelfCollector {
    /// Creates the collector.
    pub fn new(stats: Arc<SelfStats>) -> SelfCollector {
        SelfCollector { stats }
    }
}

impl Collector for SelfCollector {
    fn collect(&self) -> Vec<MetricFamily> {
        let mut scrapes = MetricFamily::new(
            "ceems_exporter_scrapes_total",
            "Scrapes served by this exporter",
            MetricType::Counter,
        );
        scrapes.metrics.push(Metric::new(
            LabelSet::empty(),
            Sample::now(self.stats.scrapes.load(Ordering::Relaxed) as f64),
        ));
        let mut render = MetricFamily::new(
            "ceems_exporter_render_seconds_total",
            "Cumulative time spent rendering /metrics",
            MetricType::Counter,
        );
        render.metrics.push(Metric::new(
            LabelSet::empty(),
            Sample::now(self.stats.render_ns.load(Ordering::Relaxed) as f64 / 1e9),
        ));
        let mut payload = MetricFamily::new(
            "ceems_exporter_payload_bytes",
            "Size of the last /metrics payload",
            MetricType::Gauge,
        );
        payload.metrics.push(Metric::new(
            LabelSet::empty(),
            Sample::now(self.stats.last_payload_bytes.load(Ordering::Relaxed) as f64),
        ));
        let mut samples = MetricFamily::new(
            "ceems_exporter_samples_total",
            "Samples leaving this exporter, by transport mode",
            MetricType::Counter,
        );
        for (mode, v) in [
            ("scrape", self.stats.samples_scraped.load(Ordering::Relaxed)),
            ("push", self.stats.samples_pushed.load(Ordering::Relaxed)),
        ] {
            samples.metrics.push(Metric::new(
                LabelSet::from_pairs([("mode", mode)]),
                Sample::now(v as f64),
            ));
        }
        let mut render_hist = MetricFamily::new(
            "ceems_exporter_render_duration_seconds",
            "Distribution of /metrics render wall time",
            MetricType::Histogram,
        );
        render_hist.metrics = self.stats.render_seconds.render(&LabelSet::empty());
        vec![scrapes, render, payload, samples, render_hist]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let stats = Arc::new(SelfStats::default());
        stats.record(1_000, 512);
        stats.record(3_000, 600);
        assert_eq!(stats.mean_render_ns(), 2_000.0);
        let fams = SelfCollector::new(stats.clone()).collect();
        assert_eq!(fams[0].metrics[0].sample.value, 2.0);
        assert_eq!(fams[2].metrics[0].sample.value, 600.0);
        // The histogram family carries the same observations as quantiles.
        assert_eq!(fams[4].name, "ceems_exporter_render_duration_seconds");
        assert_eq!(stats.render_histogram().count(), 2);
        let count = fams[4]
            .metrics
            .iter()
            .find(|m| m.name_suffix == "_count")
            .unwrap();
        assert_eq!(count.sample.value, 2.0);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(SelfStats::default().mean_render_ns(), 0.0);
    }

    #[test]
    fn samples_total_distinguishes_push_from_scrape() {
        let stats = Arc::new(SelfStats::default());
        stats.record_samples(RenderMode::Scrape, 10);
        stats.record_samples(RenderMode::Push, 3);
        stats.record_samples(RenderMode::Push, 4);
        let fams = SelfCollector::new(stats).collect();
        let samples = fams
            .iter()
            .find(|f| f.name == "ceems_exporter_samples_total")
            .unwrap();
        let by_mode: std::collections::BTreeMap<&str, f64> = samples
            .metrics
            .iter()
            .map(|m| (m.labels.get("mode").unwrap(), m.sample.value))
            .collect();
        assert_eq!(by_mode["scrape"], 10.0);
        assert_eq!(by_mode["push"], 7.0);
    }
}
