//! The exporter: registry wiring, text rendering and the `/metrics`
//! HTTP endpoint.

use std::sync::Arc;

use ceems_emissions::EmissionProvider;
use ceems_http::auth::BasicAuth;
use ceems_http::{HttpServer, Response, Router, ServerConfig};
use ceems_metrics::encode::encode_families_into;
use ceems_metrics::registry::Registry;
use ceems_simnode::clock::SimClock;
use ceems_simnode::cluster::NodeHandle;

use crate::collectors::cgroup::CgroupCollector;
use crate::collectors::emissions::EmissionsCollector;
use crate::collectors::gpu::{DcgmCollector, GpuMapCollector};
use crate::collectors::ipmi::IpmiCollector;
use crate::collectors::node::NodeCollector;
use crate::collectors::perf::{NetCollector, PerfCollector};
use crate::collectors::rapl::RaplCollector;
use crate::collectors::selfstats::{RenderMode, SelfCollector, SelfStats};

/// Exporter configuration (mirrors the real exporter's CLI flags).
#[derive(Clone)]
pub struct ExporterConfig {
    /// Collectors to disable, by name (`cgroup`, `rapl`, `ipmi`, `node`,
    /// `gpu`, `gpu_map`, `emissions`, `self`).
    pub disabled_collectors: Vec<String>,
    /// Emission providers to expose (with the zone).
    pub emission_providers: Vec<Arc<dyn EmissionProvider>>,
    /// Country/zone code for emission factors.
    pub zone: String,
    /// Basic auth for the HTTP endpoint (the paper's DoS guard).
    pub basic_auth: Option<BasicAuth>,
    /// Failure-injection: fraction of IPMI invocations that time out
    /// (0 disables; used by resilience tests).
    pub ipmi_failure_rate: f64,
}

impl Default for ExporterConfig {
    fn default() -> Self {
        ExporterConfig {
            disabled_collectors: Vec::new(),
            emission_providers: Vec::new(),
            zone: "FR".to_string(),
            basic_auth: None,
            ipmi_failure_rate: 0.0,
        }
    }
}

/// A per-node CEEMS exporter.
pub struct CeemsExporter {
    registry: Registry,
    stats: Arc<SelfStats>,
    config: ExporterConfig,
}

impl CeemsExporter {
    /// Builds the exporter for a node, registering all collectors and then
    /// disabling the configured ones.
    pub fn new(node: NodeHandle, clock: SimClock, config: ExporterConfig) -> CeemsExporter {
        let registry = Registry::new();
        let stats = Arc::new(SelfStats::default());

        registry.register("cgroup", Arc::new(CgroupCollector::new(node.clone())));
        registry.register("rapl", Arc::new(RaplCollector::new(node.clone())));
        registry.register(
            "ipmi",
            Arc::new(IpmiCollector::with_failure_rate(
                node.clone(),
                clock.clone(),
                config.ipmi_failure_rate,
            )),
        );
        registry.register("node", Arc::new(NodeCollector::new(node.clone())));
        registry.register("gpu", Arc::new(DcgmCollector::new(node.clone())));
        registry.register("gpu_map", Arc::new(GpuMapCollector::new(node.clone())));
        registry.register("perf", Arc::new(PerfCollector::new(node.clone())));
        registry.register("ebpf_net", Arc::new(NetCollector::new(node)));
        registry.register(
            "emissions",
            Arc::new(EmissionsCollector::new(
                config.emission_providers.clone(),
                config.zone.clone(),
                clock,
            )),
        );
        registry.register("self", Arc::new(SelfCollector::new(stats.clone())));

        for name in &config.disabled_collectors {
            registry.set_enabled(name, false);
        }

        CeemsExporter {
            registry,
            stats,
            config,
        }
    }

    /// The collector registry (to toggle collectors at runtime).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Scrape statistics.
    pub fn stats(&self) -> &Arc<SelfStats> {
        &self.stats
    }

    /// Renders the `/metrics` payload (the scrape hot path).
    pub fn render(&self) -> String {
        self.render_as(RenderMode::Scrape)
    }

    /// Renders a payload for the streaming push path; counted separately in
    /// `ceems_exporter_samples_total{mode="push"}`.
    pub fn render_for_push(&self) -> String {
        self.render_as(RenderMode::Push)
    }

    fn render_as(&self, mode: RenderMode) -> String {
        let started = std::time::Instant::now();
        let families = self.registry.gather();
        let samples: usize = families.iter().map(|f| f.metrics.len()).sum();
        let mut out = String::with_capacity(4096);
        encode_families_into(&families, &mut out);
        self.stats
            .record(started.elapsed().as_nanos() as u64, out.len());
        self.stats.record_samples(mode, samples as u64);
        out
    }

    /// A closure suitable for in-process scraping.
    pub fn render_fn(self: &Arc<Self>) -> Arc<dyn Fn() -> String + Send + Sync> {
        let me = self.clone();
        Arc::new(move || me.render())
    }

    /// Serves `/metrics` over HTTP on an ephemeral port.
    pub fn serve(self: Arc<Self>) -> std::io::Result<HttpServer> {
        self.serve_with(ServerConfig::ephemeral())
    }

    /// Serves `/metrics` with explicit server tuning (connection caps, idle
    /// timeout, reactor threads — e.g. from the `http:` config section).
    /// Basic auth from the exporter's own config still takes precedence.
    pub fn serve_with(self: Arc<Self>, mut cfg: ServerConfig) -> std::io::Result<HttpServer> {
        cfg.basic_auth = self.config.basic_auth.clone();
        let mut router = Router::new();
        let me = self.clone();
        router.get("/metrics", move |_req| Response::text(me.render()));
        router.get("/", |_req| {
            Response::text("CEEMS exporter. Metrics at /metrics\n")
        });
        HttpServer::serve(cfg, router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_emissions::owid::OwidStatic;
    use ceems_http::Client;
    use ceems_metrics::parse::parse_text;
    use ceems_simnode::node::{HardwareProfile, NodeSpec, SimNode, TaskSpec};
    use ceems_simnode::power::{GpuModel, IpmiCoverage};
    use ceems_simnode::workload::WorkloadProfile;
    use parking_lot::Mutex;

    fn busy_gpu_node() -> NodeHandle {
        let mut n = SimNode::new(
            NodeSpec {
                hostname: "jz-a100-0001".into(),
                profile: HardwareProfile::Gpu {
                    model: GpuModel::A100,
                    count: 4,
                    coverage: IpmiCoverage::ExcludesGpus,
                },
            },
            11,
        );
        n.add_task(
            TaskSpec {
                id: 4242,
                cores: 16,
                memory_bytes: 128 << 30,
                gpus: 4,
                workload: WorkloadProfile::GpuTraining {
                    intensity: 0.9,
                    period_s: 600.0,
                },
            },
            0,
        )
        .unwrap();
        for i in 1..=10 {
            n.step(i * 1000, 1.0);
        }
        Arc::new(Mutex::new(n))
    }

    fn exporter(node: NodeHandle) -> Arc<CeemsExporter> {
        let clock = SimClock::starting_at(10_000);
        Arc::new(CeemsExporter::new(
            node,
            clock,
            ExporterConfig {
                emission_providers: vec![Arc::new(OwidStatic)],
                ..Default::default()
            },
        ))
    }

    #[test]
    fn render_is_parseable_and_complete() {
        let exp = exporter(busy_gpu_node());
        let text = exp.render();
        let parsed = parse_text(&text).unwrap();
        let names: std::collections::BTreeSet<_> =
            parsed.samples.iter().map(|s| s.name.clone()).collect();
        for expected in [
            "ceems_compute_unit_cpu_user_seconds_total",
            "ceems_compute_unit_memory_used_bytes",
            "ceems_rapl_package_joules_total",
            "ceems_rapl_dram_joules_total",
            "ceems_ipmi_dcmi_power_current_watts",
            "ceems_cpu_seconds_total",
            "DCGM_FI_DEV_GPU_UTIL",
            "ceems_compute_unit_gpu_index_flag",
            "ceems_emissions_gCo2_kWh",
            "ceems_exporter_scrapes_total",
        ] {
            assert!(names.contains(expected), "missing {expected} in:\n{names:?}");
        }
        // The job's uuid label flows through.
        assert!(text.contains("uuid=\"slurm-4242\""));
    }

    #[test]
    fn disabled_collectors_are_skipped() {
        let node = busy_gpu_node();
        let clock = SimClock::new();
        let exp = CeemsExporter::new(
            node,
            clock,
            ExporterConfig {
                disabled_collectors: vec!["gpu".into(), "emissions".into()],
                ..Default::default()
            },
        );
        let text = exp.render();
        assert!(!text.contains("DCGM_FI_DEV_GPU_UTIL"));
        assert!(!text.contains("ceems_emissions"));
        assert!(text.contains("ceems_rapl_package_joules_total"));
    }

    #[test]
    fn self_stats_advance_per_render() {
        let exp = exporter(busy_gpu_node());
        exp.render();
        exp.render();
        let text = exp.render();
        // The self collector reports scrapes from *before* this render.
        assert!(text.contains("ceems_exporter_scrapes_total 2"));
        assert!(exp.stats().mean_render_ns() > 0.0);
    }

    #[test]
    fn http_endpoint_with_auth() {
        let node = busy_gpu_node();
        let auth = BasicAuth::new("prom", "pw");
        let exp = Arc::new(CeemsExporter::new(
            node,
            SimClock::new(),
            ExporterConfig {
                basic_auth: Some(auth.clone()),
                ..Default::default()
            },
        ));
        let server = exp.serve().unwrap();
        let unauth = Client::new()
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(unauth.status.0, 401);
        let ok = Client::new()
            .with_basic_auth(auth)
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(ok.status.0, 200);
        assert!(ok.body_string().contains("ceems_rapl_package_joules_total"));
        server.shutdown();
    }
}
