#![warn(missing_docs)]
//! CEEMS exporter (S11 in `DESIGN.md`).
//!
//! One exporter runs per compute node (§II.B.a). It is an HTTP server whose
//! `/metrics` endpoint renders the enabled collectors in the Prometheus
//! text format. Collectors mirror the real exporter's:
//!
//! * [`collectors::cgroup`] — per-workload CPU/memory/IO from the cgroup
//!   pseudo-filesystem (SLURM flavour: one cgroup per job).
//! * [`collectors::rapl`] — RAPL energy counters from the powercap tree.
//! * [`collectors::ipmi`] — IPMI-DCMI whole-node power.
//! * [`collectors::node`] — node-level `/proc` CPU and memory.
//! * [`collectors::gpu`] — DCGM-style GPU metrics plus the job→GPU-ordinal
//!   map CEEMS must persist while jobs run (§II.A.d).
//! * [`collectors::emissions`] — current emission factors per provider.
//! * [`collectors::selfstats`] — the exporter's own scrape counters (the
//!   §II.B.a overhead claims are measured against these).
//!
//! Collectors are enabled/disabled by name, mirroring the real CLI flags.

pub mod collectors;
pub mod exporter;

pub use collectors::selfstats::{RenderMode, SelfStats};
pub use exporter::{CeemsExporter, ExporterConfig};
