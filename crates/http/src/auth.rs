//! HTTP Basic authentication and the base64 codec it needs.
//!
//! Every CEEMS component supports basic auth (the paper calls this out as
//! the DoS/DDoS protection for the exporter); servers are configured with an
//! optional [`BasicAuth`] and reject unauthenticated requests with 401.

/// Standard base64 alphabet encode.
pub fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Standard base64 decode; returns `None` on any malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return None;
        }
        // '=' may only appear at the end.
        if chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut triple: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { val(c)? };
            triple |= v << (18 - 6 * i as u32);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

/// Basic-auth credentials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicAuth {
    /// Username.
    pub username: String,
    /// Password.
    pub password: String,
}

impl BasicAuth {
    /// Creates credentials.
    pub fn new(username: impl Into<String>, password: impl Into<String>) -> Self {
        BasicAuth {
            username: username.into(),
            password: password.into(),
        }
    }

    /// Produces the `Authorization` header value.
    pub fn header_value(&self) -> String {
        format!(
            "Basic {}",
            base64_encode(format!("{}:{}", self.username, self.password).as_bytes())
        )
    }

    /// Verifies an `Authorization` header value in constant-ish time.
    pub fn verify(&self, header: Option<&str>) -> bool {
        let Some(header) = header else { return false };
        let Some(encoded) = header.strip_prefix("Basic ") else {
            return false;
        };
        let Some(decoded) = base64_decode(encoded.trim()) else {
            return false;
        };
        let Ok(creds) = String::from_utf8(decoded) else {
            return false;
        };
        let Some((user, pass)) = creds.split_once(':') else {
            return false;
        };
        // Compare without early exit on length match, to avoid the most
        // trivial timing side channel.
        constant_time_eq(user.as_bytes(), self.username.as_bytes())
            & constant_time_eq(pass.as_bytes(), self.password.as_bytes())
    }
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_roundtrip_binary() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_decode_rejects_malformed() {
        assert!(base64_decode("abc").is_none()); // bad length
        assert!(base64_decode("ab=c").is_none()); // pad in middle
        assert!(base64_decode("a$==").is_none()); // bad char
        assert!(base64_decode("====").is_none()); // too much padding
    }

    #[test]
    fn basic_auth_roundtrip() {
        let auth = BasicAuth::new("ceems", "s3cret");
        let header = auth.header_value();
        assert_eq!(header, "Basic Y2VlbXM6czNjcmV0");
        assert!(auth.verify(Some(&header)));
    }

    #[test]
    fn basic_auth_rejections() {
        let auth = BasicAuth::new("ceems", "s3cret");
        assert!(!auth.verify(None));
        assert!(!auth.verify(Some("Bearer token")));
        assert!(!auth.verify(Some("Basic !!!notb64!!!")));
        let wrong = BasicAuth::new("ceems", "wrong").header_value();
        assert!(!auth.verify(Some(&wrong)));
        let nocolon = format!("Basic {}", base64_encode(b"ceemss3cret"));
        assert!(!auth.verify(Some(&nocolon)));
    }

    #[test]
    fn password_containing_colon() {
        let auth = BasicAuth::new("u", "p:a:s");
        assert!(auth.verify(Some(&auth.header_value())));
    }
}
