//! Blocking HTTP/1.1 client.
//!
//! One connection per request (`connection: close`), which keeps the client
//! trivially correct; the scraper amortises cost by scraping many targets in
//! parallel rather than by connection reuse.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::auth::BasicAuth;
use crate::types::{Method, Response, Status};

/// Client errors.
#[derive(Debug)]
pub enum ClientError {
    /// URL could not be parsed.
    BadUrl(String),
    /// Connection / IO failure.
    Io(std::io::Error),
    /// Response could not be parsed.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadUrl(u) => write!(f, "bad url: {u}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Parsed `http://host:port/path?query` URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Url {
    /// `host:port` authority.
    pub authority: String,
    /// Path plus optional query, starting with `/`.
    pub path_and_query: String,
}

impl Url {
    /// Parses an `http://` URL. `https` is rejected (no TLS substrate).
    pub fn parse(url: &str) -> Result<Url, ClientError> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| ClientError::BadUrl(url.to_string()))?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(ClientError::BadUrl(url.to_string()));
        }
        let authority = if authority.contains(':') {
            authority.to_string()
        } else {
            format!("{authority}:80")
        };
        Ok(Url {
            authority,
            path_and_query: path.to_string(),
        })
    }
}

/// A blocking HTTP client.
#[derive(Clone, Debug, Default)]
pub struct Client {
    basic_auth: Option<BasicAuth>,
    headers: Vec<(String, String)>,
    timeout: Option<Duration>,
    #[cfg(feature = "fault")]
    fault: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl Client {
    /// Creates a client with a 10 s default timeout.
    pub fn new() -> Client {
        Client {
            basic_auth: None,
            headers: Vec::new(),
            timeout: Some(Duration::from_secs(10)),
            #[cfg(feature = "fault")]
            fault: None,
        }
    }

    /// Attaches basic-auth credentials to every request.
    pub fn with_basic_auth(mut self, auth: BasicAuth) -> Client {
        self.basic_auth = Some(auth);
        self
    }

    /// Attaches a header to every request.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Client {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = Some(timeout);
        self
    }

    /// Injects faults on the client side of every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Client {
        self.fault = Some(plan);
        self
    }

    /// Issues a GET.
    pub fn get(&self, url: &str) -> Result<Response, ClientError> {
        self.request(Method::Get, url, Vec::new(), None)
    }

    /// Issues a POST with a body.
    pub fn post(
        &self,
        url: &str,
        body: Vec<u8>,
        content_type: &str,
    ) -> Result<Response, ClientError> {
        self.request(Method::Post, url, body, Some(content_type))
    }

    /// Issues a DELETE.
    pub fn delete(&self, url: &str) -> Result<Response, ClientError> {
        self.request(Method::Delete, url, Vec::new(), None)
    }

    /// Issues an arbitrary request.
    pub fn request(
        &self,
        method: Method,
        url: &str,
        body: Vec<u8>,
        content_type: Option<&str>,
    ) -> Result<Response, ClientError> {
        let url = Url::parse(url)?;

        #[cfg(feature = "fault")]
        let injected = self.fault.as_ref().and_then(|plan| {
            let path = url
                .path_and_query
                .split('?')
                .next()
                .unwrap_or(&url.path_and_query);
            plan.decide(path)
        });
        #[cfg(feature = "fault")]
        if let Some(kind) = injected {
            use crate::fault::FaultKind;
            match kind {
                FaultKind::Latency { ms } => std::thread::sleep(Duration::from_millis(ms)),
                FaultKind::ConnReset => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "injected fault: connection reset",
                    )));
                }
                FaultKind::ServerError { status } => {
                    return Ok(Response::error(Status(status), "injected fault"));
                }
                FaultKind::TruncateBody | FaultKind::CorruptBody => {}
            }
        }

        let stream = TcpStream::connect(&url.authority)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;

        let mut head = format!(
            "{} {} HTTP/1.1\r\nhost: {}\r\nconnection: close\r\ncontent-length: {}\r\n",
            method.as_str(),
            url.path_and_query,
            url.authority,
            body.len()
        );
        if let Some(ct) = content_type {
            head.push_str(&format!("content-type: {ct}\r\n"));
        }
        if let Some(auth) = &self.basic_auth {
            head.push_str(&format!("authorization: {}\r\n", auth.header_value()));
        }
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&body)?;
        writer.flush()?;

        let resp = read_response(BufReader::new(stream))?;

        #[cfg(feature = "fault")]
        let resp = match injected {
            Some(crate::fault::FaultKind::TruncateBody) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "injected fault: truncated body",
                )));
            }
            Some(crate::fault::FaultKind::CorruptBody) => {
                let mut r = resp;
                crate::fault::corrupt_body(&mut r.body);
                r
            }
            _ => resp,
        };

        Ok(resp)
    }
}

fn read_response(mut reader: BufReader<TcpStream>) -> Result<Response, ClientError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::BadResponse(format!(
            "bad status line: {line:?}"
        )));
    }
    let code: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("missing status code".into()))?;

    let mut headers = BTreeMap::new();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(ClientError::BadResponse("eof in headers".into()));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        if let Some((name, value)) = hline.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let body = match headers.get("content-length") {
        Some(cl) => {
            let n: usize = cl
                .parse()
                .map_err(|_| ClientError::BadResponse("bad content-length".into()))?;
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };

    Ok(Response {
        status: Status(code),
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        let u = Url::parse("http://127.0.0.1:9090/api/v1/query?query=up").unwrap();
        assert_eq!(u.authority, "127.0.0.1:9090");
        assert_eq!(u.path_and_query, "/api/v1/query?query=up");

        let u = Url::parse("http://node1").unwrap();
        assert_eq!(u.authority, "node1:80");
        assert_eq!(u.path_and_query, "/");

        assert!(Url::parse("https://secure").is_err());
        assert!(Url::parse("ftp://x").is_err());
        assert!(Url::parse("http://").is_err());
    }
}
