//! Blocking HTTP/1.1 client with pooled keep-alive connections.
//!
//! Requests reuse idle per-host connections from a shared [`Pool`]
//! (clones of a `Client` share one pool, so long-lived components — LB,
//! query frontend, WAL follower, updater, scraper — amortise connection
//! setup across every hop). A pooled connection is revalidated at checkout
//! (age + non-blocking peek) and a request that fails on a *reused*
//! connection is retried once on a fresh one — the reuse race where the
//! server closed the socket just after checkout is indistinguishable from
//! a dead pooled connection, and no response bytes have been committed yet.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use crate::auth::BasicAuth;
use crate::pool::{Pool, PoolStats};
use crate::types::{Method, Response, Status};

/// Client errors.
#[derive(Debug)]
pub enum ClientError {
    /// URL could not be parsed.
    BadUrl(String),
    /// Connection / IO failure.
    Io(std::io::Error),
    /// Response could not be parsed.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadUrl(u) => write!(f, "bad url: {u}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Parsed `http://host:port/path?query` URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Url {
    /// `host:port` authority.
    pub authority: String,
    /// Path plus optional query, starting with `/`.
    pub path_and_query: String,
}

impl Url {
    /// Parses an `http://` URL. `https` is rejected (no TLS substrate).
    pub fn parse(url: &str) -> Result<Url, ClientError> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| ClientError::BadUrl(url.to_string()))?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(ClientError::BadUrl(url.to_string()));
        }
        let authority = if authority.contains(':') {
            authority.to_string()
        } else {
            format!("{authority}:80")
        };
        Ok(Url {
            authority,
            path_and_query: path.to_string(),
        })
    }
}

/// A blocking HTTP client with per-host keep-alive pooling.
#[derive(Clone, Debug, Default)]
pub struct Client {
    basic_auth: Option<BasicAuth>,
    headers: Vec<(String, String)>,
    timeout: Option<Duration>,
    pool: Arc<Pool>,
    #[cfg(feature = "fault")]
    fault: Option<std::sync::Arc<crate::fault::FaultPlan>>,
}

impl Client {
    /// Creates a client with a 10 s default timeout and a keep-alive pool
    /// of [`crate::pool::DEFAULT_POOL_PER_HOST`] idle connections per host.
    pub fn new() -> Client {
        Client {
            basic_auth: None,
            headers: Vec::new(),
            timeout: Some(Duration::from_secs(10)),
            pool: Arc::new(Pool::default()),
            #[cfg(feature = "fault")]
            fault: None,
        }
    }

    /// Attaches basic-auth credentials to every request.
    pub fn with_basic_auth(mut self, auth: BasicAuth) -> Client {
        self.basic_auth = Some(auth);
        self
    }

    /// Attaches a header to every request.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Client {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// Overrides the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = Some(timeout);
        self
    }

    /// Replaces the connection pool with one retaining `n` idle keep-alive
    /// connections per host. `0` disables reuse: every request opens a
    /// fresh connection and sends `connection: close`, the pre-S20
    /// behavior. (The new pool is private to this client and its future
    /// clones; prior clones keep the old one.)
    pub fn with_pool_per_host(mut self, n: usize) -> Client {
        self.pool = Arc::new(Pool::new(n));
        self
    }

    /// Pool reuse/miss/discard counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Idle pooled connections held right now (all hosts).
    pub fn pooled_connections(&self) -> usize {
        self.pool.idle_count()
    }

    /// Injects faults on the client side of every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fn with_fault_plan(mut self, plan: std::sync::Arc<crate::fault::FaultPlan>) -> Client {
        self.fault = Some(plan);
        self
    }

    /// Issues a GET.
    pub fn get(&self, url: &str) -> Result<Response, ClientError> {
        self.request(Method::Get, url, Vec::new(), None)
    }

    /// Issues a GET expecting a streaming (chunked) response and returns it
    /// with the body unread, to be consumed incrementally via
    /// [`StreamingResponse::next_chunk`]. The connection is always fresh
    /// and never pooled: a stream consumes its connection. The client's
    /// timeout bounds each chunk read, so a subscription quiet for longer
    /// than that errors out — raise it via [`Client::with_timeout`] for
    /// long-lived subscriptions.
    pub fn get_stream(&self, url: &str) -> Result<StreamingResponse, ClientError> {
        let url = Url::parse(url)?;
        let stream = TcpStream::connect(&url.authority)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        stream.set_nodelay(true)?;

        let mut head = format!(
            "GET {} HTTP/1.1\r\nhost: {}\r\nconnection: close\r\n",
            url.path_and_query, url.authority,
        );
        if let Some(auth) = &self.basic_auth {
            head.push_str(&format!("authorization: {}\r\n", auth.header_value()));
        }
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        (&stream).write_all(head.as_bytes())?;
        (&stream).flush()?;

        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        let mode = if headers
            .get("transfer-encoding")
            .map(|v| v.eq_ignore_ascii_case("chunked"))
            .unwrap_or(false)
        {
            BodyMode::Chunked
        } else {
            match headers.get("content-length") {
                Some(cl) => BodyMode::Length(
                    cl.parse()
                        .map_err(|_| ClientError::BadResponse("bad content-length".into()))?,
                ),
                None => BodyMode::ToEof,
            }
        };
        Ok(StreamingResponse {
            status,
            headers,
            reader,
            mode,
        })
    }

    /// Issues a POST with a body.
    pub fn post(
        &self,
        url: &str,
        body: Vec<u8>,
        content_type: &str,
    ) -> Result<Response, ClientError> {
        self.request(Method::Post, url, body, Some(content_type))
    }

    /// Issues a DELETE.
    pub fn delete(&self, url: &str) -> Result<Response, ClientError> {
        self.request(Method::Delete, url, Vec::new(), None)
    }

    /// Issues an arbitrary request.
    pub fn request(
        &self,
        method: Method,
        url: &str,
        body: Vec<u8>,
        content_type: Option<&str>,
    ) -> Result<Response, ClientError> {
        let url = Url::parse(url)?;

        #[cfg(feature = "fault")]
        let injected = self.fault.as_ref().and_then(|plan| {
            let path = url
                .path_and_query
                .split('?')
                .next()
                .unwrap_or(&url.path_and_query);
            plan.decide(path)
        });
        #[cfg(feature = "fault")]
        if let Some(kind) = injected {
            use crate::fault::FaultKind;
            match kind {
                FaultKind::Latency { ms } => std::thread::sleep(Duration::from_millis(ms)),
                FaultKind::ConnReset => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "injected fault: connection reset",
                    )));
                }
                FaultKind::ServerError { status } => {
                    return Ok(Response::error(Status(status), "injected fault"));
                }
                FaultKind::TruncateBody | FaultKind::CorruptBody => {}
            }
        }

        // Reused connection first; any failure there retries once on a
        // fresh one (the server may have closed it while idle).
        let resp = match self.pool.checkout(&url.authority) {
            Some(stream) => match self.exchange(stream, method, &url, &body, content_type) {
                Ok(resp) => Ok(resp),
                Err(_stale) => self.exchange_fresh(method, &url, &body, content_type),
            },
            None => self.exchange_fresh(method, &url, &body, content_type),
        }?;

        #[cfg(feature = "fault")]
        let resp = match injected {
            Some(crate::fault::FaultKind::TruncateBody) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "injected fault: truncated body",
                )));
            }
            Some(crate::fault::FaultKind::CorruptBody) => {
                let mut r = resp;
                crate::fault::corrupt_body(&mut r.body);
                r
            }
            _ => resp,
        };

        Ok(resp)
    }

    fn exchange_fresh(
        &self,
        method: Method,
        url: &Url,
        body: &[u8],
        content_type: Option<&str>,
    ) -> Result<Response, ClientError> {
        self.pool.note_fresh();
        let stream = TcpStream::connect(&url.authority)?;
        self.exchange(stream, method, url, body, content_type)
    }

    /// One request/response on one connection; returns the socket to the
    /// pool when the response leaves it cleanly reusable.
    fn exchange(
        &self,
        stream: TcpStream,
        method: Method,
        url: &Url,
        body: &[u8],
        content_type: Option<&str>,
    ) -> Result<Response, ClientError> {
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        stream.set_nodelay(true)?;

        let keep_alive = self.pool.max_per_host() > 0;
        let mut head = format!(
            "{} {} HTTP/1.1\r\nhost: {}\r\nconnection: {}\r\ncontent-length: {}\r\n",
            method.as_str(),
            url.path_and_query,
            url.authority,
            if keep_alive { "keep-alive" } else { "close" },
            body.len()
        );
        if let Some(ct) = content_type {
            head.push_str(&format!("content-type: {ct}\r\n"));
        }
        if let Some(auth) = &self.basic_auth {
            head.push_str(&format!("authorization: {}\r\n", auth.header_value()));
        }
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        (&stream).write_all(head.as_bytes())?;
        (&stream).write_all(body)?;
        (&stream).flush()?;

        let mut reader = BufReader::new(&stream);
        let (resp, framed) = read_response(&mut reader)?;
        let reusable = keep_alive
            && framed
            && reader.buffer().is_empty()
            && resp
                .header("connection")
                .map(|v| !v.eq_ignore_ascii_case("close"))
                .unwrap_or(true);
        drop(reader);
        if reusable {
            self.pool.checkin(&url.authority, stream);
        }
        Ok(resp)
    }
}

/// How a [`StreamingResponse`] body is framed.
enum BodyMode {
    /// `transfer-encoding: chunked`; decoded incrementally.
    Chunked,
    /// `content-length` remaining; delivered as one chunk.
    Length(usize),
    /// Unframed; read to EOF as one chunk.
    ToEof,
    /// Fully consumed.
    Done,
}

/// A response whose body is consumed incrementally — the read side of a
/// long-lived chunked stream (live query subscriptions, bus subscribes).
pub struct StreamingResponse {
    /// Status code.
    pub status: Status,
    /// Lower-cased header names to values.
    pub headers: BTreeMap<String, String>,
    reader: BufReader<TcpStream>,
    mode: BodyMode,
}

impl StreamingResponse {
    /// Gets a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Reads the next body chunk, blocking until one arrives (bounded by
    /// the client's timeout). `Ok(None)` is the clean end of the stream.
    /// Non-chunked bodies (an error response shed with `content-length`,
    /// say) come back as a single chunk followed by `None`.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, ClientError> {
        match self.mode {
            BodyMode::Done => Ok(None),
            BodyMode::Chunked => {
                let mut line = String::new();
                if self.reader.read_line(&mut line)? == 0 {
                    return Err(ClientError::BadResponse("eof mid-stream".into()));
                }
                let size_str = line.trim().split(';').next().unwrap_or("").trim();
                let size = usize::from_str_radix(size_str, 16)
                    .map_err(|_| ClientError::BadResponse(format!("bad chunk size {line:?}")))?;
                if size == 0 {
                    // Terminating chunk; consume the trailing CRLF.
                    let mut end = String::new();
                    let _ = self.reader.read_line(&mut end);
                    self.mode = BodyMode::Done;
                    return Ok(None);
                }
                let mut buf = vec![0u8; size];
                self.reader.read_exact(&mut buf)?;
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf)?;
                Ok(Some(buf))
            }
            BodyMode::Length(n) => {
                let mut buf = vec![0u8; n];
                self.reader.read_exact(&mut buf)?;
                self.mode = BodyMode::Done;
                Ok(Some(buf))
            }
            BodyMode::ToEof => {
                let mut buf = Vec::new();
                self.reader.read_to_end(&mut buf)?;
                self.mode = BodyMode::Done;
                Ok(if buf.is_empty() { None } else { Some(buf) })
            }
        }
    }

    /// Overrides the per-chunk read deadline (e.g. a live subscription
    /// expecting minutes of quiet between deltas).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }
}

/// Reads a status line + headers off a response.
fn read_head<R: BufRead>(
    reader: &mut R,
) -> Result<(Status, BTreeMap<String, String>), ClientError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::BadResponse(format!(
            "bad status line: {line:?}"
        )));
    }
    let code: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("missing status code".into()))?;

    let mut headers = BTreeMap::new();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(ClientError::BadResponse("eof in headers".into()));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        if let Some((name, value)) = hline.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((Status(code), headers))
}

/// Reads one response. The `bool` is true when the body was framed by
/// `content-length` (a read-to-EOF body consumes the connection).
fn read_response<R: BufRead>(reader: &mut R) -> Result<(Response, bool), ClientError> {
    let (status, headers) = read_head(reader)?;

    let (body, framed) = match headers.get("content-length") {
        Some(cl) => {
            let n: usize = cl
                .parse()
                .map_err(|_| ClientError::BadResponse("bad content-length".into()))?;
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            (buf, true)
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            (buf, false)
        }
    };

    Ok((
        Response {
            status,
            headers,
            body,
            stream: None,
        },
        framed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        let u = Url::parse("http://127.0.0.1:9090/api/v1/query?query=up").unwrap();
        assert_eq!(u.authority, "127.0.0.1:9090");
        assert_eq!(u.path_and_query, "/api/v1/query?query=up");

        let u = Url::parse("http://node1").unwrap();
        assert_eq!(u.authority, "node1:80");
        assert_eq!(u.path_and_query, "/");

        assert!(Url::parse("https://secure").is_err());
        assert!(Url::parse("ftp://x").is_err());
        assert!(Url::parse("http://").is_err());
    }

    #[test]
    fn clones_share_one_pool() {
        let a = Client::new();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.pool, &b.pool));
        let c = a.clone().with_pool_per_host(2);
        assert!(!Arc::ptr_eq(&a.pool, &c.pool));
        assert_eq!(c.pool.max_per_host(), 2);
    }
}
