//! Deterministic, seedable HTTP fault injection (chaos layer).
//!
//! A [`FaultPlan`] sits at the client and/or server boundary and decides,
//! per request, whether to inject a fault: added latency, a dropped
//! connection, a synthesized 5xx, a truncated body or a corrupted body.
//! Decisions are a **pure hash** of `(seed, endpoint, per-endpoint request
//! index, rule index)` — no wall clock, no global RNG — so a serially
//! driven harness observes the *same fault trace* for the same seed, which
//! `tests/chaos_soak.rs` asserts.
//!
//! The whole module is compiled only with the non-default `fault` cargo
//! feature; production builds of the hot path (`cargo build --release
//! --no-default-features` at the workspace root) carry zero fault-injection
//! code.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::resilience::{fnv1a, splitmix64};

/// Environment variable holding a fault spec (see [`FaultPlan::parse_spec`]).
pub const FAULT_ENV: &str = "CEEMS_FAULT";

/// What to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long before handling the request.
    Latency {
        /// Added delay in milliseconds.
        ms: u64,
    },
    /// Drop the connection without a response (client sees a reset/EOF).
    ConnReset,
    /// Skip the handler and answer with this 5xx status.
    ServerError {
        /// Status code to synthesize (e.g. 500, 502, 503).
        status: u16,
    },
    /// Send the response head but cut the body short mid-write.
    TruncateBody,
    /// Flip bytes in the response body, keeping its length.
    CorruptBody,
}

impl FaultKind {
    /// Stable label used in traces and metrics.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Latency { .. } => "latency",
            FaultKind::ConnReset => "reset",
            FaultKind::ServerError { .. } => "5xx",
            FaultKind::TruncateBody => "truncate",
            FaultKind::CorruptBody => "corrupt",
        }
    }
}

/// One match rule: which endpoints, which fault, how often, and an optional
/// per-endpoint request-index window.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Substring match on the request path (`*` or empty matches all).
    pub endpoint: String,
    /// Fault to inject when the rule fires.
    pub kind: FaultKind,
    /// Firing probability in `[0, 1]`.
    pub probability: f64,
    /// Fires only when the per-endpoint request index is `>= after`.
    pub after: u64,
    /// Fires only when the per-endpoint request index is `< until`.
    pub until: u64,
}

impl FaultRule {
    /// Rule matching `endpoint` with `probability`, active for all requests.
    pub fn new(endpoint: &str, kind: FaultKind, probability: f64) -> FaultRule {
        FaultRule {
            endpoint: endpoint.to_string(),
            kind,
            probability: probability.clamp(0.0, 1.0),
            after: 0,
            until: u64::MAX,
        }
    }

    /// Restricts the rule to per-endpoint request indices `[after, until)`.
    /// A bounded window is how chaos schedules "end": once every endpoint's
    /// index passes `until`, the plan goes quiet and the stack must converge.
    pub fn between(mut self, after: u64, until: u64) -> FaultRule {
        self.after = after;
        self.until = until;
        self
    }

    fn matches(&self, path: &str, seq: u64) -> bool {
        if seq < self.after || seq >= self.until {
            return false;
        }
        self.endpoint.is_empty() || self.endpoint == "*" || path.contains(&self.endpoint)
    }
}

/// One injected fault, recorded for determinism assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Request path the fault fired on.
    pub path: String,
    /// Per-endpoint request index.
    pub seq: u64,
    /// [`FaultKind::label`] of the injected fault.
    pub kind: &'static str,
}

/// A seeded fault schedule shared by reference between clients/servers.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    seqs: Mutex<BTreeMap<String, u64>>,
    trace: Mutex<Vec<FaultEvent>>,
    injected: AtomicU64,
    decisions: AtomicU64,
}

impl FaultPlan {
    /// Empty plan with a seed; add rules with [`FaultPlan::with_rule`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Builds a plan from [`FAULT_ENV`] if set and non-empty.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var(FAULT_ENV).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        FaultPlan::parse_spec(&spec).ok()
    }

    /// Parses a compact spec string:
    ///
    /// ```text
    /// seed=7;latency:*:0.1:40;5xx:/api/v1/query:0.05:503;reset:*:0.02;
    /// truncate:/api/v1/query_range:0.02;corrupt:*:0.01:0:0..200
    /// ```
    ///
    /// Entries are `;`-separated. `seed=N` sets the seed (default 0). Rule
    /// entries are `kind:endpoint:probability[:param][:after..until]` where
    /// `param` is milliseconds for `latency` and a status code for `5xx`.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed in {entry:?}"))?;
                continue;
            }
            let fields: Vec<&str> = entry.split(':').collect();
            if fields.len() < 3 {
                return Err(format!(
                    "rule {entry:?} needs kind:endpoint:probability"
                ));
            }
            let endpoint = fields[1];
            let probability: f64 = fields[2]
                .parse()
                .map_err(|_| format!("bad probability in {entry:?}"))?;
            let param = fields.get(3).copied();
            let window = fields.get(4).copied();
            let parse_param = |default: u64| -> Result<u64, String> {
                match param {
                    None | Some("") => Ok(default),
                    Some(p) => p.parse().map_err(|_| format!("bad param in {entry:?}")),
                }
            };
            let kind = match fields[0] {
                "latency" => FaultKind::Latency {
                    ms: parse_param(20)?,
                },
                "reset" => FaultKind::ConnReset,
                "5xx" => FaultKind::ServerError {
                    status: parse_param(503)? as u16,
                },
                "truncate" => FaultKind::TruncateBody,
                "corrupt" => FaultKind::CorruptBody,
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            let mut rule = FaultRule::new(endpoint, kind, probability);
            if let Some(w) = window {
                let (a, b) = w
                    .split_once("..")
                    .ok_or_else(|| format!("bad window in {entry:?}"))?;
                let after = a.parse().map_err(|_| format!("bad window in {entry:?}"))?;
                let until = if b.is_empty() {
                    u64::MAX
                } else {
                    b.parse().map_err(|_| format!("bad window in {entry:?}"))?
                };
                rule = rule.between(after, until);
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides whether the next request to `path` gets a fault. Advances the
    /// per-endpoint request index; the first matching rule whose hash draw
    /// lands under its probability wins.
    pub fn decide(&self, path: &str) -> Option<FaultKind> {
        let seq = {
            let mut seqs = self.seqs.lock();
            let e = seqs.entry(path.to_string()).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        self.decisions.fetch_add(1, Ordering::Relaxed);
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.matches(path, seq) {
                continue;
            }
            let mut x = self.seed ^ fnv1a(path.as_bytes());
            x = splitmix64(x ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            x = splitmix64(x ^ i as u64);
            let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
            if draw < rule.probability {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.trace.lock().push(FaultEvent {
                    path: path.to_string(),
                    seq,
                    kind: rule.kind.label(),
                });
                return Some(rule.kind);
            }
        }
        None
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total decisions taken (requests seen).
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Snapshot of every injected fault, in decision order.
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.trace.lock().clone()
    }

    /// Wraps the plan for sharing between a client and a server config.
    pub fn shared(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }
}

/// Deterministically mangles a body in place, preserving its length (XORs
/// every 7th byte with 0x5A — the leading `{`/`[` of a JSON payload is
/// always hit, so corrupted bodies reliably fail to parse).
pub fn corrupt_body(body: &mut [u8]) {
    for (i, b) in body.iter_mut().enumerate() {
        if i % 7 == 0 {
            *b ^= 0x5A;
        }
    }
}

/// Byte count to keep when truncating a body mid-write.
pub fn truncated_len(len: usize) -> usize {
    len / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let mk = || {
            FaultPlan::new(99)
                .with_rule(FaultRule::new("/api/v1/query", FaultKind::ConnReset, 0.3))
                .with_rule(FaultRule::new(
                    "*",
                    FaultKind::Latency { ms: 5 },
                    0.2,
                ))
        };
        let a = mk();
        let b = mk();
        let paths = ["/api/v1/query", "/api/v1/query_range", "/metrics"];
        for round in 0..200 {
            let p = paths[round % paths.len()];
            assert_eq!(a.decide(p), b.decide(p), "round {round}");
        }
        assert_eq!(a.trace(), b.trace());
        assert!(a.injected() > 0, "expected some injected faults");
        assert!(
            a.injected() < a.decisions(),
            "not every request should fault"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with_rule(FaultRule::new("*", FaultKind::ConnReset, 0.5));
        let b = FaultPlan::new(2).with_rule(FaultRule::new("*", FaultKind::ConnReset, 0.5));
        let mut diff = false;
        for _ in 0..64 {
            if a.decide("/x") != b.decide("/x") {
                diff = true;
            }
        }
        assert!(diff);
    }

    #[test]
    fn window_bounds_the_schedule() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultRule::new("*", FaultKind::ConnReset, 1.0).between(2, 4));
        let got: Vec<bool> = (0..6).map(|_| plan.decide("/p").is_some()).collect();
        assert_eq!(got, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn zero_probability_never_fires_one_always_fires() {
        let never = FaultPlan::new(4).with_rule(FaultRule::new("*", FaultKind::ConnReset, 0.0));
        let always = FaultPlan::new(4).with_rule(FaultRule::new("*", FaultKind::ConnReset, 1.0));
        for _ in 0..50 {
            assert_eq!(never.decide("/p"), None);
            assert_eq!(always.decide("/p"), Some(FaultKind::ConnReset));
        }
    }

    #[test]
    fn endpoint_matching_is_substring() {
        let plan = FaultPlan::new(5)
            .with_rule(FaultRule::new("/api/v1/query", FaultKind::ConnReset, 1.0));
        assert!(plan.decide("/api/v1/query_range").is_some());
        assert!(plan.decide("/metrics").is_none());
    }

    #[test]
    fn spec_roundtrip() {
        let plan = FaultPlan::parse_spec(
            "seed=7;latency:*:0.1:40;5xx:/api/v1/query:0.05:503;reset:*:0.02;corrupt:*:0.01::0..200",
        )
        .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Latency { ms: 40 });
        assert_eq!(plan.rules[1].kind, FaultKind::ServerError { status: 503 });
        assert_eq!(plan.rules[3].until, 200);
        assert!(FaultPlan::parse_spec("bogus").is_err());
        assert!(FaultPlan::parse_spec("warp:*:0.1").is_err());
        assert!(FaultPlan::parse_spec("latency:*:nan-ish-not-a-number-x").is_err());
    }

    #[test]
    fn corruption_changes_bytes_but_not_length() {
        let mut body = br#"{"status":"success","data":[1,2,3]}"#.to_vec();
        let orig = body.clone();
        corrupt_body(&mut body);
        assert_eq!(body.len(), orig.len());
        assert_ne!(body, orig);
    }
}
