#![warn(missing_docs)]
//! Event-driven HTTP/1.1 substrate for CEEMS (S5 + S20 in `DESIGN.md`).
//!
//! The Go CEEMS stack leans on `net/http`; this crate provides the subset
//! the stack needs, built on `std::net` plus a hand-rolled epoll reactor
//! (raw syscalls, no external async runtime):
//!
//! * [`types`] — request/response representations and status codes.
//! * [`url`] — percent-coding and query-string parsing.
//! * [`auth`] — HTTP Basic authentication (with an in-repo base64 codec).
//! * [`router`] — path routing with `:param` captures.
//! * [`server`] — a keep-alive HTTP/1.1 server: a fixed set of epoll
//!   reactor threads multiplexes every connection (edge-triggered,
//!   non-blocking, write backpressure, idle timeouts), while handlers run
//!   on a bounded worker pool, so thread count stays constant no matter
//!   how many sockets are open.
//! * [`sys`] — the raw Linux FFI the reactor stands on (`epoll`,
//!   `eventfd`, listener backlog, `RLIMIT_NOFILE`).
//! * [`stream`] — streaming response bodies over chunked transfer-encoding
//!   (live query subscriptions and the S23 sample bus hold responses open
//!   through these).
//! * [`client`] — a blocking HTTP/1.1 client used by the scraper, the API
//!   server and the load balancer.
//! * [`pool`] — the client's bounded per-host keep-alive connection pool
//!   with stale-connection revalidation.
//! * [`resilience`] — seeded backoff with full jitter, retry policies and
//!   budgets, and a half-open circuit breaker shared by every hop.
//! * `fault` (behind the non-default `fault` cargo feature) — deterministic
//!   fault injection at the client and server boundary.
//!
//! TLS is intentionally out of scope (see the substitution table in
//! `DESIGN.md`); all the auth-sensitive paths go through [`auth`] instead.

pub mod auth;
pub mod client;
#[cfg(feature = "fault")]
pub mod fault;
pub mod pool;
mod reactor;
pub mod resilience;
pub mod router;
pub mod server;
pub mod stream;
pub mod sys;
pub mod types;
pub mod url;

pub use client::{Client, ClientError, StreamingResponse};
pub use resilience::{BreakerConfig, BreakerState, CircuitBreaker, RetryBudget, RetryPolicy};
pub use router::Router;
pub use server::{HttpServer, ServerConfig};
pub use stream::{stream_pair, BodyStream, StreamWriter};
pub use types::{Method, Request, Response, Status};
