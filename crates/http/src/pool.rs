//! Client-side keep-alive connection pool (S20).
//!
//! Every [`crate::Client`] owns (and its clones share) a per-host pool of
//! idle keep-alive connections. A checkout revalidates the socket before
//! reuse — age against the idle TTL, then a non-blocking peek: a pooled
//! connection with pending bytes or EOF was closed (or corrupted) by the
//! server and is discarded instead of carrying a request. The pool is
//! bounded per host; overflow check-ins just close the socket.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Idle connections a pool retains per `host:port` authority.
pub const DEFAULT_POOL_PER_HOST: usize = 8;

/// How long an idle pooled connection stays eligible for reuse. Kept well
/// under the server's default 60 s `idle_timeout` so most checkouts don't
/// race the server-side reaper (the peek-revalidation catches those that
/// do).
pub const DEFAULT_IDLE_TTL: Duration = Duration::from_secs(30);

struct Idle {
    stream: TcpStream,
    since: Instant,
}

/// Reuse/miss/discard counters, for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts satisfied by a pooled connection.
    pub reused: u64,
    /// Checkouts that had to open a fresh connection.
    pub fresh: u64,
    /// Pooled connections discarded at checkout (stale, EOF, stray bytes).
    pub discarded: u64,
}

/// A per-host pool of idle keep-alive connections.
pub struct Pool {
    max_per_host: usize,
    idle_ttl: Duration,
    idle: Mutex<HashMap<String, Vec<Idle>>>,
    reused: AtomicU64,
    fresh: AtomicU64,
    discarded: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("max_per_host", &self.max_per_host)
            .field("idle_ttl", &self.idle_ttl)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(DEFAULT_POOL_PER_HOST)
    }
}

impl Pool {
    /// Creates a pool retaining up to `max_per_host` idle connections per
    /// authority. `0` disables pooling entirely (every checkout misses,
    /// every check-in closes).
    pub fn new(max_per_host: usize) -> Pool {
        Pool {
            max_per_host,
            idle_ttl: DEFAULT_IDLE_TTL,
            idle: Mutex::new(HashMap::new()),
            reused: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// The per-host bound.
    pub fn max_per_host(&self) -> usize {
        self.max_per_host
    }

    /// Pops a validated idle connection for `authority`, newest first
    /// (LIFO keeps the working set warm and lets the tail age out).
    pub fn checkout(&self, authority: &str) -> Option<TcpStream> {
        loop {
            let idle = {
                let mut map = self.idle.lock();
                let list = map.get_mut(authority)?;
                let idle = list.pop();
                if list.is_empty() {
                    map.remove(authority);
                }
                idle?
            };
            if idle.since.elapsed() <= self.idle_ttl && revalidate(&idle.stream) {
                self.reused.fetch_add(1, Ordering::Relaxed);
                return Some(idle.stream);
            }
            self.discarded.fetch_add(1, Ordering::Relaxed);
            // Stale or dead: drop it and try the next one.
        }
    }

    /// Returns a connection after a fully-framed response. Drops it when
    /// the per-host bound is reached.
    pub fn checkin(&self, authority: &str, stream: TcpStream) {
        if self.max_per_host == 0 {
            return;
        }
        let mut map = self.idle.lock();
        let list = map.entry(authority.to_string()).or_default();
        if list.len() < self.max_per_host {
            list.push(Idle {
                stream,
                since: Instant::now(),
            });
        }
    }

    /// Records a checkout that went to a fresh connection.
    pub fn note_fresh(&self) {
        self.fresh.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle connections currently pooled (all hosts).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.reused.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

/// True when the idle socket is still usable: a non-blocking peek must see
/// *nothing* — readable zero bytes is EOF, readable data is protocol junk
/// from a connection that carried no outstanding request.
fn revalidate(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let alive = matches!(
        stream.peek(&mut probe),
        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
    );
    alive && stream.set_nonblocking(false).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn checkout_returns_checked_in_connection() {
        let pool = Pool::new(4);
        let (a, _b) = pair();
        pool.checkin("h:1", a);
        assert_eq!(pool.idle_count(), 1);
        assert!(pool.checkout("h:1").is_some());
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn per_host_bound_enforced() {
        let pool = Pool::new(2);
        let mut keep = Vec::new();
        for _ in 0..4 {
            let (a, b) = pair();
            keep.push(b);
            pool.checkin("h:1", a);
        }
        assert_eq!(pool.idle_count(), 2, "overflow check-ins dropped");
    }

    #[test]
    fn zero_sized_pool_disables_pooling() {
        let pool = Pool::new(0);
        let (a, _b) = pair();
        pool.checkin("h:1", a);
        assert_eq!(pool.idle_count(), 0);
        assert!(pool.checkout("h:1").is_none());
    }

    #[test]
    fn dead_connection_discarded_at_checkout() {
        let pool = Pool::new(4);
        let (a, b) = pair();
        pool.checkin("h:1", a);
        drop(b); // server closed while idle
        std::thread::sleep(Duration::from_millis(20));
        assert!(pool.checkout("h:1").is_none());
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn connection_with_stray_bytes_discarded() {
        let pool = Pool::new(4);
        let (a, mut b) = pair();
        pool.checkin("h:1", a);
        b.write_all(b"garbage").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert!(pool.checkout("h:1").is_none());
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn hosts_are_isolated() {
        let pool = Pool::new(4);
        let (a, _b1) = pair();
        pool.checkin("h:1", a);
        assert!(pool.checkout("other:2").is_none());
        assert!(pool.checkout("h:1").is_some());
    }
}
