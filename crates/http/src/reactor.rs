//! The epoll reactor behind [`crate::server::HttpServer`] (S20).
//!
//! Thread model: one blocking acceptor distributes accepted sockets
//! round-robin over `reactor_threads` event loops; each reactor owns its
//! connections outright (no cross-reactor locking on the hot path) and
//! drives them through a non-blocking per-connection state machine —
//! incremental HTTP/1.1 parsing, pipelined keep-alive, write backpressure
//! via `EPOLLOUT`, idle/slowloris timeouts. Handlers may block (the LB
//! proxies synchronously, the qfe queues under its scheduler), so parsed
//! requests are executed on a fixed pool of `workers` handler threads and
//! the finished responses posted back to the owning reactor through a
//! completion queue + eventfd wake-up. Thread count is fixed at
//! `1 + reactor_threads + workers` regardless of connection count.
//!
//! Correctness guards: a per-connection generation stamps every job so a
//! completion for a closed (and fd-reused) connection is dropped instead of
//! answering the wrong peer; a `max_connections` gate sheds accepts before
//! fd exhaustion; shutdown drains in-flight requests (bounded by
//! [`DRAIN_DEADLINE`]) before closing.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::server::ServerConfig;
use crate::sys::{self, Epoll, EventFd};
use crate::types::{Method, Request, Response, Status};
use crate::url::{decode_component, parse_query};

/// How long shutdown waits for in-flight requests and unflushed responses
/// before force-closing what remains.
pub(crate) const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Cap on buffered request head bytes (request line + headers).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// Cap on unflushed outbound bytes of a streaming connection before the
/// consumer is shed (closed) instead of buffering further (S23). Matches
/// the writer-side queue cap in [`crate::stream`].
const STREAM_OUT_CAP: usize = 4 << 20;

/// Epoll token reserved for the reactor's wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// A parsed request handed to the worker pool.
pub(crate) struct Job {
    reactor: usize,
    fd: RawFd,
    gen: u64,
    req: Request,
}

/// What the worker decided; applied to the connection by its reactor.
enum Action {
    /// Write this response; keep or close per `keep_alive`.
    Respond { resp: Response, keep_alive: bool },
    /// Drop the connection without a byte (injected connection reset).
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    Close,
    /// Write a head advertising the full body length but cut the body
    /// short and close (injected truncation).
    #[cfg(feature = "fault")]
    Truncate { resp: Response },
}

struct Completion {
    fd: RawFd,
    gen: u64,
    action: Action,
}

/// The cross-thread face of one reactor: the acceptor pushes new sockets
/// into `inbox`, workers push finished responses into `completions`, and
/// both ring `wake` to pop the reactor out of `epoll_wait`.
pub(crate) struct ReactorShared {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl ReactorShared {
    pub(crate) fn new() -> std::io::Result<Arc<ReactorShared>> {
        Ok(Arc::new(ReactorShared {
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        }))
    }

    /// Hands a freshly accepted socket to this reactor.
    pub(crate) fn adopt(&self, stream: TcpStream) {
        self.inbox.lock().push(stream);
        self.wake.notify();
    }

    /// Wakes the reactor with nothing queued (used at shutdown).
    pub(crate) fn kick(&self) {
        self.wake.notify();
    }
}

enum ConnState {
    /// Reading / waiting for request bytes.
    Idle,
    /// A request is running on a worker; `gen` guards the completion.
    Busy,
    /// A chunked streaming response is open (S23): the reactor drains the
    /// connection's [`crate::stream::BodyStream`] until the producer closes
    /// it, then closes the connection.
    Streaming,
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    state: ConnState,
    /// Unparsed inbound bytes.
    buf: Vec<u8>,
    /// How far `buf` has been scanned for the head terminator.
    scanned: usize,
    /// Outbound bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    /// `EPOLLOUT` currently armed.
    want_write: bool,
    /// Close once `out` drains.
    close_after_flush: bool,
    /// Read side saw EOF; serve what is buffered, then close.
    peer_closed: bool,
    /// Requests dispatched on this connection.
    served: usize,
    /// Last byte of progress in either direction.
    last_activity: Instant,
    /// When the first byte of the current partial request arrived; bounds
    /// total header+body receive time (slowloris guard).
    req_started: Option<Instant>,
    /// The open streaming body while in [`ConnState::Streaming`].
    body_stream: Option<crate::stream::BodyStream>,
}

impl Conn {
    fn interest(&self) -> u32 {
        let mut m = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET;
        if self.want_write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One event loop.
pub(crate) struct Reactor {
    idx: usize,
    epoll: Epoll,
    shared: Arc<ReactorShared>,
    config: Arc<ServerConfig>,
    jobs: Sender<Job>,
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    conns: HashMap<RawFd, Conn>,
    next_gen: u64,
    drain_deadline: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        idx: usize,
        shared: Arc<ReactorShared>,
        config: Arc<ServerConfig>,
        jobs: Sender<Job>,
        active: Arc<AtomicUsize>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(shared.wake.fd(), sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(Reactor {
            idx,
            epoll,
            shared,
            config,
            jobs,
            active,
            stop,
            conns: HashMap::new(),
            next_gen: 0,
            drain_deadline: None,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = [sys::epoll_event { events: 0, u64: 0 }; 256];
        loop {
            let n = self.epoll.wait(&mut events, 100).unwrap_or_default();
            for ev in events.iter().take(n) {
                if ev.u64 == WAKE_TOKEN {
                    self.shared.wake.drain();
                    continue;
                }
                let fd = ev.u64 as RawFd;
                let bits = ev.events;
                if bits & sys::EPOLLERR != 0 {
                    self.close(fd);
                    continue;
                }
                if bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
                    self.readable(fd);
                }
                if bits & sys::EPOLLOUT != 0 {
                    self.writable(fd);
                }
            }
            self.drain_inbox();
            self.drain_completions();
            self.pump_streams();
            self.sweep_timeouts();
            if self.stop.load(Ordering::Relaxed) && self.drain_for_stop() {
                break;
            }
        }
        // Force-close what remains (drain deadline expired or all drained).
        let fds: Vec<RawFd> = self.conns.keys().copied().collect();
        for fd in fds {
            self.close(fd);
        }
    }

    /// At stop: closes idle connections immediately, keeps busy/flushing
    /// ones until they finish or the drain deadline expires. Returns true
    /// when the loop should exit.
    fn drain_for_stop(&mut self) -> bool {
        let deadline = *self
            .drain_deadline
            .get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
        let idle: Vec<RawFd> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                // Streams are unbounded; shutdown aborts them immediately
                // (the producer sees the abort) instead of waiting them out.
                matches!(c.state, ConnState::Streaming)
                    || (matches!(c.state, ConnState::Idle) && c.out_pos >= c.out.len())
            })
            .map(|(fd, _)| *fd)
            .collect();
        for fd in idle {
            self.close(fd);
        }
        self.conns.is_empty() || Instant::now() >= deadline
    }

    fn drain_inbox(&mut self) {
        loop {
            let Some(stream) = self.shared.inbox.lock().pop() else {
                break;
            };
            if self.stop.load(Ordering::Relaxed) {
                self.active.fetch_sub(1, Ordering::Relaxed);
                continue; // dropped: shutting down
            }
            let fd = stream.as_raw_fd();
            self.next_gen += 1;
            let conn = Conn {
                stream,
                gen: self.next_gen,
                state: ConnState::Idle,
                buf: Vec::new(),
                scanned: 0,
                out: Vec::new(),
                out_pos: 0,
                want_write: false,
                close_after_flush: false,
                peer_closed: false,
                served: 0,
                last_activity: Instant::now(),
                req_started: None,
                body_stream: None,
            };
            if self.epoll.add(fd, conn.interest(), fd as u64).is_err() {
                self.active.fetch_sub(1, Ordering::Relaxed);
                continue; // stream drops, fd closes
            }
            self.conns.insert(fd, conn);
            // A pipelined client may have sent bytes before registration;
            // edge-triggered epoll would stay silent about them.
            self.readable(fd);
        }
    }

    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock());
        for c in batch {
            let Some(conn) = self.conns.get_mut(&c.fd) else {
                continue;
            };
            if conn.gen != c.gen {
                continue; // connection closed and fd reused since dispatch
            }
            match c.action {
                Action::Respond { resp, keep_alive } => {
                    if let Some(body) = resp.stream.clone() {
                        // Streaming response: chunked head now, body drained
                        // by pump_stream until the producer closes. The
                        // connection always closes at stream end, so
                        // keep_alive is moot.
                        serialize_stream_head(&mut conn.out, &resp);
                        conn.state = ConnState::Streaming;
                        conn.last_activity = Instant::now();
                        let shared = self.shared.clone();
                        body.set_waker(Arc::new(move || shared.kick()));
                        conn.body_stream = Some(body);
                        self.flush_and_continue(c.fd);
                        self.pump_stream(c.fd);
                    } else {
                        serialize_response(&mut conn.out, &resp, keep_alive);
                        conn.state = ConnState::Idle;
                        conn.last_activity = Instant::now();
                        if !keep_alive || conn.served >= self.config.max_requests_per_conn {
                            conn.close_after_flush = true;
                        }
                        self.flush_and_continue(c.fd);
                    }
                }
                Action::Close => {
                    self.close(c.fd);
                }
                #[cfg(feature = "fault")]
                Action::Truncate { resp } => {
                    serialize_truncated(&mut conn.out, &resp);
                    conn.state = ConnState::Idle;
                    conn.close_after_flush = true;
                    self.flush_and_continue(c.fd);
                }
            }
        }
    }

    /// Drains every open streaming body into its connection. Runs each loop
    /// pass: a writer's `send` kicks the eventfd for immediacy, and the
    /// 100 ms epoll timeout bounds latency even without a waker.
    fn pump_streams(&mut self) {
        let fds: Vec<RawFd> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Streaming))
            .map(|(fd, _)| *fd)
            .collect();
        for fd in fds {
            self.pump_stream(fd);
        }
    }

    /// Moves queued chunks of one streaming connection into its outbound
    /// buffer (chunk-encoded) and flushes. Sheds the consumer when the
    /// unflushed backlog passes [`STREAM_OUT_CAP`]; ends the connection with
    /// the terminating chunk once the producer closes.
    fn pump_stream(&mut self, fd: RawFd) {
        let Some(conn) = self.conns.get_mut(&fd) else {
            return;
        };
        if !matches!(conn.state, ConnState::Streaming) {
            return;
        }
        let Some(stream) = conn.body_stream.clone() else {
            self.close(fd);
            return;
        };
        if conn.out.len() - conn.out_pos > STREAM_OUT_CAP {
            // Consumer can't keep up with the producer: shed it.
            self.close(fd);
            return;
        }
        let (chunks, closed) = stream.take_chunks();
        for chunk in &chunks {
            if !chunk.is_empty() {
                encode_chunk(&mut conn.out, chunk);
            }
        }
        if closed {
            conn.out.extend_from_slice(b"0\r\n\r\n");
            conn.state = ConnState::Idle;
            conn.close_after_flush = true;
            conn.body_stream = None;
        }
        if !chunks.is_empty() || closed {
            conn.last_activity = Instant::now();
            self.flush_and_continue(fd);
        }
    }

    fn readable(&mut self, fd: RawFd) {
        let Some(conn) = self.conns.get_mut(&fd) else {
            return;
        };
        let mut chunk = [0u8; 16 << 10];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    // Don't buffer unboundedly ahead of parsing: the cap is
                    // one head + one max body + one read chunk.
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if conn.req_started.is_none() {
                        conn.req_started = Some(conn.last_activity);
                    }
                    if conn.buf.len() > MAX_HEAD_BYTES + self.config.max_body_bytes + chunk.len() {
                        self.close(fd);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(fd);
                    return;
                }
            }
        }
        self.try_dispatch(fd);
        if let Some(conn) = self.conns.get_mut(&fd) {
            // A subscriber that closed its read side is done consuming the
            // stream; tear the connection down so the producer sees it.
            if conn.peer_closed && matches!(conn.state, ConnState::Streaming) {
                self.close(fd);
                return;
            }
        }
        if let Some(conn) = self.conns.get_mut(&fd) {
            // EOF with nothing runnable: a clean close or an abandoned
            // partial request — either way the conversation is over.
            if conn.peer_closed
                && matches!(conn.state, ConnState::Idle)
                && conn.out_pos >= conn.out.len()
                && !conn.close_after_flush
            {
                self.close(fd);
            }
        }
    }

    fn writable(&mut self, fd: RawFd) {
        self.flush_and_continue(fd);
    }

    /// Pushes pending output to the kernel; arms/disarms `EPOLLOUT`; closes
    /// or parses the next pipelined request when the buffer drains.
    fn flush_and_continue(&mut self, fd: RawFd) {
        let Some(conn) = self.conns.get_mut(&fd) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(fd);
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let interest = conn.interest();
                        if self.epoll.modify(fd, interest, fd as u64).is_err() {
                            self.close(fd);
                        }
                    }
                    return; // backpressure: wait for EPOLLOUT
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(fd);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.want_write {
            conn.want_write = false;
            let interest = conn.interest();
            if self.epoll.modify(fd, interest, fd as u64).is_err() {
                self.close(fd);
                return;
            }
        }
        if conn.close_after_flush {
            self.close(fd);
            return;
        }
        self.try_dispatch(fd);
        if let Some(conn) = self.conns.get(&fd) {
            if conn.peer_closed
                && matches!(conn.state, ConnState::Idle)
                && conn.out_pos >= conn.out.len()
                && !conn.close_after_flush
            {
                self.close(fd);
            }
        }
    }

    /// Parses and dispatches the next buffered request, if the connection
    /// is idle and one is complete. Malformed input queues a 400 and a
    /// close, mirroring the blocking server's behavior.
    fn try_dispatch(&mut self, fd: RawFd) {
        let Some(conn) = self.conns.get_mut(&fd) else {
            return;
        };
        if !matches!(conn.state, ConnState::Idle) || conn.close_after_flush {
            return;
        }
        match parse_request(&mut conn.buf, &mut conn.scanned, self.config.max_body_bytes) {
            Parse::Incomplete => {
                if conn.buf.is_empty() {
                    conn.req_started = None;
                }
            }
            Parse::Bad(msg) => {
                let resp = Response::error(Status::BAD_REQUEST, format!("bad request: {msg}"));
                serialize_response(&mut conn.out, &resp, false);
                conn.close_after_flush = true;
                self.flush_and_continue(fd);
            }
            Parse::Done(req) => {
                conn.served += 1;
                conn.state = ConnState::Busy;
                conn.req_started = None;
                conn.last_activity = Instant::now();
                let job = Job {
                    reactor: self.idx,
                    fd,
                    gen: conn.gen,
                    req,
                };
                if self.jobs.send(job).is_err() {
                    self.close(fd);
                }
            }
        }
    }

    /// Closes idle connections past `idle_timeout` and kills requests whose
    /// bytes have been trickling in for longer than `read_timeout` total
    /// (slowloris) or whose response write has stalled.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let idle = self.config.idle_timeout;
        let read = self.config.read_timeout;
        let expired: Vec<RawFd> = self
            .conns
            .iter()
            .filter(|(_, c)| match c.state {
                ConnState::Busy => false, // handler running; not the conn's fault
                // A quiet stream is legitimate (live queries idle between
                // deltas); only a stalled response write — the consumer has
                // stopped reading — kills a streaming connection.
                ConnState::Streaming => {
                    c.out_pos < c.out.len() && now.duration_since(c.last_activity) > read
                }
                ConnState::Idle => {
                    let stalled_write = c.out_pos < c.out.len()
                        && now.duration_since(c.last_activity) > read;
                    let slow_request = c
                        .req_started
                        .map(|t| now.duration_since(t) > read)
                        .unwrap_or(false);
                    let idle_gap = now.duration_since(c.last_activity) > idle;
                    stalled_write || slow_request || idle_gap
                }
            })
            .map(|(fd, _)| *fd)
            .collect();
        for fd in expired {
            self.close(fd);
        }
    }

    fn close(&mut self, fd: RawFd) {
        if let Some(conn) = self.conns.remove(&fd) {
            if let Some(stream) = &conn.body_stream {
                stream.abort(); // producer observes the disconnect
            }
            self.epoll.delete(fd);
            drop(conn); // closes the socket
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The blocking acceptor: guards `max_connections`, sets up the socket
/// (non-blocking + `TCP_NODELAY`), and deals it to a reactor.
pub(crate) fn acceptor_loop(
    listener: TcpListener,
    reactors: Vec<Arc<ReactorShared>>,
    active: Arc<AtomicUsize>,
    max_connections: usize,
    stop: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.load(Ordering::Relaxed) >= max_connections {
            drop(stream); // shed before fd exhaustion
            continue;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        active.fetch_add(1, Ordering::Relaxed);
        reactors[next].adopt(stream);
        next = (next + 1) % reactors.len();
    }
}

/// One handler worker: runs fault injection, auth and the handler for each
/// parsed request, then posts the outcome back to the owning reactor.
pub(crate) fn worker_loop(
    rx: Receiver<Job>,
    reactors: Vec<Arc<ReactorShared>>,
    config: Arc<ServerConfig>,
    handler: Arc<dyn Fn(Request) -> Response + Send + Sync>,
) {
    while let Ok(job) = rx.recv() {
        let action = run_request(job.req, &config, handler.as_ref());
        let shared = &reactors[job.reactor];
        shared.completions.lock().push(Completion {
            fd: job.fd,
            gen: job.gen,
            action,
        });
        shared.wake.notify();
    }
}

/// Fault injection → auth → handler, in the same order as the blocking
/// server, so chaos schedules replay identically on the reactor.
fn run_request(
    req: Request,
    config: &ServerConfig,
    handler: &(dyn Fn(Request) -> Response + Send + Sync),
) -> Action {
    let keep_alive = req
        .header("connection")
        .map(|v| !v.eq_ignore_ascii_case("close"))
        .unwrap_or(true);

    #[cfg(feature = "fault")]
    let injected = config.fault.as_ref().and_then(|plan| plan.decide(&req.path));
    #[cfg(feature = "fault")]
    if let Some(kind) = injected {
        use crate::fault::FaultKind;
        match kind {
            FaultKind::Latency { ms } => std::thread::sleep(Duration::from_millis(ms)),
            FaultKind::ConnReset => return Action::Close,
            FaultKind::ServerError { status } => {
                return Action::Respond {
                    resp: Response::error(Status(status), "injected fault"),
                    keep_alive,
                };
            }
            FaultKind::TruncateBody | FaultKind::CorruptBody => {}
        }
    }

    let resp = if let Some(auth) = &config.basic_auth {
        if auth.verify(req.header("authorization")) {
            handler(req)
        } else {
            Response::error(Status::UNAUTHORIZED, "authentication required")
                .with_header("www-authenticate", "Basic realm=\"ceems\"")
        }
    } else {
        handler(req)
    };

    #[cfg(feature = "fault")]
    let resp = match injected {
        Some(crate::fault::FaultKind::TruncateBody) => {
            return Action::Truncate { resp };
        }
        Some(crate::fault::FaultKind::CorruptBody) => {
            let mut r = resp;
            crate::fault::corrupt_body(&mut r.body);
            r
        }
        _ => resp,
    };

    Action::Respond { resp, keep_alive }
}

/// Incremental parse outcome.
enum Parse {
    Incomplete,
    Done(Request),
    Bad(&'static str),
}

/// Finds the end of the request head (index one past the blank line),
/// accepting both CRLF and bare-LF line endings like the `read_line`-based
/// parser did. `scanned` persists progress across partial reads.
fn find_head_end(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let start = scanned.saturating_sub(3);
    let mut i = start;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\n') {
                *scanned = 0;
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                *scanned = 0;
                return Some(i + 3);
            }
        }
        i += 1;
    }
    *scanned = buf.len();
    None
}

/// Parses one request off the front of `buf`, consuming its bytes when
/// complete. Semantics mirror the blocking server's `read_request`: same
/// tolerated forms, same error strings.
fn parse_request(buf: &mut Vec<u8>, scanned: &mut usize, max_body: usize) -> Parse {
    let Some(head_end) = find_head_end(buf, scanned) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Bad("request head too large");
        }
        return Parse::Incomplete;
    };
    if head_end > MAX_HEAD_BYTES {
        return Parse::Bad("request head too large");
    }
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split('\n').map(|l| l.trim_end());
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let Some(method) = parts.next().and_then(Method::parse) else {
        return Parse::Bad("unsupported method");
    };
    let Some(target) = parts.next() else {
        return Parse::Bad("missing request target");
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Parse::Bad("unsupported HTTP version");
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut req = Request {
        method,
        path: decode_component(raw_path),
        query: parse_query(raw_query),
        headers: Default::default(),
        body: Vec::new(),
        path_params: Default::default(),
        // Stamped at parse completion (socket readability side); handlers
        // and instruments measure from dispatch and treat the difference as
        // queue delay.
        received_at: Some(std::time::Instant::now()),
    };
    for hline in lines {
        if hline.is_empty() {
            break;
        }
        let Some((name, value)) = hline.split_once(':') else {
            return Parse::Bad("malformed header");
        };
        req.headers
            .insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let body_len = match req.headers.get("content-length") {
        Some(cl) => match cl.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Parse::Bad("bad content-length"),
        },
        None => 0,
    };
    if body_len > max_body {
        return Parse::Bad("body too large");
    }
    if buf.len() < head_end + body_len {
        return Parse::Incomplete; // mid-body; wait for more bytes
    }
    req.body = buf[head_end..head_end + body_len].to_vec();
    buf.drain(..head_end + body_len);
    *scanned = 0;
    Parse::Done(req)
}

/// Serializes a response exactly as the blocking server's `write_response`
/// did: status line, `content-length`, `connection`, then the response's
/// own headers (BTreeMap order) minus those two, blank line, body.
pub(crate) fn serialize_response(out: &mut Vec<u8>, resp: &Response, keep_alive: bool) {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status.0,
        resp.status.reason(),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    out.extend_from_slice(head.as_bytes());
    for (k, v) in &resp.headers {
        if k != "content-length" && k != "connection" {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
}

/// Serializes the head of a streaming response: no `content-length`,
/// `transfer-encoding: chunked`, and `connection: close` — a stream's end
/// is the connection's end, so it never returns to keep-alive rotation.
fn serialize_stream_head(out: &mut Vec<u8>, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n",
        resp.status.0,
        resp.status.reason(),
    );
    out.extend_from_slice(head.as_bytes());
    for (k, v) in &resp.headers {
        if k != "content-length" && k != "connection" && k != "transfer-encoding" {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
    out.extend_from_slice(b"\r\n");
}

/// Appends one HTTP/1.1 chunk (`<hex len>\r\n<data>\r\n`).
fn encode_chunk(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Serializes the truncated-body fault: full `content-length`, short body.
#[cfg(feature = "fault")]
fn serialize_truncated(out: &mut Vec<u8>, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        resp.status.0,
        resp.status.reason(),
        resp.body.len()
    );
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&resp.body[..crate::fault::truncated_len(resp.body.len())]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8], max_body: usize) -> (Vec<Request>, Option<&'static str>) {
        let mut buf = bytes.to_vec();
        let mut scanned = 0;
        let mut out = Vec::new();
        loop {
            match parse_request(&mut buf, &mut scanned, max_body) {
                Parse::Done(r) => out.push(r),
                Parse::Incomplete => return (out, None),
                Parse::Bad(m) => return (out, Some(m)),
            }
        }
    }

    #[test]
    fn parses_simple_get() {
        let (reqs, err) = parse_all(b"GET /ping?x=1 HTTP/1.1\r\nhost: a\r\n\r\n", 1024);
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/ping");
        assert_eq!(reqs[0].query_param("x"), Some("1"));
        assert_eq!(reqs[0].header("host"), Some("a"));
    }

    #[test]
    fn parses_lf_only_requests() {
        let (reqs, err) = parse_all(b"GET /p HTTP/1.1\nhost: a\n\n", 1024);
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/p");
    }

    #[test]
    fn parses_pipelined_requests_and_bodies() {
        let bytes = b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
        let (reqs, err) = parse_all(bytes, 1024);
        assert!(err.is_none());
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].body, b"abc");
        assert_eq!(reqs[1].path, "/b");
    }

    #[test]
    fn incremental_split_points_all_succeed() {
        let bytes: &[u8] = b"POST /a?q=2 HTTP/1.1\r\nhost: x\r\ncontent-length: 5\r\n\r\nhello";
        for split in 0..bytes.len() {
            let mut buf = bytes[..split].to_vec();
            let mut scanned = 0;
            match parse_request(&mut buf, &mut scanned, 64) {
                Parse::Incomplete => {}
                Parse::Done(_) => panic!("complete at split {split}"),
                Parse::Bad(m) => panic!("bad at split {split}: {m}"),
            }
            buf.extend_from_slice(&bytes[split..]);
            match parse_request(&mut buf, &mut scanned, 64) {
                Parse::Done(r) => {
                    assert_eq!(r.body, b"hello");
                    assert_eq!(r.query_param("q"), Some("2"));
                }
                _ => panic!("expected completion after split {split}"),
            }
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn rejects_mirror_blocking_server_messages() {
        let (_, err) = parse_all(b"PATCH /x HTTP/1.1\r\n\r\n", 1024);
        assert_eq!(err, Some("unsupported method"));
        let (_, err) = parse_all(b"GET\r\n\r\n", 1024);
        assert_eq!(err, Some("missing request target"));
        let (_, err) = parse_all(b"GET /x SPDY/3\r\n\r\n", 1024);
        assert_eq!(err, Some("unsupported HTTP version"));
        let (_, err) = parse_all(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n", 1024);
        assert_eq!(err, Some("malformed header"));
        let (_, err) = parse_all(b"GET /x HTTP/1.1\r\ncontent-length: qq\r\n\r\n", 1024);
        assert_eq!(err, Some("bad content-length"));
        let (_, err) = parse_all(b"GET /x HTTP/1.1\r\ncontent-length: 99\r\n\r\n", 8);
        assert_eq!(err, Some("body too large"));
    }

    #[test]
    fn serialization_matches_blocking_format() {
        let resp = Response::text("ok").with_header("x-a", "b");
        let mut out = Vec::new();
        serialize_response(&mut out, &resp, true);
        let s = String::from_utf8(out).unwrap();
        assert_eq!(
            s,
            "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: keep-alive\r\ncontent-type: text/plain; charset=utf-8\r\nx-a: b\r\n\r\nok"
        );
    }
}
