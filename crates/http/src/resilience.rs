//! Shared resilience primitives for every inter-component hop.
//!
//! One policy, used everywhere: the LB forwarding to the query frontend and
//! the backend pool, the query frontend fanning out to replicas, the WAL
//! follower streaming from its leader, the API-server updater querying the
//! TSDB, and the emission-factor provider chain. The primitives are:
//!
//! * [`Backoff`] — exponential backoff with **full jitter**, seedable so the
//!   chaos harness replays identical schedules.
//! * [`RetryPolicy`] — bounded attempts around a fallible operation, with an
//!   optional total deadline spanning all attempts.
//! * [`RetryBudget`] — a token bucket that caps the *ratio* of retries to
//!   fresh requests, so a hard outage cannot amplify traffic.
//! * [`CircuitBreaker`] — a closed → open → half-open → closed breaker with
//!   an injectable millisecond clock for table-driven tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// SplitMix64 — the mixing function behind all deterministic jitter and
/// fault decisions in the stack. Public so the fault layer and tests share
/// one definition.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes; used to fold endpoint names into fault/jitter seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn wall_seed() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED)
}

/// Exponential backoff with full jitter.
///
/// The n-th delay is uniform in `[0, min(max, base · 2ⁿ))` ("full jitter",
/// the AWS architecture-blog variant that minimises synchronized retry
/// storms). The jitter stream is a SplitMix64 sequence, so a fixed seed
/// produces a fixed delay schedule.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempt: AtomicU64,
    rng: AtomicU64,
}

impl Backoff {
    /// Backoff seeded from the wall clock (production use).
    pub fn new(base: Duration, max: Duration) -> Backoff {
        Backoff::seeded(base, max, wall_seed())
    }

    /// Backoff with a fixed jitter seed (deterministic tests / chaos runs).
    pub fn seeded(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            max,
            attempt: AtomicU64::new(0),
            rng: AtomicU64::new(splitmix64(seed)),
        }
    }

    /// Next delay in the schedule; each call advances the attempt counter.
    pub fn next_delay(&self) -> Duration {
        let n = self.attempt.fetch_add(1, Ordering::Relaxed).min(20) as u32;
        let ceiling = self
            .base
            .saturating_mul(1u32 << n.min(20))
            .min(self.max)
            .max(Duration::from_micros(1));
        let r = {
            let mut cur = self.rng.load(Ordering::Relaxed);
            loop {
                let next = splitmix64(cur);
                match self.rng.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break next,
                    Err(seen) => cur = seen,
                }
            }
        };
        let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
        ceiling.mul_f64(frac)
    }

    /// Resets the attempt counter (after a success).
    pub fn reset(&self) {
        self.attempt.store(0, Ordering::Relaxed);
    }
}

/// A retry policy: bounded attempts, full-jitter backoff between them and an
/// optional deadline over the whole sequence.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff ceiling.
    pub base_delay: Duration,
    /// Backoff ceiling cap.
    pub max_delay: Duration,
    /// Optional total budget across all attempts and sleeps.
    pub deadline: Option<Duration>,
    /// Jitter seed.
    pub seed: u64,
}

impl RetryPolicy {
    /// Policy with `max_attempts` and the default 10 ms → 500 ms backoff.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            deadline: None,
            seed: wall_seed(),
        }
    }

    /// A policy that never retries.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy::new(1)
    }

    /// Sets the backoff range.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Sets the total deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Fixes the jitter seed (deterministic tests).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Runs `op` until it succeeds, attempts run out, or the deadline would
    /// be blown by the next sleep. The closure receives the 0-based attempt
    /// index.
    pub fn run<T, E>(&self, op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        self.run_inner(None, op)
    }

    /// Like [`RetryPolicy::run`] but every retry (not the first attempt)
    /// must withdraw a token from `budget`; an empty budget stops retrying.
    pub fn run_budgeted<T, E>(
        &self,
        budget: &RetryBudget,
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        budget.on_request();
        self.run_inner(Some(budget), op)
    }

    fn run_inner<T, E>(
        &self,
        budget: Option<&RetryBudget>,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let start = Instant::now();
        let backoff = Backoff::seeded(self.base_delay, self.max_delay, self.seed);
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 >= attempts {
                break;
            }
            if let Some(b) = budget {
                if !b.try_withdraw() {
                    break;
                }
            }
            let delay = backoff.next_delay();
            if let Some(d) = self.deadline {
                if start.elapsed() + delay >= d {
                    break;
                }
            }
            std::thread::sleep(delay);
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Remaining time under the deadline measured from `start`; `None` when
    /// no deadline is set, `Some(ZERO)` when it has expired.
    pub fn remaining(&self, start: Instant) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(start.elapsed()))
    }
}

/// Token-bucket retry budget: each fresh request deposits `deposit_ratio`
/// tokens (capped at `max_tokens`), each retry withdraws one. A sustained
/// outage therefore amplifies traffic by at most `1 + deposit_ratio`.
#[derive(Debug)]
pub struct RetryBudget {
    tokens: Mutex<f64>,
    max_tokens: f64,
    deposit_ratio: f64,
}

impl RetryBudget {
    /// Budget allowing `deposit_ratio` retries per request, bursting up to
    /// `max_tokens`.
    pub fn new(max_tokens: f64, deposit_ratio: f64) -> RetryBudget {
        RetryBudget {
            tokens: Mutex::new(max_tokens.max(0.0)),
            max_tokens: max_tokens.max(0.0),
            deposit_ratio: deposit_ratio.max(0.0),
        }
    }

    /// Records a fresh (non-retry) request.
    pub fn on_request(&self) {
        let mut t = self.tokens.lock();
        *t = (*t + self.deposit_ratio).min(self.max_tokens);
    }

    /// Tries to pay for one retry.
    pub fn try_withdraw(&self) -> bool {
        let mut t = self.tokens.lock();
        if *t >= 1.0 {
            *t -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count (tests / metrics).
    pub fn available(&self) -> f64 {
        *self.tokens.lock()
    }
}

/// Millisecond clock used by [`CircuitBreaker`]; injectable for tests.
pub type ClockMs = Arc<dyn Fn() -> u64 + Send + Sync>;

fn wall_clock_ms() -> ClockMs {
    Arc::new(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    })
}

/// Circuit-breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Time the breaker stays open before admitting half-open probes.
    pub cooldown_ms: u64,
    /// Concurrent probes admitted while half-open.
    pub half_open_max_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            half_open_max_probes: 1,
        }
    }
}

/// Breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Traffic is rejected until the cooldown elapses.
    Open,
    /// A bounded number of probes test the backend; one failure re-opens.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    half_open_inflight: u32,
}

/// A half-open circuit breaker.
///
/// `try_acquire` admits or rejects a call (and performs the open → half-open
/// transition once the cooldown elapses); the caller reports the outcome via
/// `on_success` / `on_failure`.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    clock: ClockMs,
    inner: Mutex<BreakerInner>,
    opens: AtomicU64,
    rejections: AtomicU64,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("cfg", &self.cfg)
            .field("state", &self.inner.lock().state)
            .finish()
    }
}

impl CircuitBreaker {
    /// Breaker on the wall clock.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker::with_clock(cfg, wall_clock_ms())
    }

    /// Breaker on an injected clock (table-driven tests).
    pub fn with_clock(cfg: BreakerConfig, clock: ClockMs) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ms: 0,
                half_open_inflight: 0,
            }),
            opens: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// Current state without side effects (an elapsed cooldown still reports
    /// `Open` until a call probes it).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// True when a call *would* be admitted right now. Does not consume a
    /// half-open probe slot; use for cheap filtering (e.g. backend pick).
    pub fn available(&self) -> bool {
        let inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => (self.clock)() >= inner.opened_at_ms + self.cfg.cooldown_ms,
            BreakerState::HalfOpen => inner.half_open_inflight < self.cfg.half_open_max_probes,
        }
    }

    /// Admits or rejects a call. Open breakers whose cooldown has elapsed
    /// transition to half-open and admit the caller as the probe.
    pub fn try_acquire(&self) -> bool {
        let now = (self.clock)();
        let mut inner = self.inner.lock();
        let admitted = match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= inner.opened_at_ms + self.cfg.cooldown_ms {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_inflight = 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.half_open_inflight < self.cfg.half_open_max_probes {
                    inner.half_open_inflight += 1;
                    true
                } else {
                    false
                }
            }
        };
        if !admitted {
            self.rejections.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Reports a successful call.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Closed;
                inner.consecutive_failures = 0;
                inner.half_open_inflight = 0;
            }
            BreakerState::Open => {}
        }
    }

    /// Reports a failed call.
    pub fn on_failure(&self) {
        let now = (self.clock)();
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_ms = now;
                    self.opens.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_ms = now;
                inner.half_open_inflight = 0;
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open => {}
        }
    }

    /// Forces the breaker closed (an external health probe saw the backend
    /// respond).
    pub fn force_close(&self) {
        let mut inner = self.inner.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.half_open_inflight = 0;
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Calls rejected while open / half-open-saturated.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let a = Backoff::seeded(Duration::from_millis(10), Duration::from_millis(200), 42);
        let b = Backoff::seeded(Duration::from_millis(10), Duration::from_millis(200), 42);
        for n in 0..12 {
            let da = a.next_delay();
            let db = b.next_delay();
            assert_eq!(da, db, "same seed must give the same schedule");
            let ceiling = Duration::from_millis(10)
                .saturating_mul(1 << n.min(20))
                .min(Duration::from_millis(200));
            assert!(da <= ceiling, "delay {da:?} above ceiling {ceiling:?}");
        }
        let c = Backoff::seeded(Duration::from_millis(10), Duration::from_millis(200), 43);
        let mut diff = false;
        let a = Backoff::seeded(Duration::from_millis(10), Duration::from_millis(200), 42);
        for _ in 0..12 {
            if a.next_delay() != c.next_delay() {
                diff = true;
            }
        }
        assert!(diff, "different seeds should diverge");
    }

    #[test]
    fn retry_policy_stops_after_max_attempts() {
        let policy = RetryPolicy::new(3)
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50))
            .with_seed(7);
        let calls = StdAtomicU64::new(0);
        let r: Result<(), &str> = policy.run(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("down")
        });
        assert!(r.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_policy_returns_first_success() {
        let policy = RetryPolicy::new(5)
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50))
            .with_seed(7);
        let r: Result<u32, &str> = policy.run(|attempt| {
            if attempt < 2 {
                Err("down")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r, Ok(2));
    }

    #[test]
    fn retry_deadline_cuts_the_sequence_short() {
        let policy = RetryPolicy::new(100)
            .with_backoff(Duration::from_millis(20), Duration::from_millis(20))
            .with_deadline(Duration::from_millis(1))
            .with_seed(7);
        let calls = StdAtomicU64::new(0);
        let start = Instant::now();
        let r: Result<(), &str> = policy.run(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("down")
        });
        assert!(r.is_err());
        // The first sleep (up to 20 ms) would blow the 1 ms deadline, so at
        // most a couple of attempts run and the loop exits quickly.
        assert!(calls.load(Ordering::Relaxed) <= 2);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn retry_budget_limits_amplification() {
        let budget = RetryBudget::new(2.0, 0.1);
        let policy = RetryPolicy::new(10)
            .with_backoff(Duration::from_micros(1), Duration::from_micros(2))
            .with_seed(7);
        let calls = StdAtomicU64::new(0);
        let r: Result<(), &str> = policy.run_budgeted(&budget, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err("down")
        });
        assert!(r.is_err());
        // 2 tokens (plus the 0.1 deposit) pay for 2 retries: 3 calls total.
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        // Budget is drained; the next run gets its deposit but no full token.
        let calls2 = StdAtomicU64::new(0);
        let r: Result<(), &str> = policy.run_budgeted(&budget, |_| {
            calls2.fetch_add(1, Ordering::Relaxed);
            Err("down")
        });
        assert!(r.is_err());
        assert_eq!(calls2.load(Ordering::Relaxed), 1);
    }

    fn test_breaker(cfg: BreakerConfig) -> (CircuitBreaker, Arc<StdAtomicU64>) {
        let t = Arc::new(StdAtomicU64::new(0));
        let t2 = t.clone();
        let clock: ClockMs = Arc::new(move || t2.load(Ordering::Relaxed));
        (CircuitBreaker::with_clock(cfg, clock), t)
    }

    /// Table-driven walk through the full state machine.
    #[test]
    fn breaker_state_machine_table() {
        #[derive(Debug)]
        enum Step {
            /// (advance clock ms)
            Tick(u64),
            Fail,
            Succeed,
            /// try_acquire must return this.
            Acquire(bool),
            /// state() must equal this.
            Expect(BreakerState),
        }
        use BreakerState::*;
        use Step::*;
        let table: Vec<Step> = vec![
            Expect(Closed),
            Acquire(true),
            Fail,
            Expect(Closed), // 1 failure < threshold 3
            Fail,
            Expect(Closed),
            Succeed, // success resets the consecutive count
            Fail,
            Fail,
            Expect(Closed),
            Fail, // third consecutive → open
            Expect(Open),
            Acquire(false), // rejected while open
            Tick(999),
            Acquire(false), // still inside the 1000 ms cooldown
            Tick(1),
            Acquire(true), // cooldown elapsed → half-open probe admitted
            Expect(HalfOpen),
            Acquire(false), // only one probe slot
            Fail,           // probe failed → open again
            Expect(Open),
            Tick(1_000),
            Acquire(true), // second probe window
            Expect(HalfOpen),
            Succeed, // probe succeeded → closed
            Expect(Closed),
            Acquire(true),
        ];
        let (b, t) = test_breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            half_open_max_probes: 1,
        });
        for (i, step) in table.iter().enumerate() {
            match step {
                Tick(ms) => {
                    t.fetch_add(*ms, Ordering::Relaxed);
                }
                Fail => b.on_failure(),
                Succeed => b.on_success(),
                Acquire(want) => {
                    assert_eq!(b.try_acquire(), *want, "step {i}: {step:?}");
                }
                Expect(want) => assert_eq!(b.state(), *want, "step {i}: {step:?}"),
            }
        }
        assert_eq!(b.opens(), 2);
        assert!(b.rejections() >= 3);
    }

    #[test]
    fn breaker_available_does_not_consume_probe_slot() {
        let (b, t) = test_breaker(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 100,
            half_open_max_probes: 1,
        });
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.available());
        t.store(100, Ordering::Relaxed);
        assert!(b.available());
        assert!(b.available(), "available() must not transition or consume");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.available(), "probe slot taken");
    }

    #[test]
    fn breaker_force_close_resets() {
        let (b, _t) = test_breaker(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 60_000,
            half_open_max_probes: 1,
        });
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        b.force_close();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
    }
}
