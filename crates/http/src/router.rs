//! Path routing with `:param` captures and method dispatch.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::types::{Method, Request, Response, Status};

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
}

enum Segment {
    Literal(String),
    Param(String),
    /// `*rest` — matches the remainder of the path (used by the proxy).
    Wildcard(String),
}

/// Method+path router. Routes are matched in registration order; the first
/// match wins.
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<(Arc<Route>, Handler)>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a route. Patterns look like `/api/units/:uuid` or
    /// `/proxy/*rest`.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        let segments = pattern
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else if let Some(name) = s.strip_prefix('*') {
                    Segment::Wildcard(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push((
            Arc::new(Route { method, segments }),
            Arc::new(handler),
        ));
        self
    }

    /// GET shorthand.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Get, pattern, handler)
    }

    /// POST shorthand.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Post, pattern, handler)
    }

    /// DELETE shorthand.
    pub fn delete(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Delete, pattern, handler)
    }

    /// Dispatches a request: 404 when no path matches, 405 when a path
    /// matches under a different method.
    pub fn dispatch(&self, mut req: Request) -> Response {
        let path_segments: Vec<&str> = req
            .path
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        let mut path_matched = false;
        for (route, handler) in &self.routes {
            if let Some(params) = match_route(&route.segments, &path_segments) {
                path_matched = true;
                if route.method == req.method {
                    req.path_params = params;
                    return handler(&req);
                }
            }
        }
        if path_matched {
            Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
        } else {
            Response::error(Status::NOT_FOUND, "not found")
        }
    }
}

fn match_route(segments: &[Segment], path: &[&str]) -> Option<BTreeMap<String, String>> {
    let mut params = BTreeMap::new();
    let mut i = 0;
    for seg in segments {
        match seg {
            Segment::Literal(lit) => {
                if path.get(i).copied() != Some(lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            Segment::Param(name) => {
                let v = path.get(i)?;
                params.insert(name.clone(), v.to_string());
                i += 1;
            }
            Segment::Wildcard(name) => {
                params.insert(name.clone(), path[i..].join("/"));
                return Some(params);
            }
        }
    }
    if i == path.len() {
        Some(params)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request::new(Method::Get, path)
    }

    #[test]
    fn literal_and_param_routes() {
        let mut r = Router::new();
        r.get("/api/health", |_| Response::text("ok"));
        r.get("/api/units/:uuid", |req| {
            Response::text(format!("unit={}", req.path_param("uuid").unwrap()))
        });

        assert_eq!(r.dispatch(get("/api/health")).body_string(), "ok");
        assert_eq!(
            r.dispatch(get("/api/units/job-42")).body_string(),
            "unit=job-42"
        );
        assert_eq!(r.dispatch(get("/api/unknown")).status, Status::NOT_FOUND);
        assert_eq!(r.dispatch(get("/api/units")).status, Status::NOT_FOUND);
        assert_eq!(
            r.dispatch(get("/api/units/a/b")).status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn method_not_allowed() {
        let mut r = Router::new();
        r.post("/api/units", |_| Response::text("created"));
        let resp = r.dispatch(get("/api/units"));
        assert_eq!(resp.status, Status::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn wildcard_captures_rest() {
        let mut r = Router::new();
        r.get("/proxy/*rest", |req| {
            Response::text(req.path_param("rest").unwrap().to_string())
        });
        assert_eq!(
            r.dispatch(get("/proxy/api/v1/query")).body_string(),
            "api/v1/query"
        );
        assert_eq!(r.dispatch(get("/proxy")).body_string(), "");
    }

    #[test]
    fn first_match_wins() {
        let mut r = Router::new();
        r.get("/a/:x", |_| Response::text("param"));
        r.get("/a/b", |_| Response::text("literal"));
        assert_eq!(r.dispatch(get("/a/b")).body_string(), "param");
    }
}
