//! Event-driven HTTP/1.1 server on a hand-rolled epoll reactor (S20).
//!
//! One acceptor thread deals accepted sockets to `reactor_threads` epoll
//! event loops (edge-triggered, non-blocking); parsed requests execute on a
//! fixed pool of `workers` handler threads. The thread count is fixed —
//! `1 + reactor_threads + workers` — no matter how many connections are
//! open, which is what lets the stack hold 10k+ concurrent keep-alive
//! dashboard connections (see `crates/bench/benches/connstorm.rs`). The
//! public surface (`ServerConfig`, `HttpServer::serve`/`serve_fn`, auth,
//! fault injection) is unchanged from the blocking thread-per-connection
//! substrate it replaces, so every component migrates behind the same API.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::unbounded;

use crate::auth::BasicAuth;
use crate::reactor::{acceptor_loop, worker_loop, Reactor, ReactorShared};
use crate::router::Router;
use crate::sys;
use crate::types::{Request, Response};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Handler worker thread count (bounds handler concurrency; handlers
    /// may block, e.g. the LB proxying or the qfe queueing).
    pub workers: usize,
    /// Optional basic-auth guard applied to every route.
    pub basic_auth: Option<BasicAuth>,
    /// Total time allowed to receive one request (first byte to complete
    /// body); also bounds a stalled response write. Trickled-header
    /// (slowloris) connections die at this deadline.
    pub read_timeout: Duration,
    /// Maximum accepted body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum requests served per connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Listen backlog for the accept queue.
    pub backlog: i32,
    /// Open-connection cap; accepts beyond it are shed immediately so the
    /// process never runs its fd table dry.
    pub max_connections: usize,
    /// Keep-alive connections quiet for longer than this are closed, so
    /// abandoned dashboards can't pin fds forever.
    pub idle_timeout: Duration,
    /// Event-loop thread count.
    pub reactor_threads: usize,
    /// Fault-injection schedule applied to every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            basic_auth: None,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
            max_requests_per_conn: 1024,
            backlog: 1024,
            max_connections: 16_384,
            idle_timeout: Duration::from_secs(60),
            reactor_threads: 2,
            #[cfg(feature = "fault")]
            fault: None,
        }
    }
}

impl ServerConfig {
    /// Config bound to an ephemeral localhost port.
    pub fn ephemeral() -> Self {
        Self::default()
    }

    /// Sets basic auth.
    pub fn with_basic_auth(mut self, auth: BasicAuth) -> Self {
        self.basic_auth = Some(auth);
        self
    }

    /// Sets worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the accept backlog.
    pub fn with_backlog(mut self, backlog: i32) -> Self {
        self.backlog = backlog.max(1);
        self
    }

    /// Sets the open-connection cap.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Sets the keep-alive idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the reactor (event-loop) thread count.
    pub fn with_reactor_threads(mut self, n: usize) -> Self {
        self.reactor_threads = n.max(1);
        self
    }

    /// Sets the per-request receive deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Injects faults on the server side of every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fn with_fault_plan(mut self, plan: Arc<crate::fault::FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// A running HTTP server. Dropping the handle shuts the server down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    reactor_shared: Vec<Arc<ReactorShared>>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<crossbeam::channel::Sender<crate::reactor::Job>>,
    thread_count: usize,
}

impl HttpServer {
    /// Binds and serves `router` in background threads.
    pub fn serve(config: ServerConfig, router: Router) -> std::io::Result<HttpServer> {
        let handler: Arc<dyn Fn(Request) -> Response + Send + Sync> =
            Arc::new(move |req| router.dispatch(req));
        Self::serve_fn(config, handler)
    }

    /// Binds and serves an arbitrary handler function.
    pub fn serve_fn(
        config: ServerConfig,
        handler: Arc<dyn Fn(Request) -> Response + Send + Sync>,
    ) -> std::io::Result<HttpServer> {
        let listener = sys::listen_with_backlog(&config.addr, config.backlog)?;
        let addr = listener.local_addr()?;
        let config = Arc::new(config);
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let (job_tx, job_rx) = unbounded();

        let n_reactors = config.reactor_threads.max(1);
        let mut reactor_shared = Vec::with_capacity(n_reactors);
        for _ in 0..n_reactors {
            reactor_shared.push(ReactorShared::new()?);
        }

        let mut reactors = Vec::with_capacity(n_reactors);
        for (i, shared) in reactor_shared.iter().enumerate() {
            let reactor = Reactor::new(
                i,
                shared.clone(),
                config.clone(),
                job_tx.clone(),
                active.clone(),
                stop.clone(),
            )?;
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("http-reactor-{i}"))
                    .spawn(move || reactor.run())?,
            );
        }

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = job_rx.clone();
            let shared = reactor_shared.clone();
            let config = config.clone();
            let handler = handler.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared, config, handler))?,
            );
        }

        let acceptor = {
            let reactors = reactor_shared.clone();
            let active = active.clone();
            let stop = stop.clone();
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("http-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, reactors, active, max_connections, stop))?
        };

        let thread_count = 1 + reactors.len() + workers.len();
        Ok(HttpServer {
            addr,
            stop,
            active,
            reactor_shared,
            acceptor: Some(acceptor),
            reactors,
            workers,
            job_tx: Some(job_tx),
            thread_count,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:4123`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Currently open connections across all reactors.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Total server threads (acceptor + reactors + workers). Fixed for the
    /// server's lifetime regardless of connection count.
    pub fn thread_count(&self) -> usize {
        self.thread_count
    }

    /// Requests shutdown and joins the threads. In-flight requests drain
    /// (handler finishes, response flushes) before their connections close;
    /// idle connections close immediately.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for shared in &self.reactor_shared {
            shared.kick();
        }
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
        // Reactors have dropped their job senders; dropping ours closes the
        // channel and the workers exit.
        self.job_tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::types::Status;
    use std::io::{Read, Write};

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_| Response::text("pong"));
        r.post("/echo", |req| {
            Response::text(String::from_utf8_lossy(&req.body).into_owned())
        });
        r.get("/hdr", |req| {
            Response::text(req.header("x-grafana-user").unwrap_or("-").to_string())
        });
        r
    }

    #[test]
    fn end_to_end_get_and_post() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let client = Client::new();
        let resp = client.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_string(), "pong");

        let resp = client
            .post(
                &format!("{}/echo", server.base_url()),
                b"hello world".to_vec(),
                "text/plain",
            )
            .unwrap();
        assert_eq!(resp.body_string(), "hello world");
        server.shutdown();
    }

    #[test]
    fn basic_auth_enforced() {
        let auth = BasicAuth::new("prom", "secret");
        let server = HttpServer::serve(
            ServerConfig::ephemeral().with_basic_auth(auth.clone()),
            test_router(),
        )
        .unwrap();

        let unauth = Client::new();
        let resp = unauth.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::UNAUTHORIZED);
        assert!(resp.header("www-authenticate").is_some());

        let authed = Client::new().with_basic_auth(auth);
        let resp = authed.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::OK);
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n";
        stream.write_all(req).unwrap();
        stream.write_all(req).unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert_eq!(buf.matches("HTTP/1.1 200 OK").count(), 3);
        assert_eq!(buf.matches("pong").count(), 3);
        server.shutdown();
    }

    #[test]
    fn custom_headers_reach_handler() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let client = Client::new().with_header("X-Grafana-User", "alice");
        let resp = client.get(&format!("{}/hdr", server.base_url())).unwrap();
        assert_eq!(resp.body_string(), "alice");
        server.shutdown();
    }

    #[test]
    fn unknown_route_404() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let resp = Client::new()
            .get(&format!("{}/nope", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected() {
        let mut cfg = ServerConfig::ephemeral();
        cfg.max_body_bytes = 8;
        let server = HttpServer::serve(cfg, test_router()).unwrap();
        let resp = Client::new()
            .post(
                &format!("{}/echo", server.base_url()),
                vec![b'x'; 64],
                "text/plain",
            )
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }

    #[test]
    fn thread_count_is_fixed_and_reported() {
        let server = HttpServer::serve(
            ServerConfig::ephemeral()
                .with_workers(3)
                .with_reactor_threads(2),
            test_router(),
        )
        .unwrap();
        assert_eq!(server.thread_count(), 1 + 2 + 3);
        let client = Client::new();
        for _ in 0..8 {
            let resp = client.get(&format!("{}/ping", server.base_url())).unwrap();
            assert_eq!(resp.status, Status::OK);
        }
        assert_eq!(server.thread_count(), 6, "threads never grow");
        server.shutdown();
    }

    #[test]
    fn streaming_response_round_trip() {
        let writers: Arc<parking_lot::Mutex<Vec<crate::stream::StreamWriter>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut r = Router::new();
        let w = writers.clone();
        r.get("/sub", move |_| {
            let (resp, writer) = Response::streaming(Status::OK);
            let resp = resp.with_header("content-type", "text/event-stream");
            w.lock().push(writer);
            resp
        });
        let server = HttpServer::serve(ServerConfig::ephemeral(), r).unwrap();
        let client = Client::new();
        let mut resp = client
            .get_stream(&format!("{}/sub", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.header("content-type"), Some("text/event-stream"));
        assert_eq!(resp.header("transfer-encoding"), Some("chunked"));

        // Producer sends after the response head is already on the wire.
        let writer = loop {
            if let Some(w) = writers.lock().last().cloned() {
                break w;
            }
        };
        assert!(writer.send(b"alpha".to_vec()));
        assert_eq!(resp.next_chunk().unwrap().unwrap(), b"alpha");
        assert!(writer.send(b"beta".to_vec()));
        assert!(writer.send(b"gamma".to_vec()));
        assert_eq!(resp.next_chunk().unwrap().unwrap(), b"beta");
        assert_eq!(resp.next_chunk().unwrap().unwrap(), b"gamma");
        writer.close();
        assert!(resp.next_chunk().unwrap().is_none(), "clean end of stream");
        server.shutdown();
    }

    #[test]
    fn streaming_consumer_disconnect_aborts_writer() {
        let writers: Arc<parking_lot::Mutex<Vec<crate::stream::StreamWriter>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut r = Router::new();
        let w = writers.clone();
        r.get("/sub", move |_| {
            let (resp, writer) = Response::streaming(Status::OK);
            w.lock().push(writer);
            resp
        });
        let server = HttpServer::serve(ServerConfig::ephemeral(), r).unwrap();
        let client = Client::new();
        let mut resp = client
            .get_stream(&format!("{}/sub", server.base_url()))
            .unwrap();
        let writer = loop {
            if let Some(w) = writers.lock().last().cloned() {
                break w;
            }
        };
        assert!(writer.send(b"first".to_vec()));
        assert_eq!(resp.next_chunk().unwrap().unwrap(), b"first");
        drop(resp); // client hangs up mid-stream

        // The reactor observes the close and aborts the stream; sends start
        // failing. Bounded wait: sends keep succeeding into the queue until
        // the reactor notices, so poll.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let ok = writer.send(b"more".to_vec());
            if !ok {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "writer never observed the disconnect"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(writer.is_aborted());
        server.shutdown();
    }

    #[test]
    fn max_requests_per_conn_closes_connection() {
        let mut cfg = ServerConfig::ephemeral();
        cfg.max_requests_per_conn = 2;
        let server = HttpServer::serve(cfg, test_router()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n";
        stream.write_all(req).unwrap();
        stream.write_all(req).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert_eq!(buf.matches("pong").count(), 2, "two served, then closed");
        server.shutdown();
    }
}
