//! Blocking HTTP/1.1 server with a fixed worker pool and keep-alive.
//!
//! One acceptor thread pushes connections into a crossbeam channel; `workers`
//! threads pull and serve them. Each CEEMS component (exporter, API server,
//! LB, simulated TSDB endpoints) runs one of these.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::auth::BasicAuth;
use crate::router::Router;
use crate::types::{Method, Request, Response, Status};
use crate::url::{decode_component, parse_query};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker thread count.
    pub workers: usize,
    /// Optional basic-auth guard applied to every route.
    pub basic_auth: Option<BasicAuth>,
    /// Per-request read timeout.
    pub read_timeout: Duration,
    /// Maximum accepted body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum requests served per connection before it is closed.
    pub max_requests_per_conn: usize,
    /// Fault-injection schedule applied to every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            basic_auth: None,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
            max_requests_per_conn: 1024,
            #[cfg(feature = "fault")]
            fault: None,
        }
    }
}

impl ServerConfig {
    /// Config bound to an ephemeral localhost port.
    pub fn ephemeral() -> Self {
        Self::default()
    }

    /// Sets basic auth.
    pub fn with_basic_auth(mut self, auth: BasicAuth) -> Self {
        self.basic_auth = Some(auth);
        self
    }

    /// Sets worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Injects faults on the server side of every request (chaos testing).
    #[cfg(feature = "fault")]
    pub fn with_fault_plan(mut self, plan: Arc<crate::fault::FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }
}

/// A running HTTP server. Dropping the handle shuts the server down.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds and serves `router` in background threads.
    pub fn serve(config: ServerConfig, router: Router) -> std::io::Result<HttpServer> {
        let handler: Arc<dyn Fn(Request) -> Response + Send + Sync> =
            Arc::new(move |req| router.dispatch(req));
        Self::serve_fn(config, handler)
    }

    /// Binds and serves an arbitrary handler function.
    pub fn serve_fn(
        config: ServerConfig,
        handler: Arc<dyn Fn(Request) -> Response + Send + Sync>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(1024);

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers.max(1) {
            let rx = rx.clone();
            let handler = handler.clone();
            let config = config.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    let _ = serve_connection(stream, &config, handler.as_ref());
                }
            }));
        }

        let stop2 = stop.clone();
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let _ = tx.send(s);
                    }
                    Err(_) => continue,
                }
            }
            drop(tx);
        });

        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:4123`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Requests shutdown and joins the threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection(
    stream: TcpStream,
    config: &ServerConfig,
    handler: &(dyn Fn(Request) -> Response + Send + Sync),
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    for _ in 0..config.max_requests_per_conn {
        let req = match read_request(&mut reader, config.max_body_bytes) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean close
            Err(e) => {
                let resp = Response::error(Status::BAD_REQUEST, format!("bad request: {e}"));
                let _ = write_response(&mut writer, &resp, false);
                return Ok(());
            }
        };
        let keep_alive = req
            .header("connection")
            .map(|v| !v.eq_ignore_ascii_case("close"))
            .unwrap_or(true);

        #[cfg(feature = "fault")]
        let injected = config.fault.as_ref().and_then(|plan| plan.decide(&req.path));
        #[cfg(feature = "fault")]
        if let Some(kind) = injected {
            use crate::fault::FaultKind;
            match kind {
                FaultKind::Latency { ms } => std::thread::sleep(Duration::from_millis(ms)),
                // Drop the connection without a byte of response.
                FaultKind::ConnReset => return Ok(()),
                FaultKind::ServerError { status } => {
                    let resp = Response::error(Status(status), "injected fault");
                    write_response(&mut writer, &resp, keep_alive)?;
                    if !keep_alive {
                        return Ok(());
                    }
                    continue;
                }
                FaultKind::TruncateBody | FaultKind::CorruptBody => {}
            }
        }

        let resp = if let Some(auth) = &config.basic_auth {
            if auth.verify(req.header("authorization")) {
                handler(req)
            } else {
                Response::error(Status::UNAUTHORIZED, "authentication required")
                    .with_header("www-authenticate", "Basic realm=\"ceems\"")
            }
        } else {
            handler(req)
        };

        #[cfg(feature = "fault")]
        let resp = match injected {
            // Advertise the full body length but cut the write short and
            // close, so the client observes an unexpected EOF mid-body.
            Some(crate::fault::FaultKind::TruncateBody) => {
                return write_truncated(&mut writer, &resp);
            }
            Some(crate::fault::FaultKind::CorruptBody) => {
                let mut r = resp;
                crate::fault::corrupt_body(&mut r.body);
                r
            }
            _ => resp,
        };

        write_response(&mut writer, &resp, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(feature = "fault")]
fn write_truncated(w: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        resp.status.0,
        resp.status.reason(),
        resp.body.len()
    );
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body[..crate::fault::truncated_len(resp.body.len())])?;
    w.flush()
}

/// Reads one request; `Ok(None)` means the peer closed before sending one.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| bad("unsupported method"))?;
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut req = Request {
        method,
        path: decode_component(raw_path),
        query: parse_query(raw_query),
        headers: Default::default(),
        body: Vec::new(),
        path_params: Default::default(),
    };

    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(bad("eof in headers"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (name, value) = hline.split_once(':').ok_or_else(|| bad("malformed header"))?;
        req.headers
            .insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if let Some(cl) = req.headers.get("content-length") {
        let n: usize = cl.parse().map_err(|_| bad("bad content-length"))?;
        if n > max_body {
            return Err(bad("body too large"));
        }
        let mut body = vec![0u8; n];
        reader.read_exact(&mut body)?;
        req.body = body;
    }
    Ok(Some(req))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn write_response(w: &mut TcpStream, resp: &Response, keep_alive: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status.0,
        resp.status.reason(),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (k, v) in &resp.headers {
        if k != "content-length" && k != "connection" {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn test_router() -> Router {
        let mut r = Router::new();
        r.get("/ping", |_| Response::text("pong"));
        r.post("/echo", |req| {
            Response::text(String::from_utf8_lossy(&req.body).into_owned())
        });
        r.get("/hdr", |req| {
            Response::text(req.header("x-grafana-user").unwrap_or("-").to_string())
        });
        r
    }

    #[test]
    fn end_to_end_get_and_post() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let client = Client::new();
        let resp = client.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_string(), "pong");

        let resp = client
            .post(
                &format!("{}/echo", server.base_url()),
                b"hello world".to_vec(),
                "text/plain",
            )
            .unwrap();
        assert_eq!(resp.body_string(), "hello world");
        server.shutdown();
    }

    #[test]
    fn basic_auth_enforced() {
        let auth = BasicAuth::new("prom", "secret");
        let server = HttpServer::serve(
            ServerConfig::ephemeral().with_basic_auth(auth.clone()),
            test_router(),
        )
        .unwrap();

        let unauth = Client::new();
        let resp = unauth.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::UNAUTHORIZED);
        assert!(resp.header("www-authenticate").is_some());

        let authed = Client::new().with_basic_auth(auth);
        let resp = authed.get(&format!("{}/ping", server.base_url())).unwrap();
        assert_eq!(resp.status, Status::OK);
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let req = b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n";
        stream.write_all(req).unwrap();
        stream.write_all(req).unwrap();
        stream.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert_eq!(buf.matches("HTTP/1.1 200 OK").count(), 3);
        assert_eq!(buf.matches("pong").count(), 3);
        server.shutdown();
    }

    #[test]
    fn custom_headers_reach_handler() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let client = Client::new().with_header("X-Grafana-User", "alice");
        let resp = client.get(&format!("{}/hdr", server.base_url())).unwrap();
        assert_eq!(resp.body_string(), "alice");
        server.shutdown();
    }

    #[test]
    fn unknown_route_404() {
        let server = HttpServer::serve(ServerConfig::ephemeral(), test_router()).unwrap();
        let resp = Client::new()
            .get(&format!("{}/nope", server.base_url()))
            .unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected() {
        let mut cfg = ServerConfig::ephemeral();
        cfg.max_body_bytes = 8;
        let server = HttpServer::serve(cfg, test_router()).unwrap();
        let resp = Client::new()
            .post(
                &format!("{}/echo", server.base_url()),
                vec![b'x'; 64],
                "text/plain",
            )
            .unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }
}
