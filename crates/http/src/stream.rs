//! Streaming response bodies over chunked transfer-encoding (S23).
//!
//! A handler that wants to hold a response open — a live query
//! subscription, a stream-bus subscribe — calls
//! [`crate::types::Response::streaming`] and gets back a [`StreamWriter`].
//! The response carries the consumer half ([`BodyStream`]); when the
//! reactor applies the completion it serializes a chunked head, parks the
//! connection in a `Streaming` state, and from then on drains whatever the
//! writer queues into the socket (chunk-encoded) on every loop pass plus an
//! eventfd wake per `send`. The connection always closes at stream end:
//! chunked responses never re-enter keep-alive rotation.
//!
//! Backpressure and shedding (S19): the queue between writer and reactor is
//! byte-bounded. A consumer that stops reading fills the reactor's outbound
//! buffer, the queue backs up past its cap, and the stream is marked
//! aborted — the producer observes this as `send` returning `false` and
//! drops the subscriber instead of buffering without bound. Likewise a
//! closed or timed-out connection aborts the stream, so producers never
//! push into the void.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// Default cap on bytes queued between a writer and the reactor before the
/// stream sheds its consumer (4 MiB, matching the reactor's own outbound
/// backlog cap for streaming connections).
pub const DEFAULT_STREAM_BUFFER: usize = 4 << 20;

struct Inner {
    chunks: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Producer called `close`: drain what is queued, then finish.
    closed: bool,
    /// Consumer is gone (disconnect, timeout, shed): sends are discarded.
    aborted: bool,
}

/// Shared state between one [`StreamWriter`] and one [`BodyStream`].
pub(crate) struct StreamCore {
    inner: Mutex<Inner>,
    /// Installed by the owning reactor so `send` can pop it out of
    /// `epoll_wait` immediately instead of waiting for the next tick.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    max_buffered: usize,
}

impl StreamCore {
    fn wake(&self) {
        if let Some(w) = self.waker.lock().clone() {
            w();
        }
    }
}

/// Producer half of a streaming response body.
#[derive(Clone)]
pub struct StreamWriter {
    core: Arc<StreamCore>,
}

impl StreamWriter {
    /// Queues one chunk for the consumer. Returns `false` once the stream
    /// is aborted (consumer disconnected or shed) — the producer should
    /// drop the subscription. Empty sends are accepted and ignored.
    pub fn send(&self, data: impl Into<Vec<u8>>) -> bool {
        let data = data.into();
        let mut inner = self.core.inner.lock();
        if inner.aborted {
            return false;
        }
        if inner.closed {
            return false;
        }
        if data.is_empty() {
            return true;
        }
        if inner.queued_bytes + data.len() > self.core.max_buffered {
            // Slow consumer: shed rather than grow without bound.
            inner.aborted = true;
            inner.chunks.clear();
            inner.queued_bytes = 0;
            return false;
        }
        inner.queued_bytes += data.len();
        inner.chunks.push_back(data);
        drop(inner);
        self.core.wake();
        true
    }

    /// Marks the stream finished; queued chunks still drain, then the
    /// terminating chunk is written and the connection closes.
    pub fn close(&self) {
        self.core.inner.lock().closed = true;
        self.core.wake();
    }

    /// True once the consumer is gone and sends are futile.
    pub fn is_aborted(&self) -> bool {
        self.core.inner.lock().aborted
    }

    /// Bytes queued and not yet taken by the reactor (consumer lag).
    pub fn queued_bytes(&self) -> usize {
        self.core.inner.lock().queued_bytes
    }
}

/// Consumer half of a streaming response body, carried by
/// [`crate::types::Response`] and drained by the reactor.
#[derive(Clone)]
pub struct BodyStream {
    core: Arc<StreamCore>,
}

impl std::fmt::Debug for BodyStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.core.inner.lock();
        f.debug_struct("BodyStream")
            .field("queued_bytes", &inner.queued_bytes)
            .field("closed", &inner.closed)
            .field("aborted", &inner.aborted)
            .finish()
    }
}

impl BodyStream {
    /// Takes every queued chunk. The `bool` is true when the producer has
    /// closed the stream and nothing more will arrive. Public so in-process
    /// consumers (the simulated stack, tests) can drain a stream without a
    /// socket; over HTTP the reactor is the only caller.
    pub fn take_chunks(&self) -> (Vec<Vec<u8>>, bool) {
        let mut inner = self.core.inner.lock();
        let chunks: Vec<Vec<u8>> = inner.chunks.drain(..).collect();
        inner.queued_bytes = 0;
        (chunks, inner.closed)
    }

    /// Installs the reactor's wake callback.
    pub(crate) fn set_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        *self.core.waker.lock() = Some(waker);
    }

    /// Consumer is gone: discard queued data and fail future sends.
    pub fn abort(&self) {
        let mut inner = self.core.inner.lock();
        inner.aborted = true;
        inner.chunks.clear();
        inner.queued_bytes = 0;
    }
}

/// Creates a connected consumer/producer pair with a byte cap on the
/// in-flight queue. [`crate::types::Response::streaming`] is the usual
/// entry point; this is public for in-process consumers that never touch a
/// socket.
pub fn stream_pair(max_buffered: usize) -> (BodyStream, StreamWriter) {
    let core = Arc::new(StreamCore {
        inner: Mutex::new(Inner {
            chunks: VecDeque::new(),
            queued_bytes: 0,
            closed: false,
            aborted: false,
        }),
        waker: Mutex::new(None),
        max_buffered,
    });
    (
        BodyStream { core: core.clone() },
        StreamWriter { core },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_take_close_roundtrip() {
        let (body, writer) = stream_pair(1024);
        assert!(writer.send(b"one".to_vec()));
        assert!(writer.send(b"two".to_vec()));
        let (chunks, closed) = body.take_chunks();
        assert_eq!(chunks, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!closed);
        writer.close();
        let (chunks, closed) = body.take_chunks();
        assert!(chunks.is_empty());
        assert!(closed);
        assert!(!writer.send(b"late".to_vec()), "send after close fails");
    }

    #[test]
    fn overfull_queue_sheds_the_stream() {
        let (body, writer) = stream_pair(8);
        assert!(writer.send(b"12345".to_vec()));
        assert!(!writer.send(b"67890".to_vec()), "over cap: shed");
        assert!(writer.is_aborted());
        let (chunks, _) = body.take_chunks();
        assert!(chunks.is_empty(), "aborted queue is discarded");
    }

    #[test]
    fn abort_fails_future_sends_and_wakes() {
        let woken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let (body, writer) = stream_pair(1024);
        let w = woken.clone();
        body.set_waker(Arc::new(move || {
            w.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        assert!(writer.send(b"x".to_vec()));
        assert!(woken.load(std::sync::atomic::Ordering::Relaxed) >= 1);
        body.abort();
        assert!(!writer.send(b"y".to_vec()));
        assert!(writer.is_aborted());
    }
}
