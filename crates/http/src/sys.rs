//! Thin raw-libc bindings for the epoll reactor (Linux).
//!
//! The substrate stays zero-heavy-deps: instead of pulling in `libc`/`mio`,
//! this module declares exactly the handful of syscall wrappers the reactor
//! needs — epoll, eventfd, a listener with a configurable backlog, and
//! `RLIMIT_NOFILE` introspection for the connection-storm bench. `std`
//! already links the platform libc, so plain `extern "C"` declarations
//! resolve without any new dependency.

#![allow(non_camel_case_types)]

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::{FromRawFd, RawFd};

use std::ffi::{c_int, c_uint, c_void};

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to request).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;

const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 only.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Ready/interest mask (`EPOLL*` bits).
    pub events: u32,
    /// User data: the reactor stores the connection fd here.
    pub u64: u64,
}

#[repr(C)]
struct sockaddr_in {
    sin_family: u16,
    sin_port: u16, // network byte order
    sin_addr: u32, // network byte order
    sin_zero: [u8; 8],
}

#[repr(C)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const sockaddr_in, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Registers `fd` with the given interest mask; `token` comes back in
    /// ready events.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event {
            events: interest,
            u64: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
    }

    /// Changes the interest mask for a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = epoll_event {
            events: interest,
            u64: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
    }

    /// Deregisters a fd. Errors are ignorable (closing the fd deregisters
    /// too), so this returns nothing.
    pub fn delete(&self, fd: RawFd) {
        let mut ev = epoll_event { events: 0, u64: 0 };
        unsafe {
            epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev);
        }
    }

    /// Waits up to `timeout_ms` (-1 = forever) for ready events, filling
    /// `events` and returning how many are valid. EINTR reads as zero
    /// events so callers simply loop.
    pub fn wait(&self, events: &mut [epoll_event], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// An eventfd used to wake a reactor from `epoll_wait` (new connections
/// handed over by the acceptor, handler completions posted by workers).
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking close-on-exec eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd (for epoll registration).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Posts one wake-up. Lossy by design: the counter saturating or the
    /// write racing a close are both fine — the reactor drains everything
    /// pending whenever it wakes.
    pub fn notify(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, &one as *const u64 as *const c_void, 8);
        }
    }

    /// Drains the counter after a wake-up.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(self.fd, &mut buf as *mut u64 as *mut c_void, 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

// An eventfd is just a counter fd; notify/drain are thread-safe.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

/// Binds a TCP listener with an explicit accept backlog (std hardcodes
/// 128, which a connection storm overflows: SYNs beyond the backlog see
/// resets). IPv4 goes through raw syscalls; anything else falls back to
/// `TcpListener::bind` and the std backlog.
pub fn listen_with_backlog(addr: &str, backlog: i32) -> io::Result<TcpListener> {
    let parsed: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}: {e}")))?;
    let SocketAddr::V4(v4) = parsed else {
        return TcpListener::bind(addr);
    };
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // From here on the fd must be closed on every error path.
    let result = (|| {
        let yes: c_int = 1;
        cvt(unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &yes as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            )
        })?;
        let sa = sockaddr_in {
            sin_family: AF_INET as u16,
            sin_port: v4.port().to_be(),
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        cvt(unsafe { bind(fd, &sa, std::mem::size_of::<sockaddr_in>() as u32) })?;
        cvt(unsafe { listen(fd, backlog.max(1)) })?;
        Ok(())
    })();
    match result {
        Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
        Err(e) => {
            unsafe {
                close(fd);
            }
            Err(e)
        }
    }
}

/// Returns the current `RLIMIT_NOFILE` soft limit, after a best-effort
/// attempt to raise it to at least `want` (capped at the hard limit; root
/// may raise the hard limit too). The connection-storm bench calls this so
/// 2×10k sockets in one process don't trip fd exhaustion.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    // Within the hard limit first; then try raising the hard limit (works
    // for root / CAP_SYS_RESOURCE, which the CI container has).
    let tries = [
        rlimit {
            rlim_cur: want.min(lim.rlim_max),
            rlim_max: lim.rlim_max,
        },
        rlimit {
            rlim_cur: want,
            rlim_max: want.max(lim.rlim_max),
        },
    ];
    for t in &tries {
        if unsafe { setrlimit(RLIMIT_NOFILE, t) } == 0 && t.rlim_cur >= want {
            return t.rlim_cur;
        }
    }
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
        lim.rlim_cur
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();
        let mut events = [epoll_event { events: 0, u64: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no wake yet");
        ev.notify();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = { events[0].u64 };
        assert_eq!(token, 7);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn listener_with_backlog_accepts() {
        let listener = listen_with_backlog("127.0.0.1:0", 64).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = TcpStream::connect(addr).unwrap();
        let (mut s, _) = listener.accept().unwrap();
        c.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn epoll_reports_socket_readability() {
        let listener = listen_with_backlog("127.0.0.1:0", 16).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = TcpStream::connect(addr).unwrap();
        let (s, _) = listener.accept().unwrap();
        s.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(s.as_raw_fd(), EPOLLIN | EPOLLRDHUP | EPOLLET, 42)
            .unwrap();
        let mut events = [epoll_event { events: 0, u64: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        c.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = { events[0].u64 };
        assert_eq!(token, 42);
        assert_ne!(events[0].events & EPOLLIN, 0);
    }

    #[test]
    fn nofile_limit_query_is_sane() {
        let cur = raise_nofile_limit(1024);
        assert!(cur >= 1024, "soft limit {cur} unexpectedly tiny");
    }
}
