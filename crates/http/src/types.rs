//! HTTP request/response types.

use std::collections::BTreeMap;
use std::fmt;

/// HTTP method subset used by the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// Wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Status codes used by the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 204
    pub const NO_CONTENT: Status = Status(204);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 401
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403
    pub const FORBIDDEN: Status = Status(403);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 405
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    /// 422
    pub const UNPROCESSABLE: Status = Status(422);
    /// 429
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    /// 500
    pub const INTERNAL: Status = Status(500);
    /// 502
    pub const BAD_GATEWAY: Status = Status(502);
    /// 503
    pub const UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names to values.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Path parameters captured by the router (filled in at dispatch).
    pub path_params: BTreeMap<String, String>,
    /// When the server finished parsing the request off the socket. On a
    /// pipelined keep-alive connection this can be well before a worker picks
    /// the request up, so latency instruments and trace stage clocks anchor at
    /// handler dispatch and surface the gap separately as queue delay —
    /// otherwise `sum(stages)` could exceed a total measured from dispatch.
    pub received_at: Option<std::time::Instant>,
}

impl Request {
    /// Creates a request for client use / tests.
    pub fn new(method: Method, path_and_query: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), crate::url::parse_query(q)),
            None => (path_and_query.to_string(), Vec::new()),
        };
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            path_params: BTreeMap::new(),
            received_at: None,
        }
    }

    /// Sets a header (names are stored lower-case).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.insert(name.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// Gets a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query parameters with the given name (PromQL APIs repeat `match[]`).
    pub fn query_params(&self, name: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Path parameter captured by the router.
    pub fn path_param(&self, name: &str) -> Option<&str> {
        self.path_params.get(name).map(|s| s.as_str())
    }

    /// Reassembles `path?query` with percent-encoding, for proxying.
    pub fn path_and_query(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, crate::url::encode_query(&self.query))
        }
    }
}

/// An HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Lower-cased header names to values.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Streaming body (S23). When set, `body` is ignored: the server
    /// serializes the head with `transfer-encoding: chunked`, keeps the
    /// connection open, and drains whatever the paired
    /// [`crate::stream::StreamWriter`] queues until it closes. Streaming
    /// connections never re-enter keep-alive rotation.
    pub stream: Option<crate::stream::BodyStream>,
}

impl Response {
    /// Empty response with a status.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
            stream: None,
        }
    }

    /// A streaming response: the returned writer queues body chunks for as
    /// long as it lives; [`crate::stream::StreamWriter::close`] ends the
    /// stream (and the connection). The handler returns the `Response`
    /// immediately and hands the writer to whatever produces data later.
    pub fn streaming(status: Status) -> (Response, crate::stream::StreamWriter) {
        let (body, writer) = crate::stream::stream_pair(crate::stream::DEFAULT_STREAM_BUFFER);
        let mut resp = Response::status(status);
        resp.stream = Some(body);
        (resp, writer)
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Response {
        Response::status(Status::OK)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::status(Status::OK)
            .with_header("content-type", "application/json")
            .with_body(body)
    }

    /// Error response with a plain-text message.
    pub fn error(status: Status, message: impl Into<String>) -> Response {
        Response::status(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(message.into().into_bytes())
    }

    /// Sets a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.insert(name.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// Gets a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Sets a `Retry-After` header from delta-seconds. Whole seconds are
    /// rendered bare (`Retry-After: 2`, the RFC 9110 form); fractional
    /// delays keep millisecond precision for the in-stack clients that
    /// understand them.
    pub fn with_retry_after(self, secs: f64) -> Response {
        let secs = secs.max(0.0);
        let value = if secs.fract() == 0.0 {
            format!("{}", secs as u64)
        } else {
            format!("{secs:.3}")
        };
        self.with_header("retry-after", value)
    }

    /// Sets a `Retry-After` header as an HTTP-date (IMF-fixdate), the other
    /// form RFC 9110 allows. In-stack components emit delta-seconds; this
    /// exists for compatibility tests and external callers.
    pub fn with_retry_after_date(self, at_unix_s: i64) -> Response {
        self.with_header("retry-after", format_http_date(at_unix_s))
    }

    /// Parses a `Retry-After` header as delta-seconds.
    ///
    /// RFC 9110 allows either delta-seconds or an HTTP-date; every
    /// component in this stack (LB, query frontend, WAL leader) emits
    /// delta-seconds, so dates and anything else unparseable yield
    /// `None` and callers fall back to their own backoff. Use
    /// [`Response::retry_after_secs_at`] to also honour HTTP-dates.
    pub fn retry_after_secs(&self) -> Option<f64> {
        let raw = self.header("retry-after")?.trim();
        let secs: f64 = raw.parse().ok()?;
        if secs.is_finite() && secs >= 0.0 {
            Some(secs)
        } else {
            None
        }
    }

    /// Parses `Retry-After` accepting both delta-seconds and the IMF-fixdate
    /// HTTP-date form, evaluated against `now_unix_s`. Dates in the past
    /// clamp to `0` (retry immediately), matching RFC 9110 semantics.
    pub fn retry_after_secs_at(&self, now_unix_s: i64) -> Option<f64> {
        if let Some(s) = self.retry_after_secs() {
            return Some(s);
        }
        let raw = self.header("retry-after")?.trim();
        let at = parse_http_date(raw)?;
        Some(at.saturating_sub(now_unix_s).max(0) as f64)
    }
}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const WEEKDAYS: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];

/// Civil date → days since the Unix epoch (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Days since the Unix epoch → civil date (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Formats a Unix timestamp as an IMF-fixdate (`Sun, 06 Nov 1994 08:49:37 GMT`).
pub fn format_http_date(unix_s: i64) -> String {
    let days = unix_s.div_euclid(86_400);
    let secs = unix_s.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    let weekday = WEEKDAYS[(days.rem_euclid(7) + 4) as usize % 7];
    format!(
        "{weekday}, {d:02} {} {y:04} {:02}:{:02}:{:02} GMT",
        MONTHS[(m - 1) as usize],
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// Parses an IMF-fixdate into a Unix timestamp. Returns `None` for the
/// obsolete RFC 850 / asctime forms and anything malformed.
pub fn parse_http_date(s: &str) -> Option<i64> {
    // "Sun, 06 Nov 1994 08:49:37 GMT"
    let rest = s.split_once(", ").map(|(_, r)| r)?;
    let mut parts = rest.split_ascii_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let month = parts.next()?;
    let month = MONTHS.iter().position(|m| *m == month)? as u32 + 1;
    let year: i64 = parts.next()?.parse().ok()?;
    let mut hms = parts.next()?.splitn(3, ':');
    let h: i64 = hms.next()?.parse().ok()?;
    let min: i64 = hms.next()?.parse().ok()?;
    let sec: i64 = hms.next()?.parse().ok()?;
    if parts.next()? != "GMT" || parts.next().is_some() {
        return None;
    }
    if day == 0 || day > 31 || h > 23 || min > 59 || sec > 60 || !(0..=9999).contains(&year) {
        return None;
    }
    days_from_civil(year, month, day)
        .checked_mul(86_400)?
        .checked_add(h * 3600 + min * 60 + sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Put, Method::Delete, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn request_query_access() {
        let r = Request::new(Method::Get, "/api/query?query=up&time=12&match[]=a&match[]=b");
        assert_eq!(r.path, "/api/query");
        assert_eq!(r.query_param("query"), Some("up"));
        assert_eq!(r.query_params("match[]"), vec!["a", "b"]);
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn header_case_insensitive() {
        let r = Request::new(Method::Get, "/").with_header("X-Grafana-User", "alice");
        assert_eq!(r.header("x-grafana-user"), Some("alice"));
        assert_eq!(r.header("X-GRAFANA-USER"), Some("alice"));
    }

    #[test]
    fn path_and_query_roundtrip() {
        let r = Request::new(Method::Get, "/q?a=1%202&b=x");
        assert_eq!(r.query_param("a"), Some("1 2"));
        let pq = r.path_and_query();
        let r2 = Request::new(Method::Get, &pq);
        assert_eq!(r2.query_param("a"), Some("1 2"));
    }

    #[test]
    fn response_helpers() {
        let r = Response::text("hello");
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.body_string(), "hello");
        assert!(Status::OK.is_success());
        assert!(!Status::FORBIDDEN.is_success());
        assert_eq!(Status::FORBIDDEN.reason(), "Forbidden");
    }

    #[test]
    fn retry_after_roundtrip() {
        assert_eq!(Status::TOO_MANY_REQUESTS.reason(), "Too Many Requests");
        let r = Response::status(Status::TOO_MANY_REQUESTS).with_retry_after(2.0);
        assert_eq!(r.header("retry-after"), Some("2"));
        assert_eq!(r.retry_after_secs(), Some(2.0));
        let r = Response::status(Status::TOO_MANY_REQUESTS).with_retry_after(0.25);
        assert_eq!(r.header("retry-after"), Some("0.250"));
        assert_eq!(r.retry_after_secs(), Some(0.25));
        // Negative delays clamp to zero on emit.
        let r = Response::status(Status::OK).with_retry_after(-3.0);
        assert_eq!(r.retry_after_secs(), Some(0.0));
    }

    #[test]
    fn retry_after_edge_case_table() {
        // (header value, now_unix_s, expected retry_after_secs_at)
        let cases: &[(&str, i64, Option<f64>)] = &[
            // Delta-seconds forms.
            ("0", 0, Some(0.0)),
            ("2", 0, Some(2.0)),
            ("0.250", 0, Some(0.25)),
            ("-1", 0, None),
            ("-0.5", 0, None),
            ("inf", 0, None),
            ("nan", 0, None),
            ("1e309", 0, None), // overflows f64 to inf
            ("99999999999999999999", 0, Some(1e20)), // finite, caller caps
            ("", 0, None),
            ("two", 0, None),
            // HTTP-date forms (784_111_777 = Sun, 06 Nov 1994 08:49:37 GMT).
            ("Sun, 06 Nov 1994 08:49:37 GMT", 784_111_777, Some(0.0)),
            ("Sun, 06 Nov 1994 08:49:37 GMT", 784_111_747, Some(30.0)),
            // Dates in the past clamp to zero instead of going negative.
            ("Sun, 06 Nov 1994 08:49:37 GMT", 784_200_000, Some(0.0)),
            // Malformed / unsupported date forms.
            ("Sunday, 06-Nov-94 08:49:37 GMT", 0, None), // RFC 850
            ("Sun Nov  6 08:49:37 1994", 0, None),       // asctime
            ("Sun, 06 Nov 1994 08:49:37 UTC", 0, None),
            ("Sun, 06 Foo 1994 08:49:37 GMT", 0, None),
            ("Sun, 32 Nov 1994 08:49:37 GMT", 0, None),
            ("Sun, 06 Nov 1994 24:00:00 GMT", 0, None),
            ("Sun, 06 Nov 99999 08:49:37 GMT", 0, None), // year overflow
        ];
        for (value, now, want) in cases {
            let r = Response::status(Status::TOO_MANY_REQUESTS).with_header("retry-after", *value);
            assert_eq!(
                r.retry_after_secs_at(*now),
                *want,
                "retry-after {value:?} at {now}"
            );
        }
        assert_eq!(Response::status(Status::OK).retry_after_secs_at(0), None);
    }

    #[test]
    fn retry_after_http_date_emit_parse_roundtrip() {
        // Known fixture from RFC 9110.
        assert_eq!(format_http_date(784_111_777), "Sun, 06 Nov 1994 08:49:37 GMT");
        assert_eq!(
            parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT"),
            Some(784_111_777)
        );
        // Round-trips across epochs, leap years and century boundaries.
        for unix in [
            0i64,
            86_399,
            951_827_696,   // 29 Feb 2000 (leap century)
            1_078_012_800, // 29 Feb 2004
            2_147_483_647, // 32-bit rollover
            4_102_444_800, // 1 Jan 2100 (non-leap century)
        ] {
            let s = format_http_date(unix);
            assert_eq!(parse_http_date(&s), Some(unix), "roundtrip {s}");
        }
        // Emitted dates are honoured by the combined parser.
        let r = Response::status(Status::UNAVAILABLE).with_retry_after_date(1_000_060);
        assert_eq!(r.retry_after_secs(), None, "dates are opaque to delta-only");
        assert_eq!(r.retry_after_secs_at(1_000_000), Some(60.0));
    }

    #[test]
    fn retry_after_rejects_opaque_values() {
        let date = Response::status(Status::OK)
            .with_header("retry-after", "Fri, 07 Aug 2026 12:00:00 GMT");
        assert_eq!(date.retry_after_secs(), None);
        let neg = Response::status(Status::OK).with_header("retry-after", "-1");
        assert_eq!(neg.retry_after_secs(), None);
        let inf = Response::status(Status::OK).with_header("retry-after", "inf");
        assert_eq!(inf.retry_after_secs(), None);
        assert_eq!(Response::status(Status::OK).retry_after_secs(), None);
    }
}
