//! HTTP request/response types.

use std::collections::BTreeMap;
use std::fmt;

/// HTTP method subset used by the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// Wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Status codes used by the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 204
    pub const NO_CONTENT: Status = Status(204);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 401
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403
    pub const FORBIDDEN: Status = Status(403);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 405
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    /// 422
    pub const UNPROCESSABLE: Status = Status(422);
    /// 429
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    /// 500
    pub const INTERNAL: Status = Status(500);
    /// 502
    pub const BAD_GATEWAY: Status = Status(502);
    /// 503
    pub const UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path (no query string).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Lower-cased header names to values.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Path parameters captured by the router (filled in at dispatch).
    pub path_params: BTreeMap<String, String>,
}

impl Request {
    /// Creates a request for client use / tests.
    pub fn new(method: Method, path_and_query: &str) -> Request {
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_string(), crate::url::parse_query(q)),
            None => (path_and_query.to_string(), Vec::new()),
        };
        Request {
            method,
            path,
            query,
            headers: BTreeMap::new(),
            body: Vec::new(),
            path_params: BTreeMap::new(),
        }
    }

    /// Sets a header (names are stored lower-case).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.insert(name.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// Gets a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query parameters with the given name (PromQL APIs repeat `match[]`).
    pub fn query_params(&self, name: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Path parameter captured by the router.
    pub fn path_param(&self, name: &str) -> Option<&str> {
        self.path_params.get(name).map(|s| s.as_str())
    }

    /// Reassembles `path?query` with percent-encoding, for proxying.
    pub fn path_and_query(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, crate::url::encode_query(&self.query))
        }
    }
}

/// An HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Lower-cased header names to values.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Empty response with a status.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Response {
        Response::status(Status::OK)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::status(Status::OK)
            .with_header("content-type", "application/json")
            .with_body(body)
    }

    /// Error response with a plain-text message.
    pub fn error(status: Status, message: impl Into<String>) -> Response {
        Response::status(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(message.into().into_bytes())
    }

    /// Sets a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.insert(name.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// Gets a header by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Sets a `Retry-After` header from delta-seconds. Whole seconds are
    /// rendered bare (`Retry-After: 2`, the RFC 9110 form); fractional
    /// delays keep millisecond precision for the in-stack clients that
    /// understand them.
    pub fn with_retry_after(self, secs: f64) -> Response {
        let secs = secs.max(0.0);
        let value = if secs.fract() == 0.0 {
            format!("{}", secs as u64)
        } else {
            format!("{secs:.3}")
        };
        self.with_header("retry-after", value)
    }

    /// Parses a `Retry-After` header as delta-seconds.
    ///
    /// RFC 9110 allows either delta-seconds or an HTTP-date; every
    /// component in this stack (LB, query frontend, WAL leader) emits
    /// delta-seconds, so dates and anything else unparseable yield
    /// `None` and callers fall back to their own backoff.
    pub fn retry_after_secs(&self) -> Option<f64> {
        let raw = self.header("retry-after")?.trim();
        let secs: f64 = raw.parse().ok()?;
        if secs.is_finite() && secs >= 0.0 {
            Some(secs)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_roundtrip() {
        for m in [Method::Get, Method::Post, Method::Put, Method::Delete, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
    }

    #[test]
    fn request_query_access() {
        let r = Request::new(Method::Get, "/api/query?query=up&time=12&match[]=a&match[]=b");
        assert_eq!(r.path, "/api/query");
        assert_eq!(r.query_param("query"), Some("up"));
        assert_eq!(r.query_params("match[]"), vec!["a", "b"]);
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn header_case_insensitive() {
        let r = Request::new(Method::Get, "/").with_header("X-Grafana-User", "alice");
        assert_eq!(r.header("x-grafana-user"), Some("alice"));
        assert_eq!(r.header("X-GRAFANA-USER"), Some("alice"));
    }

    #[test]
    fn path_and_query_roundtrip() {
        let r = Request::new(Method::Get, "/q?a=1%202&b=x");
        assert_eq!(r.query_param("a"), Some("1 2"));
        let pq = r.path_and_query();
        let r2 = Request::new(Method::Get, &pq);
        assert_eq!(r2.query_param("a"), Some("1 2"));
    }

    #[test]
    fn response_helpers() {
        let r = Response::text("hello");
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.body_string(), "hello");
        assert!(Status::OK.is_success());
        assert!(!Status::FORBIDDEN.is_success());
        assert_eq!(Status::FORBIDDEN.reason(), "Forbidden");
    }

    #[test]
    fn retry_after_roundtrip() {
        assert_eq!(Status::TOO_MANY_REQUESTS.reason(), "Too Many Requests");
        let r = Response::status(Status::TOO_MANY_REQUESTS).with_retry_after(2.0);
        assert_eq!(r.header("retry-after"), Some("2"));
        assert_eq!(r.retry_after_secs(), Some(2.0));
        let r = Response::status(Status::TOO_MANY_REQUESTS).with_retry_after(0.25);
        assert_eq!(r.header("retry-after"), Some("0.250"));
        assert_eq!(r.retry_after_secs(), Some(0.25));
        // Negative delays clamp to zero on emit.
        let r = Response::status(Status::OK).with_retry_after(-3.0);
        assert_eq!(r.retry_after_secs(), Some(0.0));
    }

    #[test]
    fn retry_after_rejects_opaque_values() {
        let date = Response::status(Status::OK)
            .with_header("retry-after", "Fri, 07 Aug 2026 12:00:00 GMT");
        assert_eq!(date.retry_after_secs(), None);
        let neg = Response::status(Status::OK).with_header("retry-after", "-1");
        assert_eq!(neg.retry_after_secs(), None);
        let inf = Response::status(Status::OK).with_header("retry-after", "inf");
        assert_eq!(inf.retry_after_secs(), None);
        assert_eq!(Response::status(Status::OK).retry_after_secs(), None);
    }
}
