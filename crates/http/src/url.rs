//! Percent-coding and query-string handling.

/// Percent-encodes a query component (RFC 3986 unreserved characters pass
/// through; space becomes `%20`).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{:02X}", b)),
        }
    }
    out
}

/// Decodes percent-encoding; `+` decodes to space (form encoding).
/// Invalid escapes are passed through literally.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string into ordered `(key, value)` pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(part), String::new()),
        })
        .collect()
}

/// Encodes ordered pairs back into a query string.
pub fn encode_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let s = "rate(job_power{uuid=\"123\"}[5m]) + 1";
        assert_eq!(decode_component(&encode_component(s)), s);
    }

    #[test]
    fn plus_decodes_to_space() {
        assert_eq!(decode_component("a+b"), "a b");
        // But encode never emits '+'.
        assert_eq!(encode_component("a b"), "a%20b");
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(decode_component("100%"), "100%");
        assert_eq!(decode_component("%zz"), "%zz");
        assert_eq!(decode_component("%4"), "%4");
    }

    #[test]
    fn parse_query_pairs() {
        let q = parse_query("a=1&b=two%20words&flag&empty=");
        assert_eq!(
            q,
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "two words".into()),
                ("flag".into(), "".into()),
                ("empty".into(), "".into()),
            ]
        );
    }

    #[test]
    fn query_roundtrip() {
        let pairs = vec![
            ("query".to_string(), "up{instance=\"n1\"}".to_string()),
            ("time".to_string(), "123.5".to_string()),
        ];
        let parsed = parse_query(&encode_query(&pairs));
        assert_eq!(parsed, pairs);
    }

    #[test]
    fn utf8_decoding() {
        assert_eq!(decode_component("%C3%A9"), "é");
        assert_eq!(encode_component("é"), "%C3%A9");
    }
}
