//! Concurrent-load smoke test for the HTTP substrate: many clients, one
//! worker pool, no lost or corrupted responses.

use std::sync::atomic::{AtomicU64, Ordering};

use ceems_http::{Client, HttpServer, Response, Router, ServerConfig};

#[test]
fn many_concurrent_clients() {
    let mut router = Router::new();
    router.get("/echo/:n", |req| {
        Response::text(format!("n={}", req.path_param("n").unwrap()))
    });
    router.post("/sum", |req| {
        let total: u64 = req
            .body
            .iter()
            .map(|&b| b as u64)
            .sum();
        Response::text(total.to_string())
    });
    let server = HttpServer::serve(
        ServerConfig::ephemeral().with_workers(4),
        router,
    )
    .unwrap();
    let base = server.base_url();

    let ok = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..16u64 {
            let base = base.clone();
            let ok = &ok;
            s.spawn(move || {
                let client = Client::new();
                for i in 0..25u64 {
                    let n = t * 1000 + i;
                    let resp = client.get(&format!("{base}/echo/{n}")).unwrap();
                    assert_eq!(resp.body_string(), format!("n={n}"), "mismatched response");
                    let body = vec![(n % 251) as u8; 64];
                    let want: u64 = body.iter().map(|&b| b as u64).sum();
                    let resp = client
                        .post(&format!("{base}/sum"), body, "application/octet-stream")
                        .unwrap();
                    assert_eq!(resp.body_string(), want.to_string());
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(ok.load(Ordering::Relaxed), 16 * 25);
    server.shutdown();
}
