//! Edge-case integration tests for the epoll reactor (S20): partial
//! reads, pipelining, slowloris, shutdown drain, connection guard, and
//! client-side keep-alive pooling — all over raw sockets where the shape
//! of the bytes on the wire matters.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ceems_http::server::{HttpServer, ServerConfig};
use ceems_http::types::{Response, Status};
use ceems_http::{Client, Router};

fn echo_server(config: ServerConfig) -> HttpServer {
    let mut router = Router::new();
    router.get("/ping", |_req| Response::text("pong"));
    router.post("/echo", |req| {
        Response::status(Status::OK)
            .with_header("content-type", "application/octet-stream")
            .with_body(req.body.clone())
    });
    HttpServer::serve(config, router).expect("serve")
}

fn test_config() -> ServerConfig {
    ServerConfig::ephemeral().with_workers(2)
}

/// Reads exactly one HTTP/1.1 response (head + content-length body) off a
/// raw socket, tolerating arbitrary segmentation.
fn read_one_response(stream: &mut TcpStream) -> (String, Vec<u8>) {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "eof before response head completed: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .trim()
        .parse()
        .unwrap();
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "eof mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(body.len(), content_length, "no trailing bytes expected");
    (head, body)
}

#[test]
fn partial_reads_split_mid_header_and_mid_body() {
    let server = echo_server(test_config());
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();

    // Dribble a POST in five fragments, splitting inside the request line,
    // inside a header name, at the head/body boundary, and inside the body.
    let fragments: [&[u8]; 5] = [
        b"POST /ec",
        b"ho HTTP/1.1\r\nhost: x\r\nconte",
        b"nt-length: 11\r\n\r\n",
        b"hello ",
        b"world",
    ];
    for frag in fragments {
        s.write_all(frag).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let (head, body) = read_one_response(&mut s);
    assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "head: {head}");
    assert_eq!(body, b"hello world");
    server.shutdown();
}

#[test]
fn pipelined_requests_answered_in_order_on_one_socket() {
    let server = echo_server(test_config());
    let mut s = TcpStream::connect(server.addr()).unwrap();

    // Three requests in a single write: two GETs and a POST.
    let burst = b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n\
POST /echo HTTP/1.1\r\nhost: x\r\ncontent-length: 3\r\n\r\nabc\
GET /ping HTTP/1.1\r\nhost: x\r\n\r\n";
    s.write_all(burst).unwrap();

    let (h1, b1) = read_one_response(&mut s);
    let (h2, b2) = read_one_response(&mut s);
    let (h3, b3) = read_one_response(&mut s);
    assert!(h1.starts_with("HTTP/1.1 200"), "h1: {h1}");
    assert_eq!(b1, b"pong");
    assert!(h2.starts_with("HTTP/1.1 200"), "h2: {h2}");
    assert_eq!(b2, b"abc", "pipelined responses must stay in order");
    assert!(h3.starts_with("HTTP/1.1 200"), "h3: {h3}");
    assert_eq!(b3, b"pong");
    server.shutdown();
}

#[test]
fn slowloris_trickled_headers_hit_request_deadline() {
    let server = echo_server(
        test_config()
            .with_read_timeout(Duration::from_millis(400))
            .with_idle_timeout(Duration::from_millis(400)),
    );
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();

    // Never finish the head: one byte every 100 ms keeps per-read activity
    // fresh, so only a *total* per-request deadline can kill this.
    let head = b"GET /ping HTTP/1.1\r\nx-slow: ";
    let start = Instant::now();
    let mut closed = false;
    for (i, byte) in head.iter().cycle().enumerate() {
        if s.write_all(std::slice::from_ref(byte)).and_then(|_| s.flush()).is_err() {
            closed = true;
            break;
        }
        // A read observing EOF (Ok(0)) also proves the server gave up.
        let mut probe = [0u8; 16];
        match s.read(&mut probe) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(_) => panic!("server responded to an incomplete request"),
            Err(_) => {} // read timeout: connection still open, keep trickling
        }
        std::thread::sleep(Duration::from_millis(100));
        assert!(i < 100, "server never enforced the request deadline");
    }
    assert!(closed, "trickled connection should have been closed");
    assert!(
        start.elapsed() >= Duration::from_millis(300),
        "closed suspiciously fast — before the deadline could have fired"
    );
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_reaped_after_timeout() {
    let server = echo_server(test_config().with_idle_timeout(Duration::from_millis(300)));
    let mut s = TcpStream::connect(server.addr()).unwrap();

    // One complete request proves the connection works...
    s.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
    let (_, body) = read_one_response(&mut s);
    assert_eq!(body, b"pong");

    // ...then it sits idle past the timeout and the server closes it.
    s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let mut probe = [0u8; 16];
    let n = s.read(&mut probe).expect("expected clean EOF, not timeout");
    assert_eq!(n, 0, "idle connection should see EOF, got {n} bytes");
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let mut router = Router::new();
    router.get("/slow", |_req| {
        std::thread::sleep(Duration::from_millis(400));
        Response::text("done")
    });
    let server = HttpServer::serve(test_config(), router).unwrap();
    let url = format!("{}/slow", server.base_url());

    let t = std::thread::spawn(move || Client::new().get(&url));
    // Let the request reach the handler, then shut down around it.
    std::thread::sleep(Duration::from_millis(120));
    server.shutdown();

    let resp = t.join().unwrap().expect("in-flight request must drain");
    assert_eq!(resp.status, Status::OK);
    assert_eq!(resp.body, b"done");
}

#[test]
fn max_connections_guard_sheds_excess_sockets() {
    let server = echo_server(test_config().with_max_connections(2));

    // Two established, verified-working connections occupy the budget.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        let (_, body) = read_one_response(&mut s);
        assert_eq!(body, b"pong");
        held.push(s);
    }
    assert_eq!(server.active_connections(), 2);

    // The third is accepted and immediately closed without service.
    let mut s3 = TcpStream::connect(server.addr()).unwrap();
    s3.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let _ = s3.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n");
    let mut probe = [0u8; 16];
    match s3.read(&mut probe) {
        Ok(0) => {}                                       // clean EOF: shed
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {} // RST: shed
        Ok(n) => panic!("over-limit connection was served ({n} bytes)"),
        Err(e) => panic!("unexpected error on shed connection: {e}"),
    }

    // Freeing a slot lets a new connection in.
    drop(held.pop());
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let mut s4 = TcpStream::connect(server.addr()).unwrap();
        s4.write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        s4.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        let mut chunk = [0u8; 1024];
        match s4.read(&mut chunk) {
            Ok(n) if n > 0 => break, // served again
            _ => assert!(
                Instant::now() < deadline,
                "slot never freed after closing a held connection"
            ),
        }
    }
    server.shutdown();
}

#[test]
fn client_pool_reuses_connections_across_requests() {
    let server = echo_server(test_config());
    let url = format!("{}/ping", server.base_url());
    let client = Client::new();

    for _ in 0..5 {
        let resp = client.get(&url).unwrap();
        assert_eq!(resp.status, Status::OK);
    }
    let stats = client.pool_stats();
    assert!(
        stats.reused >= 4,
        "expected ≥4 pooled reuses over 5 sequential requests, got {stats:?}"
    );
    assert_eq!(stats.fresh, 1, "only the first request should dial");

    // The whole burst should ride one server-side connection.
    assert_eq!(server.active_connections(), 1);

    // A clone shares the pool; a pool of zero goes back to dial-per-request.
    let clone = client.clone();
    clone.get(&url).unwrap();
    assert_eq!(clone.pool_stats().fresh, 1, "clone reuses the shared pool");

    let unpooled = Client::new().with_pool_per_host(0);
    unpooled.get(&url).unwrap();
    unpooled.get(&url).unwrap();
    let s = unpooled.pool_stats();
    assert_eq!((s.reused, s.fresh), (0, 2), "pool_per_host(0) disables reuse");
    server.shutdown();
}
