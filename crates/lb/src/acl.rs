//! Ownership verification.
//!
//! The LB prefers reading the API server's DB directly when the file is
//! reachable, and falls back to the `/api/v1/verify` HTTP endpoint
//! otherwise — exactly the two paths Fig. 1 describes.

use std::sync::Arc;

use parking_lot::Mutex;

use ceems_apiserver::updater::{verify_ownership_in_db, Updater};
use ceems_http::Client;

/// How the LB verifies unit ownership.
pub enum Authorizer {
    /// Shared access to the API server's database (same host deployment).
    DirectDb(Arc<Mutex<Updater>>),
    /// HTTP calls to the API server.
    Api {
        /// HTTP client.
        client: Client,
        /// API server base URL.
        base_url: String,
    },
    /// Allow everything (benchmarks measuring pure proxy overhead).
    AllowAll,
}

impl Authorizer {
    /// HTTP authorizer.
    pub fn api(base_url: impl Into<String>) -> Authorizer {
        Authorizer::Api {
            client: Client::new(),
            base_url: base_url.into(),
        }
    }

    /// True when `user` owns every unit in `uuids`.
    pub fn verify(&self, user: &str, uuids: &[String]) -> bool {
        match self {
            Authorizer::AllowAll => true,
            Authorizer::DirectDb(updater) => {
                let upd = updater.lock();
                uuids
                    .iter()
                    .all(|uuid| verify_ownership_in_db(upd.db(), user, uuid))
            }
            Authorizer::Api { client, base_url } => {
                if uuids.is_empty() {
                    return true;
                }
                let qs: Vec<String> = uuids
                    .iter()
                    .map(|u| format!("uuid={}", ceems_http::url::encode_component(u)))
                    .collect();
                let url = format!("{}/api/v1/verify?{}", base_url, qs.join("&"));
                client
                    .clone()
                    .with_header("X-Grafana-User", user)
                    .get(&url)
                    .map(|r| r.status.is_success())
                    .unwrap_or(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all() {
        let a = Authorizer::AllowAll;
        assert!(a.verify("anyone", &["slurm-1".into()]));
    }

    #[test]
    fn api_authorizer_fails_closed_when_unreachable() {
        let a = Authorizer::api("http://127.0.0.1:1");
        assert!(!a.verify("alice", &["slurm-1".into()]));
        // Empty uuid list never needs the backend.
        assert!(a.verify("alice", &[]));
    }
}
