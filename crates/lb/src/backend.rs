//! TSDB backend pool and balancing strategies.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ceems_http::Client;

/// One TSDB replica behind the LB.
pub struct Backend {
    /// Backend id (for logs/metrics).
    pub id: String,
    /// Base URL, e.g. `http://127.0.0.1:9090`.
    pub base_url: String,
    healthy: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
}

impl Backend {
    /// Creates a backend assumed healthy.
    pub fn new(id: impl Into<String>, base_url: impl Into<String>) -> Arc<Backend> {
        Arc::new(Backend {
            id: id.into(),
            base_url: base_url.into(),
            healthy: AtomicBool::new(true),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
        })
    }

    /// Health flag.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Sets the health flag.
    pub fn set_healthy(&self, ok: bool) {
        self.healthy.store(ok, Ordering::Relaxed);
    }

    /// In-flight request count.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Marks a request in flight; the guard releases on drop.
    pub fn begin(self: &Arc<Self>) -> InFlight {
        self.active.fetch_add(1, Ordering::Relaxed);
        self.served.fetch_add(1, Ordering::Relaxed);
        InFlight {
            backend: self.clone(),
        }
    }
}

/// RAII guard for an in-flight proxied request.
pub struct InFlight {
    backend: Arc<Backend>,
}

impl Drop for InFlight {
    fn drop(&mut self) {
        self.backend.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Balancing strategy (§II.B.c names both).
#[derive(Debug)]
pub enum Strategy {
    /// Rotate through healthy backends.
    RoundRobin(AtomicUsize),
    /// Pick the healthy backend with the fewest in-flight requests.
    LeastConnection,
}

impl Strategy {
    /// Round-robin starting at 0.
    pub fn round_robin() -> Strategy {
        Strategy::RoundRobin(AtomicUsize::new(0))
    }
}

/// The pool.
pub struct BackendPool {
    backends: Vec<Arc<Backend>>,
    strategy: Strategy,
}

impl BackendPool {
    /// Creates a pool.
    pub fn new(backends: Vec<Arc<Backend>>, strategy: Strategy) -> BackendPool {
        BackendPool { backends, strategy }
    }

    /// All backends.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// Picks a healthy backend, or `None` when all are down.
    pub fn pick(&self) -> Option<Arc<Backend>> {
        let healthy: Vec<&Arc<Backend>> =
            self.backends.iter().filter(|b| b.is_healthy()).collect();
        if healthy.is_empty() {
            return None;
        }
        match &self.strategy {
            Strategy::RoundRobin(counter) => {
                let i = counter.fetch_add(1, Ordering::Relaxed) % healthy.len();
                Some(healthy[i].clone())
            }
            Strategy::LeastConnection => healthy
                .into_iter()
                .min_by_key(|b| b.active())
                .cloned(),
        }
    }

    /// Probes every backend's Prometheus API and updates health flags.
    /// Returns the number of healthy backends.
    pub fn health_check(&self, client: &Client) -> usize {
        let mut healthy = 0;
        for b in &self.backends {
            let ok = client
                .get(&format!("{}/api/v1/labels", b.base_url))
                .map(|r| r.status.is_success())
                .unwrap_or(false);
            b.set_healthy(ok);
            if ok {
                healthy += 1;
            }
        }
        healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(strategy: Strategy) -> BackendPool {
        BackendPool::new(
            vec![
                Backend::new("a", "http://a"),
                Backend::new("b", "http://b"),
                Backend::new("c", "http://c"),
            ],
            strategy,
        )
    }

    #[test]
    fn round_robin_rotates() {
        let p = pool(Strategy::round_robin());
        let picks: Vec<String> = (0..6).map(|_| p.pick().unwrap().id.clone()).collect();
        assert_eq!(picks, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let p = pool(Strategy::round_robin());
        p.backends()[1].set_healthy(false);
        let picks: Vec<String> = (0..4).map(|_| p.pick().unwrap().id.clone()).collect();
        assert!(!picks.contains(&"b".to_string()));
    }

    #[test]
    fn all_down_yields_none() {
        let p = pool(Strategy::round_robin());
        for b in p.backends() {
            b.set_healthy(false);
        }
        assert!(p.pick().is_none());
    }

    #[test]
    fn least_connection_prefers_idle() {
        let p = pool(Strategy::LeastConnection);
        let a = p.backends()[0].clone();
        let _guard1 = a.begin();
        let _guard2 = a.begin();
        let b = p.backends()[1].clone();
        let _guard3 = b.begin();
        // c has 0 in flight.
        assert_eq!(p.pick().unwrap().id, "c");
        drop(_guard3);
        // After c picks up two, b (1 dropped to 0) wins.
        let c = p.backends()[2].clone();
        let _g4 = c.begin();
        let _g5 = c.begin();
        assert_eq!(p.pick().unwrap().id, "b");
    }

    #[test]
    fn inflight_guard_releases() {
        let b = Backend::new("x", "http://x");
        {
            let _g = b.begin();
            assert_eq!(b.active(), 1);
        }
        assert_eq!(b.active(), 0);
        assert_eq!(b.served(), 1);
    }

    #[test]
    fn health_check_marks_dead_backends() {
        let p = BackendPool::new(
            vec![Backend::new("dead", "http://127.0.0.1:1")],
            Strategy::round_robin(),
        );
        let n = p.health_check(&Client::new());
        assert_eq!(n, 0);
        assert!(!p.backends()[0].is_healthy());
    }
}
