//! TSDB backend pool and balancing strategies.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ceems_http::resilience::{BreakerConfig, CircuitBreaker};
use ceems_http::Client;

/// One TSDB replica behind the LB.
pub struct Backend {
    /// Backend id (for logs/metrics).
    pub id: String,
    /// Base URL, e.g. `http://127.0.0.1:9090`.
    pub base_url: String,
    healthy: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    /// WAL records behind the most advanced replica at the last health
    /// check (0 for leaders and non-WAL backends).
    wal_lag: AtomicU64,
    /// Reported leadership at the last health check (S24 write routing).
    leader: AtomicBool,
    /// Reported epoch at the last health check.
    epoch: AtomicU64,
    /// Per-backend circuit breaker: consecutive forward failures open it,
    /// taking the backend out of rotation until the cooldown admits a
    /// half-open probe (or an external health probe force-closes it).
    breaker: CircuitBreaker,
}

impl Backend {
    /// Creates a backend assumed healthy, with a default-config breaker.
    pub fn new(id: impl Into<String>, base_url: impl Into<String>) -> Arc<Backend> {
        Backend::with_breaker(id, base_url, CircuitBreaker::new(BreakerConfig::default()))
    }

    /// Creates a backend with an explicit breaker (tests inject a manual
    /// clock; deployments tune thresholds/cooldowns).
    pub fn with_breaker(
        id: impl Into<String>,
        base_url: impl Into<String>,
        breaker: CircuitBreaker,
    ) -> Arc<Backend> {
        Arc::new(Backend {
            id: id.into(),
            base_url: base_url.into(),
            healthy: AtomicBool::new(true),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            wal_lag: AtomicU64::new(0),
            leader: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            breaker,
        })
    }

    /// The backend's circuit breaker. The proxy feeds forward outcomes into
    /// it; [`BackendPool::pick`] skips backends whose breaker is open.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Health flag.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Sets the health flag.
    pub fn set_healthy(&self, ok: bool) {
        self.healthy.store(ok, Ordering::Relaxed);
    }

    /// WAL records this replica lagged behind the freshest one at the last
    /// health check.
    pub fn wal_lag(&self) -> u64 {
        self.wal_lag.load(Ordering::Relaxed)
    }

    /// Whether the backend reported itself leader at the last health check.
    pub fn is_leader(&self) -> bool {
        self.leader.load(Ordering::Relaxed)
    }

    /// The epoch the backend reported at the last health check.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// In-flight request count.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Marks a request in flight; the guard releases on drop.
    pub fn begin(self: &Arc<Self>) -> InFlight {
        self.active.fetch_add(1, Ordering::Relaxed);
        self.served.fetch_add(1, Ordering::Relaxed);
        InFlight {
            backend: self.clone(),
        }
    }
}

/// RAII guard for an in-flight proxied request.
pub struct InFlight {
    backend: Arc<Backend>,
}

impl Drop for InFlight {
    fn drop(&mut self) {
        self.backend.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Balancing strategy (§II.B.c names both).
#[derive(Debug)]
pub enum Strategy {
    /// Rotate through healthy backends.
    RoundRobin(AtomicUsize),
    /// Pick the healthy backend with the fewest in-flight requests.
    LeastConnection,
}

impl Strategy {
    /// Round-robin starting at 0.
    pub fn round_robin() -> Strategy {
        Strategy::RoundRobin(AtomicUsize::new(0))
    }
}

/// The pool.
pub struct BackendPool {
    backends: Vec<Arc<Backend>>,
    strategy: Strategy,
    /// Demote replicas whose WAL record count trails the freshest replica
    /// by more than this many records. `None` disables the staleness check
    /// (plain responsiveness probing).
    max_wal_lag: Option<u64>,
    /// Learn an epoch-keyed write route from health probes (S24 failover).
    route_writes: bool,
    /// The write route learned at the last health check: the id of the
    /// backend reporting itself leader, at which epoch.
    write_leader: std::sync::Mutex<Option<(String, u64)>>,
    /// Leader changes observed across health checks (failovers seen).
    failovers: AtomicU64,
}

impl BackendPool {
    /// Creates a pool.
    pub fn new(backends: Vec<Arc<Backend>>, strategy: Strategy) -> BackendPool {
        BackendPool {
            backends,
            strategy,
            max_wal_lag: None,
            route_writes: false,
            write_leader: std::sync::Mutex::new(None),
            failovers: AtomicU64::new(0),
        }
    }

    /// Enables write routing: health checks learn which backend reports
    /// itself leader (and at which epoch) from `/api/v1/wal/position`, and
    /// [`BackendPool::write_backend`] pins write traffic to it. A leader
    /// change between checks counts one failover.
    pub fn with_write_routing(mut self) -> BackendPool {
        self.route_writes = true;
        self
    }

    /// Enables WAL-position staleness demotion: a replica answering probes
    /// but lagging the freshest replica by more than `records` WAL records
    /// is marked unhealthy (a frozen-but-responsive replica serves stale
    /// `rate()`s, which silently corrupts energy totals).
    pub fn with_max_wal_lag(mut self, records: u64) -> BackendPool {
        self.max_wal_lag = Some(records);
        self
    }

    /// All backends.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// Picks a healthy backend whose circuit breaker admits traffic, or
    /// `None` when every backend is down or open. `available()` does not
    /// consume half-open probe slots — the proxy calls `try_acquire` on the
    /// picked backend's breaker at forward time.
    pub fn pick(&self) -> Option<Arc<Backend>> {
        let healthy: Vec<&Arc<Backend>> = self
            .backends
            .iter()
            .filter(|b| b.is_healthy() && b.breaker.available())
            .collect();
        if healthy.is_empty() {
            return None;
        }
        match &self.strategy {
            Strategy::RoundRobin(counter) => {
                let i = counter.fetch_add(1, Ordering::Relaxed) % healthy.len();
                Some(healthy[i].clone())
            }
            Strategy::LeastConnection => healthy
                .into_iter()
                .min_by_key(|b| b.active())
                .cloned(),
        }
    }

    /// Probes every backend's Prometheus API and updates health flags.
    ///
    /// A backend is healthy when it answers the labels probe — and, when
    /// staleness demotion is enabled, when its reported WAL record count is
    /// within `max_wal_lag` of the most advanced responsive replica. A 200
    /// alone is not enough: a replica whose ingest froze keeps answering
    /// queries with ever-staler data.
    ///
    /// Returns the number of healthy backends.
    pub fn health_check(&self, client: &Client) -> usize {
        // Phase 1: responsiveness + WAL position probes.
        let mut responsive: Vec<bool> = Vec::with_capacity(self.backends.len());
        let mut wal_records: Vec<Option<u64>> = Vec::with_capacity(self.backends.len());
        for b in &self.backends {
            let ok = client
                .get(&format!("{}/api/v1/labels", b.base_url))
                .map(|r| r.status.is_success())
                .unwrap_or(false);
            responsive.push(ok);
            let records = if ok && (self.max_wal_lag.is_some() || self.route_writes) {
                let position = client
                    .get(&format!("{}/api/v1/wal/position", b.base_url))
                    .ok()
                    .filter(|r| r.status.is_success())
                    .and_then(|r| serde_json::from_slice::<serde_json::Value>(&r.body).ok());
                if self.route_writes {
                    // Role and epoch are meaningful even without a WAL (an
                    // in-memory replica can still hold leadership).
                    let is_leader = position
                        .as_ref()
                        .is_some_and(|v| v["data"]["role"] == "leader");
                    let epoch = position
                        .as_ref()
                        .and_then(|v| v["data"]["epoch"].as_u64())
                        .unwrap_or(0);
                    b.leader.store(is_leader, Ordering::Relaxed);
                    b.epoch.store(epoch, Ordering::Relaxed);
                }
                // Lag comparison only makes sense for durable replicas.
                position
                    .filter(|v| v["data"]["walEnabled"] == serde_json::Value::Bool(true))
                    .and_then(|v| v["data"]["records"].as_u64())
            } else {
                None
            };
            wal_records.push(records);
        }
        // An unresponsive backend cannot claim leadership; forget whatever
        // it reported before it died.
        if self.route_writes {
            for (i, b) in self.backends.iter().enumerate() {
                if !responsive[i] {
                    b.leader.store(false, Ordering::Relaxed);
                }
            }
            self.update_write_route();
        }

        // Phase 2: staleness — lag is measured against the freshest
        // responsive replica. Backends without a WAL report no position and
        // are exempt (nothing to compare).
        let freshest = wal_records.iter().flatten().copied().max().unwrap_or(0);
        let mut healthy = 0;
        for (i, b) in self.backends.iter().enumerate() {
            let lag = wal_records[i].map_or(0, |r| freshest.saturating_sub(r));
            b.wal_lag.store(lag, Ordering::Relaxed);
            let fresh_enough = match self.max_wal_lag {
                Some(max) => lag <= max,
                None => true,
            };
            let ok = responsive[i] && fresh_enough;
            b.set_healthy(ok);
            if ok {
                // A passing probe is positive evidence: clear any breaker
                // state accumulated from earlier forward failures so the
                // backend re-enters rotation immediately.
                b.breaker.force_close();
                healthy += 1;
            }
        }
        healthy
    }

    /// Re-derives the write route from the backends' last-probed leader
    /// claims. The table is epoch-keyed: when two backends both claim
    /// leadership (a deposed leader that never saw the bump), the higher
    /// epoch wins — exactly the fencing rule the TSDB itself enforces.
    fn update_write_route(&self) {
        let new = self
            .backends
            .iter()
            .filter(|b| b.is_leader())
            .max_by_key(|b| (b.epoch(), std::cmp::Reverse(b.id.clone())))
            .map(|b| (b.id.clone(), b.epoch()));
        let mut cur = self.write_leader.lock().unwrap();
        if *cur != new {
            if let (Some((old_id, _)), Some((new_id, _))) = (cur.as_ref(), new.as_ref()) {
                if old_id != new_id {
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                }
            }
            *cur = new;
        }
    }

    /// The backend write traffic routes to: the highest-epoch leader
    /// claimant from the last health check, while it stays healthy. `None`
    /// while leaderless (writes should fail fast, not land on a stale
    /// replica).
    pub fn write_backend(&self) -> Option<Arc<Backend>> {
        let (id, _) = self.write_leader.lock().unwrap().clone()?;
        self.backends
            .iter()
            .find(|b| b.id == id && b.is_healthy() && b.breaker.available())
            .cloned()
    }

    /// The epoch of the current write route (0 while unknown).
    pub fn write_epoch(&self) -> u64 {
        self.write_leader
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |(_, e)| *e)
    }

    /// Leader changes observed across health checks.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Probes only the backends currently *out* of rotation (demoted or
    /// breaker-open) and re-promotes the ones that answer the labels
    /// endpoint. Cheaper than a full [`BackendPool::health_check`]; the
    /// proxy calls this before refusing a request with 503 so a recovered
    /// backend is readmitted by live traffic, not just the periodic probe.
    ///
    /// Returns the number of backends re-promoted.
    pub fn revive(&self, client: &Client) -> usize {
        let mut revived = 0;
        for b in &self.backends {
            if b.is_healthy() && b.breaker.available() {
                continue;
            }
            let ok = client
                .get(&format!("{}/api/v1/labels", b.base_url))
                .map(|r| r.status.is_success())
                .unwrap_or(false);
            if ok {
                b.set_healthy(true);
                b.breaker.force_close();
                revived += 1;
            }
        }
        revived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(strategy: Strategy) -> BackendPool {
        BackendPool::new(
            vec![
                Backend::new("a", "http://a"),
                Backend::new("b", "http://b"),
                Backend::new("c", "http://c"),
            ],
            strategy,
        )
    }

    #[test]
    fn round_robin_rotates() {
        let p = pool(Strategy::round_robin());
        let picks: Vec<String> = (0..6).map(|_| p.pick().unwrap().id.clone()).collect();
        assert_eq!(picks, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let p = pool(Strategy::round_robin());
        p.backends()[1].set_healthy(false);
        let picks: Vec<String> = (0..4).map(|_| p.pick().unwrap().id.clone()).collect();
        assert!(!picks.contains(&"b".to_string()));
    }

    #[test]
    fn all_down_yields_none() {
        let p = pool(Strategy::round_robin());
        for b in p.backends() {
            b.set_healthy(false);
        }
        assert!(p.pick().is_none());
    }

    #[test]
    fn least_connection_prefers_idle() {
        let p = pool(Strategy::LeastConnection);
        let a = p.backends()[0].clone();
        let _guard1 = a.begin();
        let _guard2 = a.begin();
        let b = p.backends()[1].clone();
        let _guard3 = b.begin();
        // c has 0 in flight.
        assert_eq!(p.pick().unwrap().id, "c");
        drop(_guard3);
        // After c picks up two, b (1 dropped to 0) wins.
        let c = p.backends()[2].clone();
        let _g4 = c.begin();
        let _g5 = c.begin();
        assert_eq!(p.pick().unwrap().id, "b");
    }

    #[test]
    fn inflight_guard_releases() {
        let b = Backend::new("x", "http://x");
        {
            let _g = b.begin();
            assert_eq!(b.active(), 1);
        }
        assert_eq!(b.active(), 0);
        assert_eq!(b.served(), 1);
    }

    #[test]
    fn open_breaker_excludes_backend_from_pick() {
        use ceems_http::resilience::BreakerState;
        use std::sync::atomic::AtomicU64;

        let clock = Arc::new(AtomicU64::new(0));
        let c = clock.clone();
        let breaker = CircuitBreaker::with_clock(
            BreakerConfig::default(),
            Arc::new(move || c.load(Ordering::Relaxed)),
        );
        let p = BackendPool::new(
            vec![
                Backend::with_breaker("a", "http://a", breaker),
                Backend::new("b", "http://b"),
            ],
            Strategy::round_robin(),
        );
        for _ in 0..3 {
            p.backends()[0].breaker().on_failure();
        }
        assert_eq!(p.backends()[0].breaker().state(), BreakerState::Open);
        for _ in 0..4 {
            assert_eq!(p.pick().unwrap().id, "b");
        }
        // The cooldown elapses: the breaker becomes available again (the
        // forward path consumes the half-open probe slot via try_acquire).
        clock.store(1_500, Ordering::Relaxed);
        let picks: Vec<String> = (0..4).map(|_| p.pick().unwrap().id.clone()).collect();
        assert!(picks.contains(&"a".to_string()));
    }

    #[test]
    fn revive_repromotes_recovered_backend() {
        let mut router = ceems_http::Router::new();
        router.route(ceems_http::Method::Get, "/api/v1/labels", |_| {
            ceems_http::Response::json(br#"{"status":"success","data":[]}"#.to_vec())
        });
        let srv =
            ceems_http::HttpServer::serve(ceems_http::ServerConfig::ephemeral(), router).unwrap();

        let p = BackendPool::new(
            vec![
                Backend::new("recovered", srv.base_url()),
                Backend::new("gone", "http://127.0.0.1:1"),
            ],
            Strategy::round_robin(),
        );
        // Both out of rotation: one demoted, one with a tripped breaker.
        p.backends()[0].set_healthy(false);
        p.backends()[1].set_healthy(false);
        for _ in 0..3 {
            p.backends()[1].breaker().on_failure();
        }
        assert!(p.pick().is_none());

        // Only the responsive one comes back; its breaker is force-closed.
        assert_eq!(p.revive(&Client::new()), 1);
        assert_eq!(p.pick().unwrap().id, "recovered");
        assert!(p.backends()[0].is_healthy());
        assert!(p.backends()[0].breaker().available());
        assert!(!p.backends()[1].is_healthy());
        srv.shutdown();
    }

    #[test]
    fn health_check_marks_dead_backends() {
        let p = BackendPool::new(
            vec![Backend::new("dead", "http://127.0.0.1:1")],
            Strategy::round_robin(),
        );
        let n = p.health_check(&Client::new());
        assert_eq!(n, 0);
        assert!(!p.backends()[0].is_healthy());
    }

    #[test]
    fn frozen_replica_is_demoted_by_wal_staleness() {
        use ceems_metrics::labels;
        use ceems_tsdb::httpapi::api_router;
        use ceems_tsdb::wal::{FsyncMode, WalOptions};
        use ceems_tsdb::{Tsdb, TsdbConfig};
        use std::sync::Arc;

        let opts = WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncMode::Never,
        };
        let serve = |tag: &str, records: i64| {
            let dir = std::env::temp_dir()
                .join(format!("ceems-lb-stale-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let db = Arc::new(Tsdb::open(&dir, opts, TsdbConfig::default()).unwrap());
            for t in 0..records {
                db.append(&labels! {"__name__" => "power"}, t * 1_000, 1.0);
            }
            let server = ceems_http::HttpServer::serve(
                ceems_http::ServerConfig::ephemeral(),
                api_router(db, Arc::new(|| 10_000_000)),
            )
            .unwrap();
            (server, dir)
        };
        // The frozen replica still answers every probe with 200s — only its
        // WAL position gives it away.
        let (fresh, fresh_dir) = serve("fresh", 100);
        let (frozen, frozen_dir) = serve("frozen", 10);

        let backends = || {
            vec![
                Backend::new("fresh", fresh.base_url()),
                Backend::new("frozen", frozen.base_url()),
            ]
        };
        // Plain responsiveness probing: both look healthy (the old bug).
        let plain = BackendPool::new(backends(), Strategy::round_robin());
        assert_eq!(plain.health_check(&Client::new()), 2);

        // With staleness demotion the frozen replica is dropped from rotation.
        let strict =
            BackendPool::new(backends(), Strategy::round_robin()).with_max_wal_lag(25);
        assert_eq!(strict.health_check(&Client::new()), 1);
        assert!(strict.backends()[0].is_healthy());
        assert!(!strict.backends()[1].is_healthy());
        assert_eq!(strict.backends()[0].wal_lag(), 0);
        assert_eq!(strict.backends()[1].wal_lag(), 90);
        assert_eq!(strict.pick().unwrap().id, "fresh");

        fresh.shutdown();
        frozen.shutdown();
        let _ = std::fs::remove_dir_all(&fresh_dir);
        let _ = std::fs::remove_dir_all(&frozen_dir);
    }
}
