//! Query introspection: which compute units does a PromQL query touch?
//!
//! The LB parses the query and walks the AST collecting `uuid` matchers.
//! `uuid="slurm-1"` contributes one unit; `uuid=~"slurm-1|slurm-2"`
//! contributes each alternative (the pattern must be a plain alternation of
//! literals — anything fancier is rejected as unverifiable, which fails
//! closed).

use ceems_metrics::matcher::MatchOp;
use ceems_tsdb::promql::{parse_expr, Expr};

/// The result of introspecting one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Introspection {
    /// Every selector carried verifiable uuid matchers; these are the uuids.
    Units(Vec<String>),
    /// At least one selector had no uuid matcher (query reads beyond any
    /// single unit) — only admins may run it.
    Unscoped,
    /// The query could not be parsed or a uuid pattern was unverifiable.
    Unverifiable,
}

/// Introspects a query string.
pub fn introspect(query: &str) -> Introspection {
    let Ok(expr) = parse_expr(query) else {
        return Introspection::Unverifiable;
    };
    let mut uuids = Vec::new();
    let mut unscoped = false;
    let mut unverifiable = false;
    walk(&expr, &mut |sel_matchers| {
        let mut found = false;
        for m in sel_matchers {
            if m.name != "uuid" {
                continue;
            }
            match m.op {
                MatchOp::Eq if !m.value.is_empty() => {
                    uuids.push(m.value.clone());
                    found = true;
                }
                MatchOp::Re => match split_plain_alternation(&m.value) {
                    Some(ids) => {
                        uuids.extend(ids);
                        found = true;
                    }
                    None => unverifiable = true,
                },
                _ => unverifiable = true,
            }
        }
        if !found {
            unscoped = true;
        }
    });
    if unverifiable {
        Introspection::Unverifiable
    } else if unscoped {
        Introspection::Unscoped
    } else {
        uuids.sort();
        uuids.dedup();
        Introspection::Units(uuids)
    }
}

/// Splits `a|b|c` into literals; `None` if any branch contains regex
/// metacharacters.
fn split_plain_alternation(pattern: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    for part in pattern.split('|') {
        if part.is_empty()
            || part
                .chars()
                .any(|c| !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':'))
        {
            return None;
        }
        out.push(part.to_string());
    }
    Some(out)
}

fn walk(expr: &Expr, f: &mut impl FnMut(&[ceems_metrics::matcher::LabelMatcher])) {
    match expr {
        Expr::Number(_) => {}
        Expr::Selector(sel) => f(&sel.matchers),
        Expr::Neg(e) => walk(e, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        Expr::Agg { param, expr, .. } => {
            if let Some(p) = param {
                walk(p, f);
            }
            walk(expr, f);
        }
        Expr::Func { args, .. } => {
            for a in args {
                walk(a, f);
            }
        }
        Expr::Compare { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_uuid_matcher() {
        assert_eq!(
            introspect("ceems_compute_unit_cpu_user_seconds_total{uuid=\"slurm-42\"}"),
            Introspection::Units(vec!["slurm-42".into()])
        );
    }

    #[test]
    fn regex_alternation() {
        assert_eq!(
            introspect("rate(power{uuid=~\"slurm-1|slurm-2\"}[5m])"),
            Introspection::Units(vec!["slurm-1".into(), "slurm-2".into()])
        );
    }

    #[test]
    fn uuid_in_every_selector_of_binary_expr() {
        assert_eq!(
            introspect("a{uuid=\"slurm-1\"} / b{uuid=\"slurm-1\"}"),
            Introspection::Units(vec!["slurm-1".into()])
        );
        // One side missing uuid → unscoped.
        assert_eq!(
            introspect("a{uuid=\"slurm-1\"} / b"),
            Introspection::Unscoped
        );
    }

    #[test]
    fn unscoped_queries_detected() {
        assert_eq!(introspect("node_power_watts"), Introspection::Unscoped);
        assert_eq!(
            introspect("sum(rate(cpu_seconds_total[5m]))"),
            Introspection::Unscoped
        );
        // Pure scalar expressions have no selectors at all: fine.
        assert_eq!(introspect("1 + 2"), Introspection::Units(vec![]));
    }

    #[test]
    fn unverifiable_patterns_fail_closed() {
        assert_eq!(
            introspect("power{uuid=~\"slurm-.*\"}"),
            Introspection::Unverifiable
        );
        assert_eq!(
            introspect("power{uuid!=\"slurm-1\"}"),
            Introspection::Unverifiable
        );
        assert_eq!(introspect("power{uuid=\"\"}"), Introspection::Unverifiable);
        assert_eq!(introspect("%%%garbage"), Introspection::Unverifiable);
    }

    #[test]
    fn nested_expressions_walked() {
        assert_eq!(
            introspect("topk(3, sum by (uuid) (rate(x{uuid=~\"slurm-9\"}[1m])))"),
            Introspection::Units(vec!["slurm-9".into()])
        );
    }

    #[test]
    fn dedup_uuids() {
        assert_eq!(
            introspect("a{uuid=\"u1\"} + a{uuid=\"u1\"} offset 5m"),
            Introspection::Units(vec!["u1".into()])
        );
    }
}
