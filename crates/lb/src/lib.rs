#![warn(missing_docs)]
//! CEEMS load balancer (S13 in `DESIGN.md`).
//!
//! §II.B.c: Prometheus + Grafana lack access control — any user with read
//! access to the data source can query anyone's metrics. The CEEMS LB fixes
//! that as a reverse proxy in front of the TSDB replicas:
//!
//! * [`introspect`] — extracts the compute-unit uuids a PromQL query
//!   touches.
//! * [`backend`] — the backend pool with health checks and the two
//!   balancing strategies the paper names (round-robin, least-connection).
//! * [`acl`] — ownership verification, either directly against the API
//!   server's DB or through its `/api/v1/verify` endpoint.
//! * [`proxy`] — the LB itself: authenticate via `X-Grafana-User`,
//!   introspect, verify, then proxy.

pub mod acl;
pub mod backend;
pub mod introspect;
pub mod proxy;

pub use backend::{Backend, BackendPool, Strategy};
pub use proxy::{CeemsLb, LbConfig};
