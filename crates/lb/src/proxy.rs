//! The reverse proxy.
//!
//! Flow per request (§II.B.c): read the user from `X-Grafana-User` → for
//! query endpoints, introspect the PromQL for unit uuids → verify ownership
//! (admins skip) → pick a backend by strategy → forward and relay the
//! response. Unscoped or unverifiable queries are forbidden for non-admins:
//! the LB fails closed.
//!
//! Observability (S17): forwards carry a trace ID (minted here or accepted
//! from the `x-ceems-trace-id` header); `?trace=1` replies come back with
//! the LB's own `lb_auth`/`lb_forward` stages merged into `data.trace`.
//! Resilience (S19): forward failures, 5xx answers and corrupt 2xx bodies
//! feed a per-backend circuit breaker (three strikes opens it) and retry the
//! next pick; when everything is demoted or open, on-demand revival probes
//! re-promote recovered backends before the LB answers 503. `/metrics`
//! serves forwarding latency, per-backend outcome counters and breaker
//! open/rejection events.

use std::sync::Arc;
use std::time::Instant;

use serde_json::{json, Value as Json};

use ceems_http::{Client, HttpServer, Request, Response, Router, ServerConfig, Status};
use ceems_metrics::{Counter, CounterVec, Histogram, Registry};
use ceems_obs::http::TRACE_STORED_HEADER;
use ceems_obs::trace::QueryTrace;
use ceems_obs::{counter_family, histogram_family, HttpInstruments, TraceSink, TRACE_HEADER};

use crate::acl::Authorizer;
use crate::backend::BackendPool;
use crate::introspect::{introspect, Introspection};

/// LB configuration.
#[derive(Default)]
pub struct LbConfig {
    /// Users allowed to run unscoped queries (operators).
    pub admin_users: Vec<String>,
    /// Base URL of the query frontend (`ceems-qfe`). When set, authorized
    /// query traffic goes through the frontend (which splits, caches and
    /// fans out to the replicas itself); the LB falls back to its own
    /// backend pool if the frontend is unreachable. Non-query traffic
    /// always uses the pool.
    pub query_frontend: Option<String>,
    /// Trace sink (S22): every query's finished trace is offered here;
    /// head sampling or tail (slow) capture decides whether it is stored.
    /// When a trace is stored the response carries [`TRACE_STORED_HEADER`]
    /// and the forward histogram gets the trace ID as an exemplar.
    pub trace_sink: Option<Arc<TraceSink>>,
}

/// The LB's own telemetry: forwarding latency, per-backend outcomes,
/// retries and denials.
struct LbInstruments {
    forward_seconds: Histogram,
    requests: CounterVec,
    retries: Counter,
    denied: Counter,
    unavailable: Counter,
    frontend_fallbacks: Counter,
    breaker_events: CounterVec,
    corrupt: Counter,
    repromotions: Counter,
}

impl LbInstruments {
    fn new(registry: &Registry) -> LbInstruments {
        let ins = LbInstruments {
            forward_seconds: Histogram::new(Histogram::duration_buckets()),
            requests: CounterVec::new(
                "ceems_lb_proxy_requests_total",
                "Forwarded requests by backend and outcome.",
                &["backend", "outcome"],
            ),
            retries: Counter::new(),
            denied: Counter::new(),
            unavailable: Counter::new(),
            frontend_fallbacks: Counter::new(),
            breaker_events: CounterVec::new(
                "ceems_lb_breaker_events_total",
                "Circuit-breaker opens and rejections by backend.",
                &["backend", "event"],
            ),
            corrupt: Counter::new(),
            repromotions: Counter::new(),
        };
        {
            let h = ins.forward_seconds.clone();
            registry.register(
                "lb_forward_seconds",
                Arc::new(move || {
                    vec![histogram_family(
                        "ceems_lb_forward_duration_seconds",
                        "One backend forward: connect, request, response.",
                        &h,
                    )]
                }),
            );
        }
        registry.register("lb_proxy_requests", Arc::new(ins.requests.clone()));
        for (key, name, help, c) in [
            (
                "lb_retries",
                "ceems_lb_retries_total",
                "Forwards retried on another backend after a failure.",
                ins.retries.clone(),
            ),
            (
                "lb_denied",
                "ceems_lb_denied_total",
                "Requests rejected by access control.",
                ins.denied.clone(),
            ),
            (
                "lb_unavailable",
                "ceems_lb_unavailable_total",
                "Requests refused because no healthy backend existed.",
                ins.unavailable.clone(),
            ),
            (
                "lb_frontend_fallbacks",
                "ceems_lb_frontend_fallback_total",
                "Queries sent straight to the pool after the query frontend failed.",
                ins.frontend_fallbacks.clone(),
            ),
            (
                "lb_corrupt",
                "ceems_lb_corrupt_responses_total",
                "Successful query responses dropped because the body failed to parse.",
                ins.corrupt.clone(),
            ),
            (
                "lb_repromotions",
                "ceems_lb_repromotions_total",
                "Backends re-promoted into rotation by on-demand revival probes.",
                ins.repromotions.clone(),
            ),
        ] {
            registry.register(
                key,
                Arc::new(move || vec![counter_family(name, help, &c)]),
            );
        }
        registry.register("lb_breaker_events", Arc::new(ins.breaker_events.clone()));
        ins
    }
}

/// Merges the LB's own overhead into a proxied `data.trace` object: appends
/// the `lb_auth` stage and an `lb_forward` stage holding the forward wall
/// time *minus* the TSDB-reported total (network + serialization overhead,
/// clamped at zero so stages stay disjoint), then replaces `totalMs` with
/// the LB-measured end-to-end time — `sum(stages) <= totalMs` keeps holding
/// at the outermost layer. Degradation is visible too: when the forward
/// needed retries (failed/corrupt backends skipped), the trace carries an
/// `lbRetries` count. Returns `None` (leave the body alone) when the
/// payload carries no trace.
fn rewrite_trace(
    body: &[u8],
    auth_ms: f64,
    forward_ms: f64,
    total_ms: f64,
    retries: u64,
) -> Option<Vec<u8>> {
    let mut v: Json = serde_json::from_slice(body).ok()?;
    let Json::Object(root) = &mut v else {
        return None;
    };
    let Some(Json::Object(data)) = root.get_mut("data") else {
        return None;
    };
    let Some(Json::Object(trace)) = data.get_mut("trace") else {
        return None;
    };
    let inner_ms = trace.get("totalMs").and_then(|t| t.as_f64()).unwrap_or(0.0);
    if let Some(Json::Array(stages)) = trace.get_mut("stages") {
        stages.push(json!({"name": "lb_auth", "ms": auth_ms}));
        stages.push(json!({"name": "lb_forward", "ms": (forward_ms - inner_ms).max(0.0)}));
    }
    trace.insert("totalMs".to_string(), json!(total_ms));
    if retries > 0 {
        trace.insert("lbRetries".to_string(), json!(retries));
    }
    serde_json::to_vec(&v).ok()
}

/// The load balancer.
pub struct CeemsLb {
    pool: Arc<BackendPool>,
    authorizer: Authorizer,
    config: LbConfig,
    client: Client,
    registry: Registry,
    instruments: LbInstruments,
    http: HttpInstruments,
}

impl CeemsLb {
    /// Creates the LB.
    pub fn new(pool: BackendPool, authorizer: Authorizer, config: LbConfig) -> CeemsLb {
        let pool = Arc::new(pool);
        let registry = Registry::new();
        let instruments = LbInstruments::new(&registry);
        let http = HttpInstruments::new("lb", &registry);
        ceems_obs::register_build_info(&registry, "lb");
        {
            // Failover visibility (S24): how many times the epoch-keyed write
            // route moved to a different leader, and the epoch it currently
            // trusts. Both are read from the pool at scrape time.
            let p = pool.clone();
            registry.register(
                "lb_failovers",
                Arc::new(move || {
                    vec![
                        ceems_obs::family_with_metrics(
                            "ceems_lb_failovers_total",
                            "Write-route leader changes observed by health checks.",
                            ceems_metrics::MetricType::Counter,
                            vec![ceems_obs::metric(
                                ceems_metrics::labels::LabelSet::empty(),
                                p.failovers() as f64,
                            )],
                        ),
                        ceems_obs::family_with_metrics(
                            "ceems_lb_write_epoch",
                            "Epoch of the leader the write route currently targets.",
                            ceems_metrics::MetricType::Gauge,
                            vec![ceems_obs::metric(
                                ceems_metrics::labels::LabelSet::empty(),
                                p.write_epoch() as f64,
                            )],
                        ),
                    ]
                }),
            );
        }
        {
            // Per-replica WAL lag, read at scrape time from the values the
            // health check already computes for staleness demotion — the
            // replica-lag alert rule queries this instead of re-deriving it.
            let backends = pool.backends().to_vec();
            registry.register(
                "lb_backend_wal_lag",
                Arc::new(move || {
                    let metrics = backends
                        .iter()
                        .map(|b| {
                            ceems_obs::metric(
                                ceems_metrics::labels::LabelSet::from_pairs([(
                                    "backend",
                                    b.id.as_str(),
                                )]),
                                b.wal_lag() as f64,
                            )
                        })
                        .collect();
                    vec![ceems_obs::family_with_metrics(
                        "ceems_lb_backend_wal_lag_records",
                        "WAL records each replica lags behind the freshest one, per the last health check.",
                        ceems_metrics::MetricType::Gauge,
                        metrics,
                    )]
                }),
            );
        }
        CeemsLb {
            pool,
            authorizer,
            config,
            client: Client::new(),
            registry,
            instruments,
            http,
        }
    }

    /// The backend pool (health checks, stats).
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    /// The LB's metrics registry (served at `/metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn is_admin(&self, user: &str) -> bool {
        self.config.admin_users.iter().any(|a| a == user)
    }

    /// Authorizes one request; returns an error response when denied.
    fn authorize(&self, req: &Request) -> Result<(), Response> {
        let Some(user) = req.header("x-grafana-user").map(str::to_string) else {
            return Err(Response::error(
                Status::UNAUTHORIZED,
                "missing X-Grafana-User header",
            ));
        };
        if self.is_admin(&user) {
            return Ok(());
        }

        // Which expressions does this request evaluate?
        let mut exprs: Vec<&str> = Vec::new();
        if req.path.ends_with("/query") || req.path.ends_with("/query_range") {
            match req.query_param("query") {
                Some(q) => exprs.push(q),
                None => return Ok(()), // no expression; backend will 400
            }
        } else if req.path.ends_with("/series") || req.path.ends_with("/delete_series") {
            exprs.extend(req.query_params("match[]"));
            if req.path.ends_with("/delete_series") {
                return Err(Response::error(
                    Status::FORBIDDEN,
                    "admin endpoint requires an admin user",
                ));
            }
        } else {
            // Metadata endpoints (labels, status) carry no per-unit data.
            return Ok(());
        }

        let mut uuids = Vec::new();
        for q in exprs {
            match introspect(q) {
                Introspection::Units(u) => uuids.extend(u),
                Introspection::Unscoped => {
                    return Err(Response::error(
                        Status::FORBIDDEN,
                        "query is not scoped to your compute units (add a uuid matcher)",
                    ))
                }
                Introspection::Unverifiable => {
                    return Err(Response::error(
                        Status::FORBIDDEN,
                        "query ownership could not be verified",
                    ))
                }
            }
        }
        uuids.sort();
        uuids.dedup();
        if self.authorizer.verify(&user, &uuids) {
            Ok(())
        } else {
            Err(Response::error(
                Status::FORBIDDEN,
                "compute unit does not belong to you",
            ))
        }
    }

    /// Handles one request end to end.
    pub fn handle(&self, req: &Request) -> Response {
        let total_start = Instant::now();
        let is_query = req.path.ends_with("/query") || req.path.ends_with("/query_range");
        let qtrace = if is_query {
            Some(QueryTrace::begin(req.header(TRACE_HEADER)))
        } else {
            None
        };
        let trace_requested =
            is_query && matches!(req.query_param("trace"), Some("1") | Some("true"));

        let auth_start = Instant::now();
        if let Err(denied) = self.authorize(req) {
            self.instruments.denied.inc();
            return denied;
        }
        let auth_ms = auth_start.elapsed().as_secs_f64() * 1000.0;

        // Ingest writes must land on the leader, not on an arbitrary replica
        // pick: follow the epoch-keyed write route learned by health checks
        // (S24). A fenced 409 from a deposed leader is relayed untouched so
        // the writer re-resolves instead of silently losing the append.
        if req.method == ceems_http::Method::Post && req.path.ends_with("/api/v1/write") {
            return self.forward_write(req);
        }

        // Query traffic prefers the query frontend when one is configured;
        // an unreachable frontend demotes to the replica pool below.
        if is_query {
            if let Some(front) = &self.config.query_frontend {
                let url = format!("{front}{}", req.path_and_query());
                let mut client = self.client.clone();
                if let Some(u) = req.header("x-grafana-user") {
                    client = client.with_header("X-Grafana-User", u);
                }
                if let Some(t) = &qtrace {
                    client = client.with_header(TRACE_HEADER, t.id());
                }
                let forward_start = Instant::now();
                let result =
                    client.request(req.method, &url, req.body.clone(), req.header("content-type"));
                let forward_secs = forward_start.elapsed().as_secs_f64();
                match result {
                    // A frontend 2xx whose body does not parse is as useless
                    // as a refused connection: count it and fall back to the
                    // pool rather than relaying garbage.
                    Ok(resp)
                        if resp.status.is_success()
                            && serde_json::from_slice::<Json>(&resp.body).is_err() =>
                    {
                        self.instruments.corrupt.inc();
                        self.instruments
                            .requests
                            .with_label_values(&["qfe", "corrupt"])
                            .inc();
                        self.instruments.frontend_fallbacks.inc();
                    }
                    Ok(mut resp) => {
                        self.instruments
                            .requests
                            .with_label_values(&["qfe", "ok"])
                            .inc();
                        resp.headers
                            .insert("x-ceems-lb-backend".to_string(), "qfe".to_string());
                        let mut resp =
                            self.finish_query(&qtrace, req, resp, auth_ms, forward_secs, 0);
                        if trace_requested {
                            let total_ms = total_start.elapsed().as_secs_f64() * 1000.0;
                            if let Some(body) = rewrite_trace(
                                &resp.body,
                                auth_ms,
                                forward_secs * 1000.0,
                                total_ms,
                                0,
                            ) {
                                resp.body = body;
                            }
                        }
                        return resp;
                    }
                    Err(_) => {
                        self.instruments
                            .requests
                            .with_label_values(&["qfe", "error"])
                            .inc();
                        self.instruments.frontend_fallbacks.inc();
                    }
                }
            }
        }

        let max_attempts = self.pool.backends().len().max(1);
        let mut attempts: usize = 0;
        loop {
            let backend = match self.pool.pick() {
                Some(b) => b,
                None => {
                    // Degraded: every backend is demoted or circuit-open.
                    // Probe the demoted ones before refusing — live traffic
                    // re-promotes recovered backends without waiting for the
                    // periodic health check.
                    let revived = self.pool.revive(&self.client);
                    for _ in 0..revived {
                        self.instruments.repromotions.inc();
                    }
                    match self.pool.pick() {
                        Some(b) if revived > 0 => b,
                        _ => {
                            self.instruments.unavailable.inc();
                            return Response::error(
                                Status::UNAVAILABLE,
                                "no healthy TSDB backend",
                            );
                        }
                    }
                }
            };
            // The pick filtered on `available()`; `try_acquire` claims the
            // half-open probe slot (or loses a race with another request).
            if !backend.breaker().try_acquire() {
                self.instruments
                    .breaker_events
                    .with_label_values(&[&backend.id, "rejected"])
                    .inc();
                attempts += 1;
                if attempts >= max_attempts {
                    self.instruments.unavailable.inc();
                    return Response::error(
                        Status::UNAVAILABLE,
                        "all TSDB backends are circuit-open",
                    );
                }
                continue;
            }
            let _inflight = backend.begin();
            let url = format!("{}{}", backend.base_url, req.path_and_query());
            let mut client = self.client.clone();
            if let Some(u) = req.header("x-grafana-user") {
                client = client.with_header("X-Grafana-User", u);
            }
            if let Some(t) = &qtrace {
                client = client.with_header(TRACE_HEADER, t.id());
            }
            let forward_start = Instant::now();
            let result =
                client.request(req.method, &url, req.body.clone(), req.header("content-type"));
            let forward_secs = forward_start.elapsed().as_secs_f64();
            match result {
                // The LB is the last hop before the client, so it is the
                // last chance to catch a corrupted success: a 2xx query
                // response whose body is not JSON is dropped and the request
                // retried on another backend instead of being relayed.
                Ok(resp)
                    if is_query
                        && resp.status.is_success()
                        && serde_json::from_slice::<Json>(&resp.body).is_err() =>
                {
                    self.instruments.forward_seconds.observe(forward_secs);
                    self.instruments.corrupt.inc();
                    self.instruments
                        .requests
                        .with_label_values(&[&backend.id, "corrupt"])
                        .inc();
                    self.note_failure(&backend);
                    attempts += 1;
                    if attempts >= max_attempts {
                        return Response::error(
                            Status::BAD_GATEWAY,
                            "backend returned a corrupt response",
                        );
                    }
                    self.instruments.retries.inc();
                }
                // Server errors are retried on the next backend; only when
                // every backend says 5xx is the last answer relayed.
                Ok(resp) if resp.status.0 >= 500 => {
                    self.instruments.forward_seconds.observe(forward_secs);
                    self.instruments
                        .requests
                        .with_label_values(&[&backend.id, "5xx"])
                        .inc();
                    self.note_failure(&backend);
                    attempts += 1;
                    if attempts >= max_attempts {
                        return resp;
                    }
                    self.instruments.retries.inc();
                }
                Ok(mut resp) => {
                    backend.breaker().on_success();
                    self.instruments
                        .requests
                        .with_label_values(&[&backend.id, "ok"])
                        .inc();
                    resp.headers
                        .insert("x-ceems-lb-backend".to_string(), backend.id.clone());
                    let mut resp = self.finish_query(
                        &qtrace,
                        req,
                        resp,
                        auth_ms,
                        forward_secs,
                        attempts as u64,
                    );
                    if trace_requested {
                        let total_ms = total_start.elapsed().as_secs_f64() * 1000.0;
                        if let Some(body) = rewrite_trace(
                            &resp.body,
                            auth_ms,
                            forward_secs * 1000.0,
                            total_ms,
                            attempts as u64,
                        ) {
                            resp.body = body;
                        }
                    }
                    return resp;
                }
                Err(e) => {
                    // The pick looked healthy but the forward failed: feed
                    // the breaker (three strikes open it, taking the backend
                    // out of rotation until the cooldown or a health probe)
                    // and try the next backend before giving up.
                    self.instruments.forward_seconds.observe(forward_secs);
                    self.instruments
                        .requests
                        .with_label_values(&[&backend.id, "error"])
                        .inc();
                    self.note_failure(&backend);
                    attempts += 1;
                    if attempts >= max_attempts {
                        return Response::error(
                            Status::BAD_GATEWAY,
                            format!("backend error: {e}"),
                        );
                    }
                    self.instruments.retries.inc();
                }
            }
        }
    }

    /// Forwards one write to the current leader per the epoch-keyed routing
    /// table. No leader known (no health check ran yet, or no backend claims
    /// leadership) → 503 so the writer backs off and retries; fenced writes
    /// (409 from a backend that lost its epoch) are relayed as-is.
    fn forward_write(&self, req: &Request) -> Response {
        let Some(backend) = self.pool.write_backend() else {
            self.instruments.unavailable.inc();
            return Response::error(Status::UNAVAILABLE, "no write leader known");
        };
        let _inflight = backend.begin();
        let url = format!("{}{}", backend.base_url, req.path_and_query());
        let mut client = self.client.clone();
        if let Some(u) = req.header("x-grafana-user") {
            client = client.with_header("X-Grafana-User", u);
        }
        let forward_start = Instant::now();
        let result =
            client.request(req.method, &url, req.body.clone(), req.header("content-type"));
        self.instruments
            .forward_seconds
            .observe(forward_start.elapsed().as_secs_f64());
        match result {
            Ok(mut resp) => {
                let outcome = match resp.status.0 {
                    409 => "fenced",
                    s if s >= 500 => "5xx",
                    _ => "ok",
                };
                if resp.status.0 >= 500 {
                    self.note_failure(&backend);
                } else {
                    backend.breaker().on_success();
                }
                self.instruments
                    .requests
                    .with_label_values(&[&backend.id, outcome])
                    .inc();
                resp.headers
                    .insert("x-ceems-lb-backend".to_string(), backend.id.clone());
                resp
            }
            Err(e) => {
                self.instruments
                    .requests
                    .with_label_values(&[&backend.id, "error"])
                    .inc();
                self.note_failure(&backend);
                Response::error(Status::BAD_GATEWAY, format!("write forward error: {e}"))
            }
        }
    }

    /// Finishes the LB's own trace span for a successful query forward:
    /// records the `lb_auth`/`lb_forward` stages, offers the report to the
    /// trace sink (head sampling or tail capture decides storage), and —
    /// when stored — tags the response with [`TRACE_STORED_HEADER`] and
    /// attaches the trace ID as an exemplar on the forward-latency
    /// histogram. Non-query requests carry no trace and just observe.
    fn finish_query(
        &self,
        qtrace: &Option<QueryTrace>,
        req: &Request,
        resp: Response,
        auth_ms: f64,
        forward_secs: f64,
        retries: u64,
    ) -> Response {
        let Some(t) = qtrace else {
            self.instruments.forward_seconds.observe(forward_secs);
            return resp;
        };
        t.record_stage_ms("lb_auth", auth_ms);
        t.record_stage_ms("lb_forward", forward_secs * 1000.0);
        if retries > 0 {
            t.add_count("lb_retries", retries);
        }
        let stored = self.config.trace_sink.as_ref().and_then(|sink| {
            let tenant = req.header("x-grafana-user").unwrap_or("anonymous");
            sink.offer("lb", &req.path, tenant, &t.report())
        });
        match stored {
            Some(key) => {
                self.instruments
                    .forward_seconds
                    .observe_with_exemplar(forward_secs, &key);
                resp.with_header(TRACE_STORED_HEADER, key)
            }
            None => {
                self.instruments.forward_seconds.observe(forward_secs);
                resp
            }
        }
    }

    /// Feeds a forward failure into the backend's breaker and counts the
    /// open transition if this failure tripped it.
    fn note_failure(&self, backend: &crate::backend::Backend) {
        let before = backend.breaker().opens();
        backend.breaker().on_failure();
        if backend.breaker().opens() > before {
            self.instruments
                .breaker_events
                .with_label_values(&[&backend.id, "open"])
                .inc();
        }
    }

    /// Builds the proxy router: `/metrics` first (the router is
    /// first-match-wins), then `/*rest` → handle.
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        ceems_obs::add_metrics_route(&mut router, self.registry.clone());
        for method in [
            ceems_http::Method::Get,
            ceems_http::Method::Post,
            ceems_http::Method::Delete,
        ] {
            let me = self.clone();
            router.route(method, "/*rest", move |req| me.handle(req));
        }
        router
    }

    /// Serves the LB on an ephemeral port, with request instrumentation.
    pub fn serve(self: &Arc<Self>) -> std::io::Result<HttpServer> {
        self.serve_with(ServerConfig::ephemeral())
    }

    /// Serves the LB with explicit server tuning (connection caps, idle
    /// timeout, reactor threads — e.g. from the `http:` config section).
    pub fn serve_with(self: &Arc<Self>, config: ServerConfig) -> std::io::Result<HttpServer> {
        HttpServer::serve_fn(config, self.http.wrap(self.router()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, Strategy};
    use ceems_metrics::labels;
    use ceems_tsdb::httpapi::api_router;
    use ceems_tsdb::Tsdb;
    use parking_lot::Mutex;

    use ceems_apiserver::metrics_source::TsdbLocalSource;
    use ceems_apiserver::rm::{ResourceManagerClient, UnitInfo};
    use ceems_apiserver::updater::{Updater, UpdaterConfig};
    use ceems_relstore::Db;

    struct OneUnitRm;

    impl ResourceManagerClient for OneUnitRm {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn units_since(&self, _s: i64) -> Vec<UnitInfo> {
            vec![UnitInfo {
                uuid: "slurm-1".into(),
                resource_manager: "slurm".into(),
                user: "alice".into(),
                project: "p".into(),
                partition: "cpu".into(),
                state: "RUNNING".into(),
                submitted_at_ms: 0,
                started_at_ms: Some(0),
                ended_at_ms: None,
                nnodes: 1,
                ncpus: 4,
                ngpus: 0,
            }]
        }
    }

    fn updater_with_unit() -> Arc<Mutex<Updater>> {
        let dir = std::env::temp_dir().join(format!(
            "ceems-lb-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            Arc::new(OneUnitRm),
            Arc::new(TsdbLocalSource::new(Arc::new(Tsdb::default()))),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(1000).unwrap();
        Arc::new(Mutex::new(upd))
    }

    fn tsdb_server() -> (ceems_http::HttpServer, Arc<Tsdb>) {
        let db = Arc::new(Tsdb::default());
        for i in 0..10i64 {
            db.append(
                &labels! {"__name__" => "watts", "uuid" => "slurm-1"},
                i * 15_000,
                100.0,
            );
            db.append(
                &labels! {"__name__" => "watts", "uuid" => "slurm-2"},
                i * 15_000,
                200.0,
            );
        }
        let router = api_router(db.clone(), Arc::new(|| 135_000));
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        (server, db)
    }

    fn lb_over(backends: Vec<Arc<Backend>>, strategy: Strategy) -> Arc<CeemsLb> {
        Arc::new(CeemsLb::new(
            BackendPool::new(backends, strategy),
            Authorizer::DirectDb(updater_with_unit()),
            LbConfig {
                admin_users: vec!["root".into()],
                query_frontend: None,
                trace_sink: None,
            },
        ))
    }

    fn get(url: &str, user: Option<&str>) -> Response {
        let mut c = Client::new();
        if let Some(u) = user {
            c = c.with_header("X-Grafana-User", u);
        }
        c.get(url).unwrap()
    }

    #[test]
    fn owned_unit_query_passes_through() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert!(resp.body_string().contains("slurm-1"));
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn foreign_unit_forbidden() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let url = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-2%22%7D",
            lb_srv.base_url()
        );
        assert_eq!(get(&url, Some("alice")).status, Status::FORBIDDEN);
        // Admin may read anything.
        assert_eq!(get(&url, Some("root")).status, Status::OK);
        // Missing identity → 401.
        assert_eq!(get(&url, None).status, Status::UNAUTHORIZED);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn unscoped_and_unverifiable_fail_closed() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let unscoped = format!("{}/api/v1/query?query=watts", lb_srv.base_url());
        assert_eq!(get(&unscoped, Some("alice")).status, Status::FORBIDDEN);
        assert_eq!(get(&unscoped, Some("root")).status, Status::OK);
        let wild = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D~%22slurm-.%2A%22%7D",
            lb_srv.base_url()
        );
        assert_eq!(get(&wild, Some("alice")).status, Status::FORBIDDEN);
        // Admin delete endpoint blocked for non-admins.
        let del = format!(
            "{}/api/v1/admin/tsdb/delete_series?match[]=watts",
            lb_srv.base_url()
        );
        let resp = Client::new()
            .with_header("X-Grafana-User", "alice")
            .post(&del, Vec::new(), "application/json")
            .unwrap();
        assert_eq!(resp.status, Status::FORBIDDEN);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn round_robin_spreads_load_and_failover() {
        let (srv1, _d1) = tsdb_server();
        let (srv2, _d2) = tsdb_server();
        let lb = lb_over(
            vec![
                Backend::new("b1", srv1.base_url()),
                Backend::new("b2", srv2.base_url()),
            ],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let url = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
            lb_srv.base_url()
        );
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4 {
            let resp = get(&url, Some("alice"));
            assert_eq!(resp.status, Status::OK);
            seen.insert(resp.header("x-ceems-lb-backend").unwrap().to_string());
        }
        assert_eq!(seen.len(), 2);

        // Kill one backend; health check should route everything to the other.
        srv2.shutdown();
        lb.pool().health_check(&Client::new());
        for _ in 0..3 {
            let resp = get(&url, Some("alice"));
            assert_eq!(resp.status, Status::OK);
            assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        }
        lb_srv.shutdown();
        srv1.shutdown();
    }

    #[test]
    fn metadata_endpoints_pass_without_uuid() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = get(&format!("{}/api/v1/labels", lb_srv.base_url()), Some("alice"));
        assert_eq!(resp.status, Status::OK);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn trace_flows_through_the_proxy() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = Client::new()
            .with_header("X-Grafana-User", "root")
            .with_header(TRACE_HEADER, "feedc0defeedc0de")
            .get(&format!(
                "{}/api/v1/query_range?query=watts&start=0&end=135&step=15&trace=1",
                lb_srv.base_url()
            ))
            .unwrap();
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        let v: Json = serde_json::from_slice(&resp.body).unwrap();
        let t = &v["data"]["trace"];
        // The injected ID survived LB → TSDB → back.
        assert_eq!(t["traceId"], "feedc0defeedc0de");
        let stages = t["stages"].as_array().unwrap();
        let names: Vec<&str> = stages
            .iter()
            .map(|s| s["name"].as_str().unwrap())
            .collect();
        for expected in ["parse", "eval", "lb_auth", "lb_forward"] {
            assert!(names.contains(&expected), "missing stage {expected}");
        }
        // The LB replaced totalMs with its own end-to-end time, so the
        // stage sum stays under it even with the LB's overhead appended.
        let stage_sum: f64 = stages.iter().map(|s| s["ms"].as_f64().unwrap()).sum();
        assert!(stage_sum <= t["totalMs"].as_f64().unwrap() + 1e-6);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn failed_forward_retries_next_backend() {
        let (srv1, _d1) = tsdb_server();
        let lb = lb_over(
            vec![
                Backend::new("dead", "http://127.0.0.1:1"),
                Backend::new("live", srv1.base_url()),
            ],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let url = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
            lb_srv.base_url()
        );
        // Whenever round-robin lands on the dead backend, the forward fails,
        // the backend is demoted, and the request retries to the live one —
        // the client always sees a success.
        for _ in 0..4 {
            let resp = get(&url, Some("alice"));
            assert_eq!(resp.status, Status::OK);
            assert_eq!(resp.header("x-ceems-lb-backend"), Some("live"));
        }

        let text = Client::new()
            .get(&format!("{}/metrics", lb_srv.base_url()))
            .unwrap()
            .body_string();
        let parsed = ceems_metrics::parse_text(&text).expect("LB /metrics must parse");
        let value = |n: &str| {
            parsed
                .samples
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.value)
        };
        assert!(value("ceems_lb_retries_total").unwrap() >= 1.0);
        assert!(value("ceems_lb_forward_duration_seconds_count").unwrap() >= 4.0);
        assert!(value("ceems_lb_http_requests_total").is_some());
        let dead_errors = parsed
            .samples
            .iter()
            .find(|s| {
                s.name == "ceems_lb_proxy_requests_total"
                    && s.labels.get("backend") == Some("dead")
                    && s.labels.get("outcome") == Some("error")
            })
            .map(|s| s.value);
        assert!(dead_errors.unwrap() >= 1.0);
        lb_srv.shutdown();
        srv1.shutdown();
    }

    fn lb_with_frontend(
        backends: Vec<Arc<Backend>>,
        frontend: Option<String>,
    ) -> Arc<CeemsLb> {
        Arc::new(CeemsLb::new(
            BackendPool::new(backends, Strategy::round_robin()),
            Authorizer::DirectDb(updater_with_unit()),
            LbConfig {
                admin_users: vec!["root".into()],
                query_frontend: frontend,
                trace_sink: None,
            },
        ))
    }

    #[test]
    fn query_traffic_routes_through_frontend() {
        let (tsdb_srv, _db) = tsdb_server();
        let fe = ceems_qfe::QueryFrontend::new(
            Arc::new(ceems_qfe::HttpDownstream::new(vec![tsdb_srv.base_url()])),
            ceems_qfe::QfeConfig::default(),
        );
        let fe_srv = fe.serve().unwrap();
        let lb = lb_with_frontend(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Some(fe_srv.base_url()),
        );
        let lb_srv = lb.serve().unwrap();

        // Range query: the frontend handles it (and says so in its header).
        let resp = get(
            &format!(
                "{}/api/v1/query_range?query=watts%7Buuid%3D%22slurm-1%22%7D&start=0&end=135&step=15",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("qfe"));
        assert!(resp.header("x-ceems-qfe-cache").is_some());

        // Non-query traffic still uses the pool directly.
        let labels = get(&format!("{}/api/v1/labels", lb_srv.base_url()), Some("alice"));
        assert_eq!(labels.header("x-ceems-lb-backend"), Some("b1"));
        lb_srv.shutdown();
        fe_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn dead_frontend_falls_back_to_pool() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_with_frontend(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Some("http://127.0.0.1:1".to_string()),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        assert_eq!(lb.instruments.frontend_fallbacks.get(), 1.0);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn demoted_but_recovered_backend_is_revived_by_traffic() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        // Demoted during a blip; the server is back but no periodic health
        // check has run yet. The next request probes and re-promotes it.
        lb.pool().backends()[0].set_healthy(false);
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        assert!(lb.pool().backends()[0].is_healthy());
        assert_eq!(lb.instruments.repromotions.get(), 1.0);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn writes_follow_the_epoch_keyed_route() {
        let (srv1, db1) = tsdb_server();
        let (srv2, db2) = tsdb_server();
        let pool = BackendPool::new(
            vec![
                Backend::new("b1", srv1.base_url()),
                Backend::new("b2", srv2.base_url()),
            ],
            Strategy::round_robin(),
        )
        .with_write_routing();
        let lb = Arc::new(CeemsLb::new(
            pool,
            Authorizer::DirectDb(updater_with_unit()),
            LbConfig::default(),
        ));
        lb.pool().health_check(&Client::new());
        let lb_srv = lb.serve().unwrap();
        let url = format!("{}/api/v1/write", lb_srv.base_url());
        let body = |epoch: u64| {
            format!(
                "{{\"epoch\":{epoch},\"samples\":[{{\"labels\":{{\"__name__\":\"ingest\",\"uuid\":\"slurm-1\"}},\"t_ms\":1000,\"v\":7.0}}]}}"
            )
            .into_bytes()
        };
        // Both replicas claim leadership at epoch 0; the route breaks the tie
        // deterministically on the lowest backend id.
        let post = |b: Vec<u8>| {
            Client::new()
                .with_header("X-Grafana-User", "alice")
                .post(&url, b, "application/json")
                .unwrap()
        };
        let resp = post(body(0));
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        assert!(resp.body_string().contains("\"appended\":1"));

        // b2 wins an election: higher epoch takes over the write route and
        // the move is counted as a failover.
        db1.set_leader(false);
        db2.bump_epoch(1, 0).unwrap();
        lb.pool().health_check(&Client::new());
        assert_eq!(lb.pool().failovers(), 1);
        let resp = post(body(1));
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b2"));

        // A write stamped with the fenced-off old epoch is rejected with 409.
        let stale = post(body(0));
        assert_eq!(stale.status, Status(409), "body: {}", stale.body_string());
        assert!(stale.body_string().contains("stale-epoch"));
        lb_srv.shutdown();
        srv1.shutdown();
        srv2.shutdown();
    }

    #[test]
    fn all_backends_down_is_503() {
        let lb = lb_over(vec![Backend::new("b1", "http://127.0.0.1:1")], Strategy::round_robin());
        lb.pool().backends()[0].set_healthy(false);
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::UNAVAILABLE);
        lb_srv.shutdown();
    }
}
