//! The reverse proxy.
//!
//! Flow per request (§II.B.c): read the user from `X-Grafana-User` → for
//! query endpoints, introspect the PromQL for unit uuids → verify ownership
//! (admins skip) → pick a backend by strategy → forward and relay the
//! response. Unscoped or unverifiable queries are forbidden for non-admins:
//! the LB fails closed.

use std::sync::Arc;

use ceems_http::{Client, HttpServer, Request, Response, Router, ServerConfig, Status};

use crate::acl::Authorizer;
use crate::backend::BackendPool;
use crate::introspect::{introspect, Introspection};

/// LB configuration.
#[derive(Default)]
pub struct LbConfig {
    /// Users allowed to run unscoped queries (operators).
    pub admin_users: Vec<String>,
}


/// The load balancer.
pub struct CeemsLb {
    pool: BackendPool,
    authorizer: Authorizer,
    config: LbConfig,
    client: Client,
}

impl CeemsLb {
    /// Creates the LB.
    pub fn new(pool: BackendPool, authorizer: Authorizer, config: LbConfig) -> CeemsLb {
        CeemsLb {
            pool,
            authorizer,
            config,
            client: Client::new(),
        }
    }

    /// The backend pool (health checks, stats).
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    fn is_admin(&self, user: &str) -> bool {
        self.config.admin_users.iter().any(|a| a == user)
    }

    /// Authorizes one request; returns an error response when denied.
    fn authorize(&self, req: &Request) -> Result<(), Response> {
        let Some(user) = req.header("x-grafana-user").map(str::to_string) else {
            return Err(Response::error(
                Status::UNAUTHORIZED,
                "missing X-Grafana-User header",
            ));
        };
        if self.is_admin(&user) {
            return Ok(());
        }

        // Which expressions does this request evaluate?
        let mut exprs: Vec<&str> = Vec::new();
        if req.path.ends_with("/query") || req.path.ends_with("/query_range") {
            match req.query_param("query") {
                Some(q) => exprs.push(q),
                None => return Ok(()), // no expression; backend will 400
            }
        } else if req.path.ends_with("/series") || req.path.ends_with("/delete_series") {
            exprs.extend(req.query_params("match[]"));
            if req.path.ends_with("/delete_series") {
                return Err(Response::error(
                    Status::FORBIDDEN,
                    "admin endpoint requires an admin user",
                ));
            }
        } else {
            // Metadata endpoints (labels, status) carry no per-unit data.
            return Ok(());
        }

        let mut uuids = Vec::new();
        for q in exprs {
            match introspect(q) {
                Introspection::Units(u) => uuids.extend(u),
                Introspection::Unscoped => {
                    return Err(Response::error(
                        Status::FORBIDDEN,
                        "query is not scoped to your compute units (add a uuid matcher)",
                    ))
                }
                Introspection::Unverifiable => {
                    return Err(Response::error(
                        Status::FORBIDDEN,
                        "query ownership could not be verified",
                    ))
                }
            }
        }
        uuids.sort();
        uuids.dedup();
        if self.authorizer.verify(&user, &uuids) {
            Ok(())
        } else {
            Err(Response::error(
                Status::FORBIDDEN,
                "compute unit does not belong to you",
            ))
        }
    }

    /// Handles one request end to end.
    pub fn handle(&self, req: &Request) -> Response {
        if let Err(denied) = self.authorize(req) {
            return denied;
        }
        let Some(backend) = self.pool.pick() else {
            return Response::error(Status::UNAVAILABLE, "no healthy TSDB backend");
        };
        let _inflight = backend.begin();
        let url = format!("{}{}", backend.base_url, req.path_and_query());
        let mut client = self.client.clone();
        if let Some(u) = req.header("x-grafana-user") {
            client = client.with_header("X-Grafana-User", u);
        }
        match client.request(req.method, &url, req.body.clone(), req.header("content-type")) {
            Ok(mut resp) => {
                resp.headers
                    .insert("x-ceems-lb-backend".to_string(), backend.id.clone());
                resp
            }
            Err(e) => Response::error(Status::BAD_GATEWAY, format!("backend error: {e}")),
        }
    }

    /// Builds the proxy router (`/*rest` → handle).
    pub fn router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        for method in [
            ceems_http::Method::Get,
            ceems_http::Method::Post,
            ceems_http::Method::Delete,
        ] {
            let me = self.clone();
            router.route(method, "/*rest", move |req| me.handle(req));
        }
        router
    }

    /// Serves the LB on an ephemeral port.
    pub fn serve(self: &Arc<Self>) -> std::io::Result<HttpServer> {
        HttpServer::serve(ServerConfig::ephemeral(), self.router())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, Strategy};
    use ceems_metrics::labels;
    use ceems_tsdb::httpapi::api_router;
    use ceems_tsdb::Tsdb;
    use parking_lot::Mutex;

    use ceems_apiserver::metrics_source::TsdbLocalSource;
    use ceems_apiserver::rm::{ResourceManagerClient, UnitInfo};
    use ceems_apiserver::updater::{Updater, UpdaterConfig};
    use ceems_relstore::Db;

    struct OneUnitRm;

    impl ResourceManagerClient for OneUnitRm {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn units_since(&self, _s: i64) -> Vec<UnitInfo> {
            vec![UnitInfo {
                uuid: "slurm-1".into(),
                resource_manager: "slurm".into(),
                user: "alice".into(),
                project: "p".into(),
                partition: "cpu".into(),
                state: "RUNNING".into(),
                submitted_at_ms: 0,
                started_at_ms: Some(0),
                ended_at_ms: None,
                nnodes: 1,
                ncpus: 4,
                ngpus: 0,
            }]
        }
    }

    fn updater_with_unit() -> Arc<Mutex<Updater>> {
        let dir = std::env::temp_dir().join(format!(
            "ceems-lb-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut upd = Updater::new(
            Db::open(&dir).unwrap(),
            Arc::new(OneUnitRm),
            Arc::new(TsdbLocalSource::new(Arc::new(Tsdb::default()))),
            None,
            UpdaterConfig::default(),
        )
        .unwrap();
        upd.poll(1000).unwrap();
        Arc::new(Mutex::new(upd))
    }

    fn tsdb_server() -> (ceems_http::HttpServer, Arc<Tsdb>) {
        let db = Arc::new(Tsdb::default());
        for i in 0..10i64 {
            db.append(
                &labels! {"__name__" => "watts", "uuid" => "slurm-1"},
                i * 15_000,
                100.0,
            );
            db.append(
                &labels! {"__name__" => "watts", "uuid" => "slurm-2"},
                i * 15_000,
                200.0,
            );
        }
        let router = api_router(db.clone(), Arc::new(|| 135_000));
        let server = HttpServer::serve(ServerConfig::ephemeral(), router).unwrap();
        (server, db)
    }

    fn lb_over(backends: Vec<Arc<Backend>>, strategy: Strategy) -> Arc<CeemsLb> {
        Arc::new(CeemsLb::new(
            BackendPool::new(backends, strategy),
            Authorizer::DirectDb(updater_with_unit()),
            LbConfig {
                admin_users: vec!["root".into()],
            },
        ))
    }

    fn get(url: &str, user: Option<&str>) -> Response {
        let mut c = Client::new();
        if let Some(u) = user {
            c = c.with_header("X-Grafana-User", u);
        }
        c.get(url).unwrap()
    }

    #[test]
    fn owned_unit_query_passes_through() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::OK, "body: {}", resp.body_string());
        assert!(resp.body_string().contains("slurm-1"));
        assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn foreign_unit_forbidden() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let url = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-2%22%7D",
            lb_srv.base_url()
        );
        assert_eq!(get(&url, Some("alice")).status, Status::FORBIDDEN);
        // Admin may read anything.
        assert_eq!(get(&url, Some("root")).status, Status::OK);
        // Missing identity → 401.
        assert_eq!(get(&url, None).status, Status::UNAUTHORIZED);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn unscoped_and_unverifiable_fail_closed() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let unscoped = format!("{}/api/v1/query?query=watts", lb_srv.base_url());
        assert_eq!(get(&unscoped, Some("alice")).status, Status::FORBIDDEN);
        assert_eq!(get(&unscoped, Some("root")).status, Status::OK);
        let wild = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D~%22slurm-.%2A%22%7D",
            lb_srv.base_url()
        );
        assert_eq!(get(&wild, Some("alice")).status, Status::FORBIDDEN);
        // Admin delete endpoint blocked for non-admins.
        let del = format!(
            "{}/api/v1/admin/tsdb/delete_series?match[]=watts",
            lb_srv.base_url()
        );
        let resp = Client::new()
            .with_header("X-Grafana-User", "alice")
            .post(&del, Vec::new(), "application/json")
            .unwrap();
        assert_eq!(resp.status, Status::FORBIDDEN);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn round_robin_spreads_load_and_failover() {
        let (srv1, _d1) = tsdb_server();
        let (srv2, _d2) = tsdb_server();
        let lb = lb_over(
            vec![
                Backend::new("b1", srv1.base_url()),
                Backend::new("b2", srv2.base_url()),
            ],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let url = format!(
            "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
            lb_srv.base_url()
        );
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4 {
            let resp = get(&url, Some("alice"));
            assert_eq!(resp.status, Status::OK);
            seen.insert(resp.header("x-ceems-lb-backend").unwrap().to_string());
        }
        assert_eq!(seen.len(), 2);

        // Kill one backend; health check should route everything to the other.
        srv2.shutdown();
        lb.pool().health_check(&Client::new());
        for _ in 0..3 {
            let resp = get(&url, Some("alice"));
            assert_eq!(resp.status, Status::OK);
            assert_eq!(resp.header("x-ceems-lb-backend"), Some("b1"));
        }
        lb_srv.shutdown();
        srv1.shutdown();
    }

    #[test]
    fn metadata_endpoints_pass_without_uuid() {
        let (tsdb_srv, _db) = tsdb_server();
        let lb = lb_over(
            vec![Backend::new("b1", tsdb_srv.base_url())],
            Strategy::round_robin(),
        );
        let lb_srv = lb.serve().unwrap();
        let resp = get(&format!("{}/api/v1/labels", lb_srv.base_url()), Some("alice"));
        assert_eq!(resp.status, Status::OK);
        lb_srv.shutdown();
        tsdb_srv.shutdown();
    }

    #[test]
    fn all_backends_down_is_503() {
        let lb = lb_over(vec![Backend::new("b1", "http://127.0.0.1:1")], Strategy::round_robin());
        lb.pool().backends()[0].set_healthy(false);
        let lb_srv = lb.serve().unwrap();
        let resp = get(
            &format!(
                "{}/api/v1/query?query=watts%7Buuid%3D%22slurm-1%22%7D",
                lb_srv.base_url()
            ),
            Some("alice"),
        );
        assert_eq!(resp.status, Status::UNAVAILABLE);
        lb_srv.shutdown();
    }
}
