//! Text exposition format encoder (the `/metrics` wire format).

use std::fmt::Write as _;

use crate::model::{MetricFamily, MetricType};

/// Escapes a label value for the exposition format (`\\`, `\"`, `\n`).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP string (`\\` and `\n` only, per the format spec).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus does.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        // Shortest representation that round-trips.
        let mut s = format!("{}", v);
        if !s.contains('.') && !s.contains('e') && !s.contains("Inf") && !s.contains("NaN") {
            // Keep integers unadorned, matching Prometheus output.
            return s;
        }
        if s.ends_with(".0") {
            s.truncate(s.len() - 2);
        }
        s
    }
}

/// Encodes families into the text exposition format.
///
/// Families are assumed pre-sorted (the registry sorts them); metrics are
/// emitted in their stored order.
pub fn encode_families(families: &[MetricFamily]) -> String {
    let mut out = String::with_capacity(families.len() * 128);
    encode_families_into(families, &mut out);
    out
}

/// Encodes into a caller-provided buffer (lets the exporter reuse its scrape
/// buffer across requests).
pub fn encode_families_into(families: &[MetricFamily], out: &mut String) {
    for fam in families {
        if !fam.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        }
        if fam.metric_type != MetricType::Untyped {
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.metric_type.as_str());
        }
        for m in &fam.metrics {
            out.push_str(&fam.name);
            out.push_str(m.name_suffix);
            if !m.labels.is_empty() {
                out.push('{');
                let mut first = true;
                for (k, v) in m.labels.iter() {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&format_value(m.sample.value));
            if let Some(ts) = m.sample.timestamp_ms {
                let _ = write!(out, " {}", ts);
            }
            if let Some(ex) = &m.exemplar {
                // OpenMetrics exemplar syntax appended to the sample line.
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\"}} {}",
                    escape_label_value(&ex.trace_id),
                    format_value(ex.value)
                );
            }
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;
    use crate::model::{Metric, MetricFamily, MetricType, Sample};

    #[test]
    fn encode_basic_family() {
        let fam = MetricFamily::new(
            "ceems_rapl_package_joules_total",
            "RAPL package energy",
            MetricType::Counter,
        )
        .with_metric(labels! {"package" => "0"}, 1234.5)
        .with_metric(labels! {"package" => "1"}, 6789.0);
        let text = encode_families(&[fam]);
        assert_eq!(
            text,
            "# HELP ceems_rapl_package_joules_total RAPL package energy\n\
             # TYPE ceems_rapl_package_joules_total counter\n\
             ceems_rapl_package_joules_total{package=\"0\"} 1234.5\n\
             ceems_rapl_package_joules_total{package=\"1\"} 6789\n"
        );
    }

    #[test]
    fn encode_no_labels_and_timestamp() {
        let mut fam = MetricFamily::new("up", "", MetricType::Gauge);
        fam.metrics
            .push(Metric::new(labels! {}, Sample::at(1.0, 1700000000000)));
        let text = encode_families(&[fam]);
        assert_eq!(text, "# TYPE up gauge\nup 1 1700000000000\n");
    }

    #[test]
    fn encode_suffix_and_escapes() {
        let mut fam = MetricFamily::new("lat", "a\nb\\c", MetricType::Histogram);
        fam.metrics.push(Metric::suffixed(
            labels! {"le" => "0.5", "path" => "a\"b"},
            Sample::now(3.0),
            "_bucket",
        ));
        let text = encode_families(&[fam]);
        assert!(text.contains("# HELP lat a\\nb\\\\c\n"));
        assert!(text.contains("lat_bucket{le=\"0.5\",path=\"a\\\"b\"} 3\n"));
    }

    #[test]
    fn encode_exemplar_suffix() {
        use crate::model::Exemplar;
        let mut fam = MetricFamily::new("lat", "", MetricType::Histogram);
        fam.metrics.push(
            Metric::suffixed(labels! {"le" => "0.5"}, Sample::now(3.0), "_bucket")
                .with_exemplar(Some(Exemplar::new("deadbeef", 0.043))),
        );
        let text = encode_families(&[fam]);
        assert!(
            text.contains("lat_bucket{le=\"0.5\"} 3 # {trace_id=\"deadbeef\"} 0.043\n"),
            "got: {text}"
        );
    }

    #[test]
    fn special_values() {
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(-2.25), "-2.25");
    }
}
