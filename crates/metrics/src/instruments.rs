//! Thread-safe metric instruments: counters, gauges, histograms and their
//! labelled variants.
//!
//! Values are stored as `f64` bits in `AtomicU64`s so reads never lock and
//! increments are a short CAS loop, keeping the exporter's hot path (the
//! paper claims µs-scale scrape CPU cost) allocation- and lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use std::collections::HashMap;

use crate::labels::LabelSet;
use crate::model::{Exemplar, Metric, MetricFamily, MetricType, Sample};
use crate::registry::Collector;

/// Lock-free f64 cell.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter {
    inner: Arc<AtomicF64>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter {
            inner: Arc::new(AtomicF64::new(0.0)),
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Increments by `delta`. Negative deltas are ignored (counters are
    /// monotonic by contract).
    pub fn add(&self, delta: f64) {
        if delta >= 0.0 {
            self.inner.add(delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.inner.get()
    }
}

/// A gauge that can move in both directions.
#[derive(Clone, Debug)]
pub struct Gauge {
    inner: Arc<AtomicF64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge {
            inner: Arc::new(AtomicF64::new(0.0)),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.inner.set(v);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        self.inner.add(delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.inner.get()
    }
}

/// A cumulative histogram with fixed upper bounds.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: AtomicF64,
    total: AtomicU64,
    // One exemplar slot per bucket (last slot is +Inf), rotated by recency
    // window: the first traced observation of each window is kept until the
    // window expires, so a hot bucket can't churn its exemplar faster than
    // any scraper can see it.
    exemplars: Vec<parking_lot::Mutex<Option<(Exemplar, i64)>>>,
    exemplar_window_ms: std::sync::atomic::AtomicI64,
}

/// Default exemplar rotation window: one exemplar per bucket per 10 s, about
/// one scrape interval.
pub const DEFAULT_EXEMPLAR_WINDOW_MS: i64 = 10_000;

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds (sorted
    /// ascending; a `+Inf` bucket is implicit).
    pub fn new(mut bounds: Vec<f64>) -> Self {
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("histogram bound must not be NaN"));
        bounds.dedup();
        let counts = (0..bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..bounds.len() + 1)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        Histogram {
            inner: Arc::new(HistogramCore {
                bounds,
                counts,
                sum: AtomicF64::new(0.0),
                total: AtomicU64::new(0),
                exemplars,
                exemplar_window_ms: std::sync::atomic::AtomicI64::new(
                    DEFAULT_EXEMPLAR_WINDOW_MS,
                ),
            }),
        }
    }

    /// Sets the exemplar rotation window (milliseconds). Non-positive means
    /// every traced observation replaces the slot (last-write-wins).
    pub fn with_exemplar_window_ms(self, window_ms: i64) -> Self {
        self.inner
            .exemplar_window_ms
            .store(window_ms, Ordering::Relaxed);
        self
    }

    /// Exponential bucket helper: `start, start*factor, ...` (`count` bounds).
    pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            v.push(b);
            b *= factor;
        }
        v
    }

    /// Default latency bounds in seconds: 1µs → ~4s, ×4 per bucket. Wide
    /// enough for µs-scale cache hits and multi-second cold selects alike.
    pub fn duration_buckets() -> Vec<f64> {
        Self::exponential_buckets(1e-6, 4.0, 11)
    }

    /// Starts a timer that observes elapsed seconds into this histogram when
    /// dropped (or via [`HistogramTimer::observe_duration`]).
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: std::time::Instant::now(),
            done: false,
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        for (i, &bound) in self.inner.bounds.iter().enumerate() {
            if v <= bound {
                self.inner.counts[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.sum.add(v);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation and remembers `trace_id` as the exemplar for
    /// the (lowest) bucket the value lands in, so `/metrics` links that bucket
    /// to a stored trace. Stamped with wall time; use
    /// [`Histogram::observe_with_exemplar_at`] under a simulated clock.
    pub fn observe_with_exemplar(&self, v: f64, trace_id: &str) {
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        self.observe_with_exemplar_at(v, trace_id, now_ms);
    }

    /// [`Histogram::observe_with_exemplar`] with an explicit timestamp. The
    /// bucket keeps its current exemplar until a full rotation window has
    /// elapsed since that exemplar was stamped; the first observation after
    /// expiry takes the slot.
    pub fn observe_with_exemplar_at(&self, v: f64, trace_id: &str, now_ms: i64) {
        self.observe(v);
        let slot = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        let window = self.inner.exemplar_window_ms.load(Ordering::Relaxed);
        let mut guard = self.inner.exemplars[slot].lock();
        let replace = match &*guard {
            Some((_, stamped_ms)) => window <= 0 || now_ms - stamped_ms >= window,
            None => true,
        };
        if replace {
            *guard = Some((Exemplar::new(trace_id, v), now_ms));
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.inner.sum.get()
    }

    /// Renders the histogram into `_bucket`/`_sum`/`_count` metrics with the
    /// given base labels.
    pub fn render(&self, base: &LabelSet) -> Vec<Metric> {
        let mut out = Vec::with_capacity(self.inner.bounds.len() + 3);
        for (i, &bound) in self.inner.bounds.iter().enumerate() {
            let le = format_bound(bound);
            out.push(
                Metric::suffixed(
                    base.with("le", le),
                    Sample::now(self.inner.counts[i].load(Ordering::Relaxed) as f64),
                    "_bucket",
                )
                .with_exemplar(
                    self.inner.exemplars[i].lock().as_ref().map(|(e, _)| e.clone()),
                ),
            );
        }
        out.push(
            Metric::suffixed(
                base.with("le", "+Inf"),
                Sample::now(self.count() as f64),
                "_bucket",
            )
            .with_exemplar(
                self.inner.exemplars[self.inner.bounds.len()]
                    .lock()
                    .as_ref()
                    .map(|(e, _)| e.clone()),
            ),
        );
        out.push(Metric::suffixed(base.clone(), Sample::now(self.sum()), "_sum"));
        out.push(Metric::suffixed(
            base.clone(),
            Sample::now(self.count() as f64),
            "_count",
        ));
        out
    }
}

/// Observes elapsed wall time (in seconds) into a [`Histogram`] on drop.
pub struct HistogramTimer {
    hist: Histogram,
    start: std::time::Instant,
    done: bool,
}

impl HistogramTimer {
    /// Ends the timer now and returns the observed seconds.
    pub fn observe_duration(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        if self.done {
            return 0.0;
        }
        self.done = true;
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        secs
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.close();
    }
}

fn format_bound(b: f64) -> String {
    if b == b.trunc() && b.abs() < 1e15 {
        format!("{:.1}", b)
    } else {
        format!("{}", b)
    }
}

/// A family of labelled metrics of type `T`, keyed by label values.
#[derive(Clone)]
pub struct MetricVec<T> {
    name: String,
    help: String,
    metric_type: MetricType,
    label_names: Vec<String>,
    children: Arc<RwLock<HashMap<Vec<String>, T>>>,
    make: fn() -> T,
}

/// Counter family keyed by label values.
pub type CounterVec = MetricVec<Counter>;
/// Gauge family keyed by label values.
pub type GaugeVec = MetricVec<Gauge>;

impl<T: Clone> MetricVec<T> {
    fn new_inner(
        name: impl Into<String>,
        help: impl Into<String>,
        metric_type: MetricType,
        label_names: &[&str],
        make: fn() -> T,
    ) -> Self {
        MetricVec {
            name: name.into(),
            help: help.into(),
            metric_type,
            label_names: label_names.iter().map(|s| s.to_string()).collect(),
            children: Arc::new(RwLock::new(HashMap::new())),
            make,
        }
    }

    /// Gets or creates the child for the given label values (must match the
    /// declared label names in number and order).
    pub fn with_label_values(&self, values: &[&str]) -> T {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "label value count mismatch for {}",
            self.name
        );
        let key: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        if let Some(c) = self.children.read().get(&key) {
            return c.clone();
        }
        let mut w = self.children.write();
        w.entry(key).or_insert_with(|| (self.make)()).clone()
    }

    /// Removes the child with the given label values; returns true if it
    /// existed. Used by collectors when workloads disappear.
    pub fn remove_label_values(&self, values: &[&str]) -> bool {
        let key: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        self.children.write().remove(&key).is_some()
    }

    /// Drops all children.
    pub fn reset(&self) {
        self.children.write().clear();
    }

    /// Number of live children.
    pub fn child_count(&self) -> usize {
        self.children.read().len()
    }

    fn label_set_for(&self, values: &[String]) -> LabelSet {
        LabelSet::from_pairs(
            self.label_names
                .iter()
                .zip(values.iter())
                .map(|(k, v)| (k.clone(), v.clone())),
        )
    }
}

impl CounterVec {
    /// Creates a counter family.
    pub fn new(name: impl Into<String>, help: impl Into<String>, label_names: &[&str]) -> Self {
        MetricVec::new_inner(name, help, MetricType::Counter, label_names, Counter::new)
    }
}

impl GaugeVec {
    /// Creates a gauge family.
    pub fn new(name: impl Into<String>, help: impl Into<String>, label_names: &[&str]) -> Self {
        MetricVec::new_inner(name, help, MetricType::Gauge, label_names, Gauge::new)
    }
}

impl Collector for CounterVec {
    fn collect(&self) -> Vec<MetricFamily> {
        let children = self.children.read();
        let mut fam = MetricFamily::new(self.name.clone(), self.help.clone(), self.metric_type);
        for (values, c) in children.iter() {
            fam.metrics
                .push(Metric::new(self.label_set_for(values), Sample::now(c.get())));
        }
        fam.metrics.sort_by(|a, b| a.labels.cmp(&b.labels));
        vec![fam]
    }
}

impl Collector for GaugeVec {
    fn collect(&self) -> Vec<MetricFamily> {
        let children = self.children.read();
        let mut fam = MetricFamily::new(self.name.clone(), self.help.clone(), self.metric_type);
        for (values, g) in children.iter() {
            fam.metrics
                .push(Metric::new(self.label_set_for(values), Sample::now(g.get())));
        }
        fam.metrics.sort_by(|a, b| a.labels.cmp(&b.labels));
        vec![fam]
    }
}

/// Histogram family keyed by label values.
#[derive(Clone)]
pub struct HistogramVec {
    name: String,
    help: String,
    label_names: Vec<String>,
    bounds: Vec<f64>,
    children: Arc<RwLock<HashMap<Vec<String>, Histogram>>>,
}

impl HistogramVec {
    /// Creates a histogram family with shared bucket bounds.
    pub fn new(
        name: impl Into<String>,
        help: impl Into<String>,
        label_names: &[&str],
        bounds: Vec<f64>,
    ) -> Self {
        HistogramVec {
            name: name.into(),
            help: help.into(),
            label_names: label_names.iter().map(|s| s.to_string()).collect(),
            bounds,
            children: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Gets or creates the child histogram for the given label values.
    pub fn with_label_values(&self, values: &[&str]) -> Histogram {
        assert_eq!(values.len(), self.label_names.len());
        let key: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        if let Some(c) = self.children.read().get(&key) {
            return c.clone();
        }
        let mut w = self.children.write();
        w.entry(key)
            .or_insert_with(|| Histogram::new(self.bounds.clone()))
            .clone()
    }
}

impl Collector for HistogramVec {
    fn collect(&self) -> Vec<MetricFamily> {
        let children = self.children.read();
        let mut fam = MetricFamily::new(self.name.clone(), self.help.clone(), MetricType::Histogram);
        let mut keys: Vec<_> = children.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let h = &children[&key];
            let base = LabelSet::from_pairs(
                self.label_names
                    .iter()
                    .zip(key.iter())
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
            fam.metrics.extend(h.render(&base));
        }
        vec![fam]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn counter_monotonic() {
        let c = Counter::new();
        c.inc();
        c.add(2.5);
        c.add(-5.0); // ignored
        assert_eq!(c.get(), 3.5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10.0);
        g.add(-3.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn concurrent_counter_adds() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000.0);
    }

    #[test]
    fn histogram_buckets_cumulative() {
        let h = Histogram::new(vec![1.0, 5.0, 10.0]);
        for v in [0.5, 2.0, 7.0, 20.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 29.5).abs() < 1e-9);
        let rendered = h.render(&labels! {"x" => "y"});
        // 3 bounds + inf bucket + sum + count
        assert_eq!(rendered.len(), 6);
        let bucket_vals: Vec<f64> = rendered[..4].iter().map(|m| m.sample.value).collect();
        assert_eq!(bucket_vals, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn histogram_exemplars_attach_to_landing_bucket() {
        let h = Histogram::new(vec![1.0, 5.0, 10.0]);
        h.observe(0.5);
        h.observe_with_exemplar_at(2.0, "trace-a", 1_000);
        h.observe_with_exemplar_at(99.0, "trace-b", 1_000); // +Inf slot
        let rendered = h.render(&labels! {});
        // Buckets: le=1 (no exemplar), le=5 (trace-a), le=10 (none), +Inf (trace-b).
        assert!(rendered[0].exemplar.is_none());
        let ex = rendered[1].exemplar.as_ref().unwrap();
        assert_eq!(ex.trace_id, "trace-a");
        assert_eq!(ex.value, 2.0);
        assert!(rendered[2].exemplar.is_none());
        assert_eq!(rendered[3].exemplar.as_ref().unwrap().trace_id, "trace-b");
        // A later observation in the same bucket within the rotation window
        // does NOT replace the exemplar; after the window expires it does.
        h.observe_with_exemplar_at(3.0, "trace-c", 2_000);
        let rendered = h.render(&labels! {});
        assert_eq!(rendered[1].exemplar.as_ref().unwrap().trace_id, "trace-a");
        h.observe_with_exemplar_at(3.0, "trace-d", 1_000 + DEFAULT_EXEMPLAR_WINDOW_MS);
        let rendered = h.render(&labels! {});
        assert_eq!(rendered[1].exemplar.as_ref().unwrap().trace_id, "trace-d");
    }

    #[test]
    fn exemplar_rotation_boundary() {
        let h = Histogram::new(vec![1.0]).with_exemplar_window_ms(100);
        h.observe_with_exemplar_at(0.5, "first", 1_000);
        // One tick before expiry: the window holds.
        h.observe_with_exemplar_at(0.6, "early", 1_099);
        let ex = h.render(&labels! {})[0].exemplar.clone().unwrap();
        assert_eq!(ex.trace_id, "first");
        assert_eq!(ex.value, 0.5);
        // Exactly at the boundary (stamped + window): rotates.
        h.observe_with_exemplar_at(0.7, "boundary", 1_100);
        let ex = h.render(&labels! {})[0].exemplar.clone().unwrap();
        assert_eq!(ex.trace_id, "boundary");
        // The rotation re-stamps: the next window is measured from 1_100.
        h.observe_with_exemplar_at(0.8, "again", 1_199);
        assert_eq!(
            h.render(&labels! {})[0].exemplar.clone().unwrap().trace_id,
            "boundary"
        );
        // Buckets are independent: +Inf rotates on its own schedule.
        h.observe_with_exemplar_at(5.0, "inf-a", 1_150);
        h.observe_with_exemplar_at(6.0, "inf-b", 1_200);
        let rendered = h.render(&labels! {});
        assert_eq!(rendered[1].exemplar.clone().unwrap().trace_id, "inf-a");

        // Non-positive window restores last-write-wins.
        let h = Histogram::new(vec![1.0]).with_exemplar_window_ms(0);
        h.observe_with_exemplar_at(0.1, "a", 500);
        h.observe_with_exemplar_at(0.2, "b", 500);
        assert_eq!(
            h.render(&labels! {})[0].exemplar.clone().unwrap().trace_id,
            "b"
        );
    }

    #[test]
    fn exponential_buckets() {
        let b = Histogram::exponential_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn timer_observes_on_drop_and_explicitly() {
        let h = Histogram::new(Histogram::duration_buckets());
        {
            let _t = h.start_timer();
        }
        let secs = h.start_timer().observe_duration();
        assert_eq!(h.count(), 2);
        assert!(secs >= 0.0);
        assert!(h.sum() >= secs);
    }

    #[test]
    fn vec_children_and_removal() {
        let cv = CounterVec::new("jobs_total", "jobs", &["user", "state"]);
        cv.with_label_values(&["alice", "running"]).inc();
        cv.with_label_values(&["bob", "running"]).add(2.0);
        assert_eq!(cv.child_count(), 2);
        assert!(cv.remove_label_values(&["alice", "running"]));
        assert!(!cv.remove_label_values(&["alice", "running"]));
        assert_eq!(cv.child_count(), 1);

        let fams = cv.collect();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].metrics.len(), 1);
        assert_eq!(fams[0].metrics[0].labels.get("user"), Some("bob"));
    }

    #[test]
    #[should_panic(expected = "label value count mismatch")]
    fn vec_label_count_mismatch_panics() {
        let cv = CounterVec::new("x", "x", &["a", "b"]);
        cv.with_label_values(&["only-one"]);
    }
}

/// A sliding-window quantile summary (the fourth exposition metric type).
///
/// Keeps the most recent `window` observations in a ring buffer and renders
/// configured quantiles plus `_sum`/`_count`, matching how client libraries
/// implement summaries (exact within the window, unlike the bucketed
/// approximation of a histogram).
#[derive(Clone)]
pub struct Summary {
    inner: Arc<parking_lot::Mutex<SummaryCore>>,
}

struct SummaryCore {
    quantiles: Vec<f64>,
    window: usize,
    ring: Vec<f64>,
    next: usize,
    filled: bool,
    sum: f64,
    count: u64,
}

impl Summary {
    /// Creates a summary tracking the given quantiles over a window of the
    /// most recent `window` observations.
    pub fn new(quantiles: Vec<f64>, window: usize) -> Summary {
        assert!(window > 0, "summary window must be non-empty");
        assert!(
            quantiles.iter().all(|q| (0.0..=1.0).contains(q)),
            "quantiles must be in [0, 1]"
        );
        Summary {
            inner: Arc::new(parking_lot::Mutex::new(SummaryCore {
                quantiles,
                window,
                ring: Vec::with_capacity(window),
                next: 0,
                filled: false,
                sum: 0.0,
                count: 0,
            })),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let mut core = self.inner.lock();
        if core.ring.len() < core.window && !core.filled {
            core.ring.push(v);
            if core.ring.len() == core.window {
                core.filled = true;
            }
        } else {
            let at = core.next;
            core.ring[at] = v;
        }
        core.next = (core.next + 1) % core.window;
        core.sum += v;
        core.count += 1;
    }

    /// Total observations ever recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Current value of a quantile over the window (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let core = self.inner.lock();
        if core.ring.is_empty() {
            return None;
        }
        let mut sorted = core.ring.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64))
    }

    /// Renders quantile series plus `_sum`/`_count` with the base labels.
    pub fn render(&self, base: &LabelSet) -> Vec<Metric> {
        let core = self.inner.lock();
        let mut out = Vec::with_capacity(core.quantiles.len() + 2);
        drop(core);
        let quantiles = self.inner.lock().quantiles.clone();
        for q in quantiles {
            if let Some(v) = self.quantile(q) {
                out.push(Metric::new(
                    base.with("quantile", format!("{q}")),
                    Sample::now(v),
                ));
            }
        }
        let core = self.inner.lock();
        out.push(Metric::suffixed(base.clone(), Sample::now(core.sum), "_sum"));
        out.push(Metric::suffixed(
            base.clone(),
            Sample::now(core.count as f64),
            "_count",
        ));
        out
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use crate::labels;

    #[test]
    fn quantiles_over_window() {
        let s = Summary::new(vec![0.5, 0.9], 100);
        for i in 1..=100 {
            s.observe(i as f64);
        }
        assert_eq!(s.count(), 100);
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 50.5).abs() < 1.0, "p50={p50}");
        let p90 = s.quantile(0.9).unwrap();
        assert!((p90 - 90.1).abs() < 1.0, "p90={p90}");
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn window_slides() {
        let s = Summary::new(vec![0.5], 10);
        for _ in 0..10 {
            s.observe(1.0);
        }
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
        // Overwrite the whole window with a new regime.
        for _ in 0..10 {
            s.observe(100.0);
        }
        assert_eq!(s.quantile(0.5).unwrap(), 100.0);
        assert_eq!(s.count(), 20); // count is lifetime, not window
    }

    #[test]
    fn render_shape() {
        let s = Summary::new(vec![0.5, 0.99], 10);
        s.observe(2.0);
        s.observe(4.0);
        let out = s.render(&labels! {"handler" => "/metrics"});
        // 2 quantiles + sum + count.
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].labels.get("quantile"), Some("0.5"));
        assert_eq!(out[2].name_suffix, "_sum");
        assert_eq!(out[2].sample.value, 6.0);
        assert_eq!(out[3].sample.value, 2.0);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new(vec![0.5], 4);
        assert!(s.quantile(0.5).is_none());
        let out = s.render(&labels! {});
        assert_eq!(out.len(), 2); // just sum + count
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        Summary::new(vec![0.5], 0);
    }
}
