//! Immutable, sorted label sets.
//!
//! A label set is the identity of a time series. Labels are kept sorted by
//! name so that equality, hashing and the text exposition format are all
//! deterministic. The special label `__name__` carries the metric name in
//! TSDB contexts, as in Prometheus.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Reserved label name holding the metric name inside the TSDB.
pub const METRIC_NAME_LABEL: &str = "__name__";

/// An immutable set of `name=value` labels, sorted by name.
///
/// Duplicate names are rejected at build time. Empty values are allowed but
/// are semantically equivalent to the label being absent (Prometheus
/// convention); [`LabelSet::get`] returns `None` for empty values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct LabelSet {
    pairs: Vec<(String, String)>,
}

impl LabelSet {
    /// The empty label set.
    pub fn empty() -> Self {
        LabelSet { pairs: Vec::new() }
    }

    /// Builds a label set from unsorted pairs. Later duplicates win.
    pub fn from_pairs<I, S1, S2>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: Into<String>,
        S2: Into<String>,
    {
        let mut b = LabelSetBuilder::new();
        for (k, v) in pairs {
            b = b.label(k, v);
        }
        b.build()
    }

    /// Returns the value for `name`, treating empty values as absent.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
            .filter(|v| !v.is_empty())
    }

    /// Returns the metric name (`__name__` label), if present.
    pub fn metric_name(&self) -> Option<&str> {
        self.get(METRIC_NAME_LABEL)
    }

    /// Number of labels (including empty-valued ones).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Returns a new set with `name=value` added or replaced.
    pub fn with(&self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let mut b = LabelSetBuilder::from(self.clone());
        b = b.label(name, value);
        b.build()
    }

    /// Returns a new set without the given label.
    pub fn without(&self, name: &str) -> Self {
        LabelSet {
            pairs: self
                .pairs
                .iter()
                .filter(|(k, _)| k != name)
                .cloned()
                .collect(),
        }
    }

    /// Returns a new set restricted to the given label names (for
    /// `by (...)` aggregation grouping).
    pub fn restrict_to(&self, names: &[String]) -> Self {
        LabelSet {
            pairs: self
                .pairs
                .iter()
                .filter(|(k, _)| names.iter().any(|n| n == k))
                .cloned()
                .collect(),
        }
    }

    /// Returns a new set dropping the given label names (for
    /// `without (...)` aggregation grouping). Always drops `__name__`.
    pub fn drop_names(&self, names: &[String]) -> Self {
        LabelSet {
            pairs: self
                .pairs
                .iter()
                .filter(|(k, _)| k != METRIC_NAME_LABEL && !names.iter().any(|n| n == k))
                .cloned()
                .collect(),
        }
    }

    /// A stable 64-bit FNV-1a fingerprint of the label set.
    ///
    /// Used as the series identity hash in the TSDB index. Collisions are
    /// handled by the index (it compares full label sets on lookup).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (k, v) in &self.pairs {
            eat(k.as_bytes());
            eat(&[0xfe]);
            eat(v.as_bytes());
            eat(&[0xff]);
        }
        h
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (k, v) in &self.pairs {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{}=\"{}\"", k, crate::encode::escape_label_value(v))?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`LabelSet`]. Later inserts of the same name replace earlier
/// ones.
#[derive(Clone, Default)]
pub struct LabelSetBuilder {
    pairs: Vec<(String, String)>,
}

impl LabelSetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a label.
    pub fn label(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.pairs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.pairs.push((name, value));
        }
        self
    }

    /// Finalises the builder into a sorted [`LabelSet`].
    pub fn build(mut self) -> LabelSet {
        self.pairs.sort_by(|a, b| a.0.cmp(&b.0));
        LabelSet { pairs: self.pairs }
    }
}

impl From<LabelSet> for LabelSetBuilder {
    fn from(ls: LabelSet) -> Self {
        LabelSetBuilder { pairs: ls.pairs }
    }
}

/// Convenience macro producing a [`LabelSet`] from `name => value` pairs.
#[macro_export]
macro_rules! labels {
    () => { $crate::labels::LabelSet::empty() };
    ($($k:expr => $v:expr),+ $(,)?) => {{
        let mut b = $crate::labels::LabelSetBuilder::new();
        $( b = b.label($k, $v); )+
        b.build()
    }};
}

/// Validates a metric or label name: `[a-zA-Z_:][a-zA-Z0-9_:]*` for metric
/// names; label names may not contain `:`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates a label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_dedups() {
        let ls = LabelSetBuilder::new()
            .label("zeta", "1")
            .label("alpha", "2")
            .label("zeta", "3")
            .build();
        let pairs: Vec<_> = ls.iter().collect();
        assert_eq!(pairs, vec![("alpha", "2"), ("zeta", "3")]);
    }

    #[test]
    fn get_treats_empty_as_absent() {
        let ls = labels! {"a" => "", "b" => "x"};
        assert_eq!(ls.get("a"), None);
        assert_eq!(ls.get("b"), Some("x"));
        assert_eq!(ls.get("missing"), None);
    }

    #[test]
    fn fingerprint_stable_and_order_independent() {
        let a = LabelSet::from_pairs([("x", "1"), ("y", "2")]);
        let b = LabelSet::from_pairs([("y", "2"), ("x", "1")]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = LabelSet::from_pairs([("x", "1"), ("y", "3")]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_separator_prevents_concat_collisions() {
        // ("ab", "c") vs ("a", "bc") must not collide.
        let a = LabelSet::from_pairs([("ab", "c")]);
        let b = LabelSet::from_pairs([("a", "bc")]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn with_and_without() {
        let ls = labels! {"job" => "ceems", "node" => "n1"};
        let ls2 = ls.with("node", "n2");
        assert_eq!(ls2.get("node"), Some("n2"));
        let ls3 = ls2.without("job");
        assert_eq!(ls3.get("job"), None);
        assert_eq!(ls3.len(), 1);
    }

    #[test]
    fn restrict_and_drop() {
        let ls = labels! {"__name__" => "m", "a" => "1", "b" => "2"};
        let r = ls.restrict_to(&["a".to_string()]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("a"), Some("1"));
        let d = ls.drop_names(&["a".to_string()]);
        assert_eq!(d.get("b"), Some("2"));
        assert_eq!(d.get(METRIC_NAME_LABEL), None);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("ceems_cpu_seconds_total"));
        assert!(valid_metric_name("job:power_watts:rate5m"));
        assert!(!valid_metric_name("9bad"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_name("instance"));
        assert!(!valid_label_name("with:colon"));
    }

    #[test]
    fn display_escapes() {
        let ls = labels! {"path" => "a\"b\nc\\d"};
        let s = format!("{}", ls);
        assert_eq!(s, "{path=\"a\\\"b\\nc\\\\d\"}");
    }
}
