#![warn(missing_docs)]
//! Metric model and Prometheus-style text exposition format for CEEMS.
//!
//! This crate is the S1 substrate from `DESIGN.md`: the parts of the
//! Prometheus client/data-model ecosystem that every other CEEMS component
//! builds on.
//!
//! * [`mod@labels`] — immutable, sorted label sets with stable fingerprints.
//! * [`model`] — metric families, samples and metric types.
//! * [`instruments`] — thread-safe counters, gauges and histograms plus
//!   their labelled ("vec") variants.
//! * [`registry`] — a [`registry::Collector`] trait and [`registry::Registry`]
//!   that gathers families from many collectors, mirroring how the CEEMS
//!   exporter enables/disables collectors at runtime.
//! * [`encode`] / [`parse`] — the text exposition format, both directions.
//!   The TSDB scraper parses exactly what the exporter encodes.
//! * [`regexlite`] — a small, anchored regular-expression subset used for
//!   label matching (`=~` / `!~`) without an external regex dependency.
//! * [`matcher`] — label matchers used by TSDB selectors and relabelling.

pub mod encode;
pub mod instruments;
pub mod labels;
pub mod matcher;
pub mod model;
pub mod parse;
pub mod regexlite;
pub mod registry;

pub use encode::encode_families;
pub use instruments::{
    Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramTimer, HistogramVec, Summary,
    DEFAULT_EXEMPLAR_WINDOW_MS,
};
pub use labels::{LabelSet, LabelSetBuilder};
pub use matcher::{LabelMatcher, MatchOp};
pub use model::{Exemplar, Metric, MetricFamily, MetricType, Sample};
pub use parse::{parse_text, ParseError, ParsedExemplar, ParsedSample, ParsedScrape};
pub use registry::{Collector, Registry};
