//! Label matchers (`=`, `!=`, `=~`, `!~`) used by TSDB selectors.

use crate::labels::LabelSet;
use crate::regexlite::{Regex, RegexError};

/// Matcher operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchOp {
    /// `=` exact equality.
    Eq,
    /// `!=` inequality.
    Ne,
    /// `=~` anchored regex match.
    Re,
    /// `!~` anchored regex non-match.
    Nre,
}

impl MatchOp {
    /// Renders the operator as PromQL syntax.
    pub fn as_str(self) -> &'static str {
        match self {
            MatchOp::Eq => "=",
            MatchOp::Ne => "!=",
            MatchOp::Re => "=~",
            MatchOp::Nre => "!~",
        }
    }
}

/// A single `name <op> "value"` matcher.
#[derive(Clone, Debug)]
pub struct LabelMatcher {
    /// Label name the matcher applies to.
    pub name: String,
    /// Operator.
    pub op: MatchOp,
    /// Right-hand side (literal or pattern).
    pub value: String,
    regex: Option<Regex>,
}

impl PartialEq for LabelMatcher {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.op == other.op && self.value == other.value
    }
}

impl LabelMatcher {
    /// Builds a matcher, compiling the pattern for regex ops.
    pub fn new(name: impl Into<String>, op: MatchOp, value: impl Into<String>) -> Result<Self, RegexError> {
        let value = value.into();
        let regex = match op {
            MatchOp::Re | MatchOp::Nre => Some(Regex::new(&value)?),
            _ => None,
        };
        Ok(LabelMatcher {
            name: name.into(),
            op,
            value,
            regex,
        })
    }

    /// Equality matcher helper.
    pub fn eq(name: impl Into<String>, value: impl Into<String>) -> Self {
        LabelMatcher::new(name, MatchOp::Eq, value).expect("eq matcher cannot fail")
    }

    /// Tests a single label value (absent labels are the empty string, as in
    /// Prometheus).
    pub fn matches_value(&self, v: &str) -> bool {
        match self.op {
            MatchOp::Eq => v == self.value,
            MatchOp::Ne => v != self.value,
            MatchOp::Re => self.regex.as_ref().is_some_and(|r| r.is_match(v)),
            MatchOp::Nre => self.regex.as_ref().is_none_or(|r| !r.is_match(v)),
        }
    }

    /// Tests a full label set.
    pub fn matches(&self, labels: &LabelSet) -> bool {
        self.matches_value(labels.get(&self.name).unwrap_or(""))
    }

    /// True when the matcher can only be satisfied by one exact value —
    /// usable for index lookups instead of scans.
    pub fn is_exact(&self) -> bool {
        self.op == MatchOp::Eq && !self.value.is_empty()
    }
}

impl std::fmt::Display for LabelMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}\"{}\"",
            self.name,
            self.op.as_str(),
            crate::encode::escape_label_value(&self.value)
        )
    }
}

/// Tests all matchers against a label set.
pub fn matches_all(matchers: &[LabelMatcher], labels: &LabelSet) -> bool {
    matchers.iter().all(|m| m.matches(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn eq_and_ne() {
        let ls = labels! {"job" => "ceems", "instance" => "n1"};
        assert!(LabelMatcher::eq("job", "ceems").matches(&ls));
        assert!(!LabelMatcher::eq("job", "other").matches(&ls));
        let ne = LabelMatcher::new("job", MatchOp::Ne, "other").unwrap();
        assert!(ne.matches(&ls));
    }

    #[test]
    fn absent_label_is_empty_string() {
        let ls = labels! {"a" => "1"};
        assert!(LabelMatcher::eq("missing", "").matches(&ls));
        let re = LabelMatcher::new("missing", MatchOp::Re, ".*").unwrap();
        assert!(re.matches(&ls));
        let re2 = LabelMatcher::new("missing", MatchOp::Re, ".+").unwrap();
        assert!(!re2.matches(&ls));
    }

    #[test]
    fn regex_ops() {
        let ls = labels! {"node" => "gpu-a100-17"};
        let re = LabelMatcher::new("node", MatchOp::Re, "gpu-(v100|a100|h100)-\\d+").unwrap();
        assert!(re.matches(&ls));
        let nre = LabelMatcher::new("node", MatchOp::Nre, "cpu-.*").unwrap();
        assert!(nre.matches(&ls));
    }

    #[test]
    fn invalid_regex_rejected() {
        assert!(LabelMatcher::new("a", MatchOp::Re, "(unclosed").is_err());
    }

    #[test]
    fn display_roundtrip_syntax() {
        let m = LabelMatcher::new("uuid", MatchOp::Re, "123|456").unwrap();
        assert_eq!(format!("{}", m), "uuid=~\"123|456\"");
    }

    #[test]
    fn matches_all_conjunction() {
        let ls = labels! {"a" => "1", "b" => "2"};
        let ms = vec![LabelMatcher::eq("a", "1"), LabelMatcher::eq("b", "2")];
        assert!(matches_all(&ms, &ls));
        let ms2 = vec![LabelMatcher::eq("a", "1"), LabelMatcher::eq("b", "3")];
        assert!(!matches_all(&ms2, &ls));
    }
}
