//! Metric families, samples and metric types.

use serde::{Deserialize, Serialize};

use crate::labels::LabelSet;

/// The type of a metric family, as declared by `# TYPE` in the exposition
/// format.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MetricType {
    /// Monotonically increasing value (resets to zero on restart).
    Counter,
    /// Arbitrary value that can go up and down.
    Gauge,
    /// Cumulative histogram exposed as `_bucket`/`_sum`/`_count` series.
    Histogram,
    /// Quantile summary exposed as quantile series plus `_sum`/`_count`.
    Summary,
    /// Type not declared.
    Untyped,
}

impl MetricType {
    /// The keyword used in the `# TYPE` comment.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
            MetricType::Summary => "summary",
            MetricType::Untyped => "untyped",
        }
    }

    /// Parses a `# TYPE` keyword.
    pub fn from_str_loose(s: &str) -> MetricType {
        match s {
            "counter" => MetricType::Counter,
            "gauge" => MetricType::Gauge,
            "histogram" => MetricType::Histogram,
            "summary" => MetricType::Summary,
            _ => MetricType::Untyped,
        }
    }
}

/// A single sampled value with an optional millisecond timestamp.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Sample {
    /// Sample value.
    pub value: f64,
    /// Milliseconds since the epoch; `None` means "scrape time".
    pub timestamp_ms: Option<i64>,
}

impl Sample {
    /// A sample without an explicit timestamp.
    pub fn now(value: f64) -> Self {
        Sample {
            value,
            timestamp_ms: None,
        }
    }

    /// A sample at an explicit timestamp.
    pub fn at(value: f64, timestamp_ms: i64) -> Self {
        Sample {
            value,
            timestamp_ms: Some(timestamp_ms),
        }
    }
}

/// An OpenMetrics exemplar: a reference from a metric sample (typically a
/// histogram bucket) to one concrete traced event that landed in it.
///
/// Rendered on the wire as `# {trace_id="<id>"} <value>` appended to the
/// sample line, which is how a latency spike in a histogram links to a stored
/// trace in one click.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Exemplar {
    /// The trace ID of the exemplified event.
    pub trace_id: String,
    /// The observed value of that event (e.g. its latency in seconds).
    pub value: f64,
}

impl Exemplar {
    /// Creates an exemplar for a traced observation.
    pub fn new(trace_id: impl Into<String>, value: f64) -> Self {
        Exemplar {
            trace_id: trace_id.into(),
            value,
        }
    }
}

/// One labelled instance inside a family.
///
/// Histograms and summaries are flattened into plain samples by the
/// instruments layer before they reach this representation (matching the
/// wire format, where `_bucket`, `_sum` and `_count` are separate series).
#[derive(Clone, PartialEq, Debug)]
pub struct Metric {
    /// Labels excluding the metric name.
    pub labels: LabelSet,
    /// The sampled value.
    pub sample: Sample,
    /// Optional suffix appended to the family name on the wire
    /// (e.g. `_bucket`, `_sum`, `_count`). Empty for plain metrics.
    pub name_suffix: &'static str,
    /// Optional exemplar rendered after the sample in OpenMetrics syntax.
    pub exemplar: Option<Exemplar>,
}

impl Metric {
    /// Creates a plain metric (no name suffix).
    pub fn new(labels: LabelSet, sample: Sample) -> Self {
        Metric {
            labels,
            sample,
            name_suffix: "",
            exemplar: None,
        }
    }

    /// Creates a metric whose on-wire name is `family_name + suffix`.
    pub fn suffixed(labels: LabelSet, sample: Sample, suffix: &'static str) -> Self {
        Metric {
            labels,
            sample,
            name_suffix: suffix,
            exemplar: None,
        }
    }

    /// Attaches an exemplar, returning `self` for chaining.
    pub fn with_exemplar(mut self, exemplar: Option<Exemplar>) -> Self {
        self.exemplar = exemplar;
        self
    }
}

/// A named group of metrics sharing a type and help string.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricFamily {
    /// Metric family name, e.g. `ceems_compute_unit_cpu_user_seconds_total`.
    pub name: String,
    /// Human-readable help text.
    pub help: String,
    /// Declared type.
    pub metric_type: MetricType,
    /// Labelled instances.
    pub metrics: Vec<Metric>,
}

impl MetricFamily {
    /// Creates an empty family.
    pub fn new(
        name: impl Into<String>,
        help: impl Into<String>,
        metric_type: MetricType,
    ) -> Self {
        MetricFamily {
            name: name.into(),
            help: help.into(),
            metric_type,
            metrics: Vec::new(),
        }
    }

    /// Adds a plain metric and returns `self` for chaining.
    pub fn with_metric(mut self, labels: LabelSet, value: f64) -> Self {
        self.metrics.push(Metric::new(labels, Sample::now(value)));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn family_builder() {
        let fam = MetricFamily::new("up", "target up", MetricType::Gauge)
            .with_metric(labels! {"instance" => "n1"}, 1.0)
            .with_metric(labels! {"instance" => "n2"}, 0.0);
        assert_eq!(fam.metrics.len(), 2);
        assert_eq!(fam.metric_type.as_str(), "gauge");
    }

    #[test]
    fn type_roundtrip() {
        for t in [
            MetricType::Counter,
            MetricType::Gauge,
            MetricType::Histogram,
            MetricType::Summary,
            MetricType::Untyped,
        ] {
            assert_eq!(MetricType::from_str_loose(t.as_str()), t);
        }
        assert_eq!(MetricType::from_str_loose("bogus"), MetricType::Untyped);
    }
}
