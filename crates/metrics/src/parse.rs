//! Text exposition format parser, used by the TSDB scraper.
//!
//! The parser is line-oriented and tolerant in the same ways Prometheus'
//! scrape parser is: unknown comment lines are skipped, families may appear
//! without HELP/TYPE, and samples are returned flat (histogram `_bucket`
//! series are just samples with a `le` label).

use std::collections::HashMap;

use crate::labels::{LabelSet, LabelSetBuilder};
use crate::model::MetricType;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// On-wire metric name (including any `_bucket`-style suffix).
    pub name: String,
    /// Labels excluding the name.
    pub labels: LabelSet,
    /// Value.
    pub value: f64,
    /// Optional explicit timestamp in milliseconds.
    pub timestamp_ms: Option<i64>,
    /// Optional OpenMetrics exemplar (`# {trace_id="..."} value`) attached to
    /// the sample line. Exemplars annotate a sample; they are not samples
    /// themselves, so ingestion paths may ignore this field.
    pub exemplar: Option<ParsedExemplar>,
}

/// An exemplar parsed from the `# {labels} value` suffix of a sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedExemplar {
    /// Exemplar labels (typically just `trace_id`).
    pub labels: LabelSet,
    /// The exemplified observation's value.
    pub value: f64,
}

/// Parse failure with 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a scrape body.
#[derive(Clone, Debug, Default)]
pub struct ParsedScrape {
    /// All samples in document order.
    pub samples: Vec<ParsedSample>,
    /// Declared types by family name.
    pub types: HashMap<String, MetricType>,
    /// Declared help strings by family name.
    pub help: HashMap<String, String>,
}

/// Parses a full text-format document.
pub fn parse_text(body: &str) -> Result<ParsedScrape, ParseError> {
    let mut out = ParsedScrape::default();
    for (idx, raw) in body.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("").to_string();
                let ty = parts.next().unwrap_or("untyped").trim();
                out.types.insert(name, MetricType::from_str_loose(ty));
            } else if let Some(rest) = rest.strip_prefix("HELP ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("").to_string();
                let help = unescape_help(parts.next().unwrap_or(""));
                out.help.insert(name, help);
            }
            continue;
        }
        out.samples.push(parse_sample_line(line, lineno)?);
    }
    Ok(out)
}

fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_sample_line(line: &str, lineno: usize) -> Result<ParsedSample, ParseError> {
    let err = |m: &str| ParseError {
        line: lineno,
        message: m.to_string(),
    };
    let bytes = line.as_bytes();
    let mut i = 0;
    // Metric name.
    let start = i;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            i += 1;
        } else {
            break;
        }
    }
    if i == start {
        return Err(err("expected metric name"));
    }
    let name = line[start..i].to_string();

    // Optional labels.
    let labels = if i < bytes.len() && bytes[i] == b'{' {
        parse_label_block(line, lineno, &mut i)?
    } else {
        LabelSetBuilder::new().build()
    };

    // Value and timestamp, with an optional OpenMetrics exemplar suffix
    // (`# {labels} value`). Any '#' after the label block starts the
    // exemplar: sample values and timestamps cannot contain one.
    let rest = &line[i..];
    let (sample_part, exemplar_part) = match rest.find('#') {
        Some(pos) => (&rest[..pos], Some(&rest[pos + 1..])),
        None => (rest, None),
    };
    let sample_part = sample_part.trim();
    if sample_part.is_empty() {
        return Err(err("missing sample value"));
    }
    let mut parts = sample_part.split_whitespace();
    let vstr = parts.next().unwrap();
    let value = parse_value(vstr).ok_or_else(|| err(&format!("bad value {vstr:?}")))?;
    let timestamp_ms = match parts.next() {
        None => None,
        Some(t) => Some(
            t.parse::<i64>()
                .map_err(|_| err(&format!("bad timestamp {t:?}")))?,
        ),
    };
    if parts.next().is_some() {
        return Err(err("trailing garbage after timestamp"));
    }

    let exemplar = match exemplar_part {
        None => None,
        Some(ex) => Some(parse_exemplar(ex, lineno)?),
    };

    Ok(ParsedSample {
        name,
        labels,
        value,
        timestamp_ms,
        exemplar,
    })
}

/// Parses the exemplar suffix after the `#` marker: `{labels} value [ts]`.
fn parse_exemplar(s: &str, lineno: usize) -> Result<ParsedExemplar, ParseError> {
    let err = |m: &str| ParseError {
        line: lineno,
        message: m.to_string(),
    };
    let s = s.trim_start();
    if !s.starts_with('{') {
        return Err(err("expected '{' starting exemplar labels"));
    }
    let mut i = 0;
    let labels = parse_label_block(s, lineno, &mut i)?;
    let mut parts = s[i..].split_whitespace();
    let vstr = parts.next().ok_or_else(|| err("missing exemplar value"))?;
    let value = parse_value(vstr).ok_or_else(|| err(&format!("bad exemplar value {vstr:?}")))?;
    // Optional exemplar timestamp (seconds in OpenMetrics); tolerated and
    // discarded.
    if let Some(t) = parts.next() {
        t.parse::<f64>()
            .map_err(|_| err(&format!("bad exemplar timestamp {t:?}")))?;
    }
    if parts.next().is_some() {
        return Err(err("trailing garbage after exemplar"));
    }
    Ok(ParsedExemplar { labels, value })
}

/// Parses a `{name="value",...}` block starting at `line[*i]` (which must be
/// `'{'`), leaving `*i` just past the closing `'}'`.
fn parse_label_block(line: &str, lineno: usize, i: &mut usize) -> Result<LabelSet, ParseError> {
    let err = |m: &str| ParseError {
        line: lineno,
        message: m.to_string(),
    };
    let bytes = line.as_bytes();
    let mut builder = LabelSetBuilder::new();
    debug_assert_eq!(bytes[*i], b'{');
    *i += 1;
    loop {
        // Skip whitespace.
        while *i < bytes.len() && bytes[*i] == b' ' {
            *i += 1;
        }
        if *i < bytes.len() && bytes[*i] == b'}' {
            *i += 1;
            break;
        }
        // Label name.
        let ls = *i;
        while *i < bytes.len() {
            let c = bytes[*i] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                *i += 1;
            } else {
                break;
            }
        }
        if *i == ls {
            return Err(err("expected label name"));
        }
        let lname = line[ls..*i].to_string();
        if *i >= bytes.len() || bytes[*i] != b'=' {
            return Err(err("expected '=' after label name"));
        }
        *i += 1;
        if *i >= bytes.len() || bytes[*i] != b'"' {
            return Err(err("expected '\"' starting label value"));
        }
        *i += 1;
        let mut value = String::new();
        loop {
            if *i >= bytes.len() {
                return Err(err("unterminated label value"));
            }
            match bytes[*i] {
                b'"' => {
                    *i += 1;
                    break;
                }
                b'\\' => {
                    *i += 1;
                    if *i >= bytes.len() {
                        return Err(err("dangling escape in label value"));
                    }
                    match bytes[*i] {
                        b'n' => value.push('\n'),
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        other => {
                            value.push('\\');
                            value.push(other as char);
                        }
                    }
                    *i += 1;
                }
                _ => {
                    // Consume one UTF-8 char.
                    let rest = &line[*i..];
                    let c = rest.chars().next().unwrap();
                    value.push(c);
                    *i += c.len_utf8();
                }
            }
        }
        builder = builder.label(lname, value);
        // After a pair: ',' or '}'.
        while *i < bytes.len() && bytes[*i] == b' ' {
            *i += 1;
        }
        if *i < bytes.len() && bytes[*i] == b',' {
            *i += 1;
            continue;
        }
        if *i < bytes.len() && bytes[*i] == b'}' {
            *i += 1;
            break;
        }
        return Err(err("expected ',' or '}' in label set"));
    }
    Ok(builder.build())
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        _ => s.parse::<f64>().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_families;
    use crate::labels;
    use crate::model::{Metric, MetricFamily, MetricType, Sample};

    #[test]
    fn parse_simple() {
        let doc = "# HELP up is up\n# TYPE up gauge\nup{instance=\"n1\"} 1\nup{instance=\"n2\"} 0 1700000000000\n";
        let parsed = parse_text(doc).unwrap();
        assert_eq!(parsed.samples.len(), 2);
        assert_eq!(parsed.types["up"], MetricType::Gauge);
        assert_eq!(parsed.help["up"], "is up");
        assert_eq!(parsed.samples[0].labels.get("instance"), Some("n1"));
        assert_eq!(parsed.samples[1].timestamp_ms, Some(1700000000000));
    }

    #[test]
    fn parse_no_labels_and_special_values() {
        let doc = "a 1\nb NaN\nc +Inf\nd -Inf\ne 1e3\n";
        let parsed = parse_text(doc).unwrap();
        assert_eq!(parsed.samples.len(), 5);
        assert!(parsed.samples[1].value.is_nan());
        assert_eq!(parsed.samples[2].value, f64::INFINITY);
        assert_eq!(parsed.samples[4].value, 1000.0);
    }

    #[test]
    fn parse_escaped_label_values() {
        let doc = "m{p=\"a\\\"b\\nc\\\\d\"} 2\n";
        let parsed = parse_text(doc).unwrap();
        assert_eq!(parsed.samples[0].labels.get("p"), Some("a\"b\nc\\d"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let doc = "good 1\n{oops} 2\n";
        let e = parse_text(doc).unwrap_err();
        assert_eq!(e.line, 2);

        assert!(parse_text("m{a=} 1\n").is_err());
        assert!(parse_text("m{a=\"x} 1\n").is_err());
        assert!(parse_text("m 1 2 3\n").is_err());
        assert!(parse_text("m notanumber\n").is_err());
        assert!(parse_text("m{a=\"x\"\"b\"} 1\n").is_err());
    }

    #[test]
    fn roundtrip_through_encoder() {
        let mut fam = MetricFamily::new("lat", "latency", MetricType::Histogram);
        fam.metrics.push(Metric::suffixed(
            labels! {"le" => "0.5"},
            Sample::now(3.0),
            "_bucket",
        ));
        fam.metrics
            .push(Metric::suffixed(labels! {}, Sample::now(42.5), "_sum"));
        let text = encode_families(&[fam]);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.samples.len(), 2);
        assert_eq!(parsed.samples[0].name, "lat_bucket");
        assert_eq!(parsed.samples[1].name, "lat_sum");
        assert_eq!(parsed.samples[1].value, 42.5);
        assert_eq!(parsed.types["lat"], MetricType::Histogram);
    }

    #[test]
    fn parse_exemplar_suffix() {
        let doc = "lat_bucket{le=\"0.5\"} 3 # {trace_id=\"deadbeef\"} 0.043\n\
                   lat_bucket{le=\"+Inf\"} 4 1700000000000 # {trace_id=\"cafe\"} 1.5 1700000000.5\n\
                   plain 7\n";
        let parsed = parse_text(doc).unwrap();
        assert_eq!(parsed.samples.len(), 3);
        let ex = parsed.samples[0].exemplar.as_ref().unwrap();
        assert_eq!(ex.labels.get("trace_id"), Some("deadbeef"));
        assert_eq!(ex.value, 0.043);
        assert_eq!(parsed.samples[0].value, 3.0);
        let ex2 = parsed.samples[1].exemplar.as_ref().unwrap();
        assert_eq!(ex2.labels.get("trace_id"), Some("cafe"));
        assert_eq!(parsed.samples[1].timestamp_ms, Some(1700000000000));
        assert!(parsed.samples[2].exemplar.is_none());

        // A '#' inside a quoted label value does not start an exemplar.
        let tricky = parse_text("m{q=\"a # {b}\"} 2\n").unwrap();
        assert_eq!(tricky.samples[0].labels.get("q"), Some("a # {b}"));
        assert!(tricky.samples[0].exemplar.is_none());

        // Malformed exemplars are rejected.
        assert!(parse_text("m 1 # nolabels 2\n").is_err());
        assert!(parse_text("m 1 # {trace_id=\"x\"}\n").is_err());
        assert!(parse_text("m 1 # {trace_id=\"x\"} 1 2 3\n").is_err());
    }

    #[test]
    fn exemplar_roundtrip_through_encoder() {
        use crate::model::Exemplar;
        let mut fam = MetricFamily::new("lat", "", MetricType::Histogram);
        fam.metrics.push(
            Metric::suffixed(labels! {"le" => "0.5"}, Sample::now(3.0), "_bucket")
                .with_exemplar(Some(Exemplar::new("0123456789abcdef", 0.25))),
        );
        let text = encode_families(&[fam]);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed.samples.len(), 1);
        let ex = parsed.samples[0].exemplar.as_ref().unwrap();
        assert_eq!(ex.labels.get("trace_id"), Some("0123456789abcdef"));
        assert_eq!(ex.value, 0.25);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = "\n# arbitrary comment\n# EOF\nx 1\n\n";
        let parsed = parse_text(doc).unwrap();
        assert_eq!(parsed.samples.len(), 1);
    }
}
