//! A small anchored regular-expression engine for label matching.
//!
//! Prometheus anchors `=~`/`!~` patterns at both ends; this engine does the
//! same: [`Regex::is_match`] is a *full-string* match. Supported syntax:
//!
//! * literals, `.` (any char), escapes `\.` `\\` `\*` `\+` `\?` `\(` `\)`
//!   `\[` `\]` `\|` `\d` `\w` `\s`
//! * postfix `*`, `+`, `?`
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^...]`
//! * grouping `(...)` and alternation `a|b`
//!
//! Implementation: recursive-descent parse to an AST, backtracking matcher.
//! Pathological patterns can backtrack exponentially; CEEMS only feeds it
//! operator-written selector patterns, the same trust model Prometheus has
//! for recording rules.

use std::fmt;

/// Parse error for an invalid pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

#[derive(Clone, Debug, PartialEq)]
enum Node {
    /// Sequence of nodes matched in order.
    Seq(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// One literal char.
    Char(char),
    /// Any char.
    Dot,
    /// Character class.
    Class { negated: bool, items: Vec<ClassItem> },
    /// node{0,∞}
    Star(Box<Node>),
    /// node{1,∞}
    Plus(Box<Node>),
    /// node{0,1}
    Opt(Box<Node>),
    /// Empty match.
    Empty,
}

#[derive(Clone, Debug, PartialEq)]
enum ClassItem {
    Single(char),
    Range(char, char),
    Digit,
    Word,
    Space,
}

/// A compiled pattern with full-string match semantics.
#[derive(Clone, Debug)]
pub struct Regex {
    root: Node,
    pattern: String,
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let root = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(RegexError(format!(
                "unexpected {:?} at offset {}",
                p.chars[p.pos], p.pos
            )));
        }
        Ok(Regex {
            root,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Full-string match.
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        match_node(&self.root, &chars, 0, &mut |pos| pos == chars.len())
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Node::Empty),
            1 => Ok(items.pop().unwrap()),
            _ => Ok(Node::Seq(items)),
        }
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Star(Box::new(atom)))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.bump();
                Ok(Node::Opt(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(RegexError("unexpected end of pattern".into())),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(RegexError("unclosed group".into()));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::Dot),
            Some('\\') => match self.bump() {
                None => Err(RegexError("dangling escape".into())),
                Some('d') => Ok(Node::Class {
                    negated: false,
                    items: vec![ClassItem::Digit],
                }),
                Some('w') => Ok(Node::Class {
                    negated: false,
                    items: vec![ClassItem::Word],
                }),
                Some('s') => Ok(Node::Class {
                    negated: false,
                    items: vec![ClassItem::Space],
                }),
                Some(c) => Ok(Node::Char(c)),
            },
            Some(c @ ('*' | '+' | '?')) => {
                Err(RegexError(format!("quantifier {c:?} with nothing to repeat")))
            }
            Some(')') => Err(RegexError("unbalanced ')'".into())),
            Some(']') => Ok(Node::Char(']')),
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                None => return Err(RegexError("unclosed character class".into())),
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => {
                    // Leading ']' is a literal.
                    items.push(ClassItem::Single(']'));
                }
                Some('\\') => match self.bump() {
                    None => return Err(RegexError("dangling escape in class".into())),
                    Some('d') => items.push(ClassItem::Digit),
                    Some('w') => items.push(ClassItem::Word),
                    Some('s') => items.push(ClassItem::Space),
                    Some(c) => items.push(ClassItem::Single(c)),
                },
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied().is_some_and(|n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().ok_or_else(|| {
                            RegexError("unclosed range in character class".into())
                        })?;
                        if hi < c {
                            return Err(RegexError(format!("inverted range {c}-{hi}")));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Single(c));
                    }
                }
            }
        }
        Ok(Node::Class { negated, items })
    }
}

fn class_matches(negated: bool, items: &[ClassItem], c: char) -> bool {
    let hit = items.iter().any(|item| match *item {
        ClassItem::Single(s) => s == c,
        ClassItem::Range(lo, hi) => (lo..=hi).contains(&c),
        ClassItem::Digit => c.is_ascii_digit(),
        ClassItem::Word => c.is_ascii_alphanumeric() || c == '_',
        ClassItem::Space => c.is_whitespace(),
    });
    hit != negated
}

/// Backtracking matcher in continuation-passing style: `k(pos)` is invoked
/// with every position the node can end at.
fn match_node(node: &Node, input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Empty => k(pos),
        Node::Char(c) => pos < input.len() && input[pos] == *c && k(pos + 1),
        Node::Dot => pos < input.len() && k(pos + 1),
        Node::Class { negated, items } => {
            pos < input.len() && class_matches(*negated, items, input[pos]) && k(pos + 1)
        }
        Node::Seq(nodes) => match_seq(nodes, input, pos, k),
        Node::Alt(branches) => branches.iter().any(|b| match_node(b, input, pos, k)),
        Node::Opt(inner) => match_node(inner, input, pos, k) || k(pos),
        Node::Star(inner) => match_star(inner, input, pos, k),
        Node::Plus(inner) => {
            match_node(inner, input, pos, &mut |p| {
                // Guard against zero-width inner matches looping forever.
                if p == pos {
                    return k(p);
                }
                match_star(inner, input, p, k)
            })
        }
    }
}

fn match_star(
    inner: &Node,
    input: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // Greedy: try consuming more first, then fall back to stopping here.
    if match_node(inner, input, pos, &mut |p| p != pos && match_star(inner, input, p, k)) {
        return true;
    }
    k(pos)
}

fn match_seq(
    nodes: &[Node],
    input: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match nodes.split_first() {
        None => k(pos),
        Some((head, rest)) => match_node(head, input, pos, &mut |p| match_seq(rest, input, p, k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literals_are_fully_anchored() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "xabc"));
        assert!(!m("abc", "abcx"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn dot_star_plus_opt() {
        assert!(m("a.c", "abc"));
        assert!(!m("a.c", "ac"));
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m(".*", ""));
        assert!(m(".*", "anything at all"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]+", "cab"));
        assert!(!m("[abc]+", "cad"));
        assert!(m("[a-z0-9_]+", "node_42"));
        assert!(m("[^0-9]+", "nodigits"));
        assert!(!m("[^0-9]+", "has5digit"));
        assert!(m("\\d+", "12345"));
        assert!(m("\\w+", "a_b9"));
        assert!(!m("\\d+", "12a"));
        assert!(m("[-x]", "-"));
        assert!(m("[]a]", "]"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("gpu(0|1|2)", "gpu1"));
        assert!(!m("gpu(0|1|2)", "gpu3"));
        assert!(m("(intel|amd)_node_\\d+", "amd_node_77"));
        assert!(m("a(bc)*d", "ad"));
        assert!(m("a(bc)*d", "abcbcd"));
        assert!(m("", ""));
        assert!(!m("", "x"));
        assert!(m("a|", "a"));
        assert!(m("a|", ""));
    }

    #[test]
    fn escapes() {
        assert!(m("a\\.b", "a.b"));
        assert!(!m("a\\.b", "axb"));
        assert!(m("a\\\\b", "a\\b"));
        assert!(m("\\(x\\)", "(x)"));
    }

    #[test]
    fn slurm_job_patterns() {
        // The kind of patterns the LB introspection uses.
        let r = Regex::new("slurm-[0-9]+").unwrap();
        assert!(r.is_match("slurm-123456"));
        assert!(!r.is_match("slurm-"));
        assert!(!r.is_match("openstack-abc"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
    }

    #[test]
    fn zero_width_star_terminates() {
        // (a?)* on a non-matching tail must not hang.
        assert!(m("(a?)*b", "aaab"));
        assert!(!m("(a?)*b", "aaac"));
        assert!(m("(a*)*", "aaa"));
    }

    #[test]
    fn unicode_input() {
        assert!(m("héllo", "héllo"));
        assert!(m(".", "é"));
        assert!(!m("h.llo", "hllo"));
    }
}
