//! Collector trait and registry.
//!
//! The CEEMS exporter is structured as a set of named collectors that can be
//! enabled or disabled from the command line; the registry mirrors that: it
//! holds `(name, collector)` pairs and gathers all enabled families on each
//! scrape.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::model::MetricFamily;

/// Anything that can produce metric families on demand.
pub trait Collector: Send + Sync {
    /// Produces the current families. Called once per scrape.
    fn collect(&self) -> Vec<MetricFamily>;
}

impl<F> Collector for F
where
    F: Fn() -> Vec<MetricFamily> + Send + Sync,
{
    fn collect(&self) -> Vec<MetricFamily> {
        self()
    }
}

struct Entry {
    name: String,
    enabled: bool,
    collector: Arc<dyn Collector>,
}

/// A registry of named collectors.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<RwLock<Vec<Entry>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collector under a unique name, enabled by default.
    ///
    /// # Panics
    /// Panics if the name is already registered (a registration bug).
    pub fn register(&self, name: impl Into<String>, collector: Arc<dyn Collector>) {
        let name = name.into();
        let mut entries = self.entries.write();
        assert!(
            !entries.iter().any(|e| e.name == name),
            "collector {name:?} registered twice"
        );
        entries.push(Entry {
            name,
            enabled: true,
            collector,
        });
    }

    /// Enables or disables a collector by name; returns false if unknown.
    pub fn set_enabled(&self, name: &str, enabled: bool) -> bool {
        let mut entries = self.entries.write();
        match entries.iter_mut().find(|e| e.name == name) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Names of all registered collectors with their enabled state.
    pub fn collector_names(&self) -> Vec<(String, bool)> {
        self.entries
            .read()
            .iter()
            .map(|e| (e.name.clone(), e.enabled))
            .collect()
    }

    /// Gathers families from all enabled collectors, sorted by family name.
    pub fn gather(&self) -> Vec<MetricFamily> {
        let entries = self.entries.read();
        let mut out: Vec<MetricFamily> = Vec::new();
        for e in entries.iter().filter(|e| e.enabled) {
            out.extend(e.collector.collect());
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;
    use crate::model::{MetricFamily, MetricType};

    fn fam(name: &str, v: f64) -> Vec<MetricFamily> {
        vec![MetricFamily::new(name, "t", MetricType::Gauge).with_metric(labels! {}, v)]
    }

    #[test]
    fn gather_sorted_and_toggleable() {
        let r = Registry::new();
        r.register("b", Arc::new(move || fam("metric_b", 2.0)));
        r.register("a", Arc::new(move || fam("metric_a", 1.0)));
        let fams = r.gather();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].name, "metric_a");

        assert!(r.set_enabled("b", false));
        assert!(!r.set_enabled("zzz", false));
        let fams = r.gather();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].name, "metric_a");
        assert_eq!(
            r.collector_names(),
            vec![("b".to_string(), false), ("a".to_string(), true)]
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let r = Registry::new();
        r.register("x", Arc::new(move || fam("m", 0.0)));
        r.register("x", Arc::new(move || fam("m", 0.0)));
    }
}
