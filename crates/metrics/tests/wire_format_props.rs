//! Property tests on the exposition wire format: whatever the encoder
//! emits, the parser must read back exactly (this is the exporter→scraper
//! contract the whole stack rests on).

use ceems_metrics::encode::encode_families;
use ceems_metrics::labels::LabelSetBuilder;
use ceems_metrics::model::{Metric, MetricFamily, MetricType, Sample};
use ceems_metrics::parse::parse_text;
use proptest::prelude::*;

fn arb_label_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,12}"
}

fn arb_metric_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_:][a-zA-Z0-9_:]{0,20}"
}

fn arb_label_value() -> impl Strategy<Value = String> {
    // Arbitrary UTF-8 including quotes, backslashes and newlines — the
    // escaping must handle all of it.
    proptest::string::string_regex("[ -~é\\n\"\\\\]{0,16}").unwrap()
}

fn arb_family() -> impl Strategy<Value = MetricFamily> {
    (
        arb_metric_name(),
        proptest::collection::vec((arb_label_name(), arb_label_value()), 0..4),
        proptest::collection::vec(
            (
                prop_oneof![
                    4 => proptest::num::f64::NORMAL,
                    1 => Just(f64::INFINITY),
                    1 => Just(f64::NEG_INFINITY),
                    1 => Just(0.0),
                ],
                proptest::option::of(-1_000_000_000i64..1_000_000_000_000),
            ),
            1..4,
        ),
    )
        .prop_map(|(name, label_pairs, samples)| {
            let mut fam = MetricFamily::new(name, "prop test family", MetricType::Gauge);
            for (i, (v, ts)) in samples.into_iter().enumerate() {
                let mut b = LabelSetBuilder::new();
                for (k, val) in &label_pairs {
                    b = b.label(k.clone(), val.clone());
                }
                // Make instances distinct so series are well formed.
                b = b.label("idx", i.to_string());
                fam.metrics.push(Metric::new(
                    b.build(),
                    Sample {
                        value: v,
                        timestamp_ms: ts,
                    },
                ));
            }
            fam
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_parse_roundtrip(families in proptest::collection::vec(arb_family(), 1..4)) {
        let text = encode_families(&families);
        let parsed = parse_text(&text).expect("encoder output must parse");

        let want: usize = families.iter().map(|f| f.metrics.len()).sum();
        prop_assert_eq!(parsed.samples.len(), want);

        let mut i = 0;
        for fam in &families {
            prop_assert_eq!(parsed.types.get(&fam.name), Some(&MetricType::Gauge));
            for m in &fam.metrics {
                let got = &parsed.samples[i];
                i += 1;
                prop_assert_eq!(&got.name, &fam.name);
                prop_assert_eq!(got.timestamp_ms, m.sample.timestamp_ms);
                // Values survive through the shortest-roundtrip formatter.
                prop_assert!(
                    got.value == m.sample.value
                        || (got.value.is_nan() && m.sample.value.is_nan()),
                    "value {} != {}", got.value, m.sample.value
                );
                // Labels: every non-empty original label survives.
                for (k, v) in m.labels.iter() {
                    if !v.is_empty() {
                        prop_assert_eq!(got.labels.get(k), Some(v), "label {}", k);
                    }
                }
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,256}") {
        let _ = parse_text(&input); // must return, never panic
    }

    #[test]
    fn label_matcher_regex_never_panics(pattern in "[ -~]{0,24}", input in "[ -~]{0,24}") {
        if let Ok(re) = ceems_metrics::regexlite::Regex::new(&pattern) {
            let _ = re.is_match(&input);
        }
    }
}
