//! HTTP server request instrumentation.
//!
//! Wraps a [`Router`] into a handler for [`ceems_http::HttpServer::serve_fn`]
//! that counts requests by method/status class and observes handling latency,
//! so every component's server exports a uniform
//! `ceems_<component>_http_requests_total` / `..._http_request_duration_seconds`
//! pair from the same registry its `/metrics` endpoint serves.

use std::sync::Arc;
use std::time::Instant;

use ceems_http::{Request, Response, Router};
use ceems_metrics::{CounterVec, Histogram, Registry};

use crate::duration_buckets;

/// Request counter + latency histogram for one HTTP server.
#[derive(Clone)]
pub struct HttpInstruments {
    requests: CounterVec,
    duration: Histogram,
}

impl HttpInstruments {
    /// Creates the instruments with `ceems_<component>_http_*` names and
    /// registers them in the registry.
    pub fn new(component: &str, registry: &Registry) -> HttpInstruments {
        let requests = CounterVec::new(
            format!("ceems_{component}_http_requests_total"),
            "HTTP requests handled, by method and status class.",
            &["method", "code"],
        );
        let duration = Histogram::new(duration_buckets());
        registry.register(
            format!("ceems_{component}_http_requests_total"),
            Arc::new(requests.clone()),
        );
        let name = format!("ceems_{component}_http_request_duration_seconds");
        let d2 = duration.clone();
        registry.register(name.clone(), {
            let help = "HTTP request handling latency in seconds.";
            Arc::new(move || vec![crate::histogram_family(&name, help, &d2)])
        });
        HttpInstruments { requests, duration }
    }

    /// Records one handled request.
    pub fn observe(&self, method: &str, status: u16, seconds: f64) {
        let class = match status {
            100..=199 => "1xx",
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        self.requests.with_label_values(&[method, class]).inc();
        self.duration.observe(seconds);
    }

    /// Wraps a router into an instrumented handler for `serve_fn`.
    pub fn wrap(&self, router: Router) -> Arc<dyn Fn(Request) -> Response + Send + Sync> {
        let me = self.clone();
        Arc::new(move |req: Request| {
            let method = req.method.as_str();
            let start = Instant::now();
            let resp = router.dispatch(req);
            me.observe(method, resp.status.0, start.elapsed().as_secs_f64());
            resp
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{Method, Status};

    #[test]
    fn wrapped_router_counts_by_status_class() {
        let registry = Registry::new();
        let http = HttpInstruments::new("test", &registry);
        let mut router = Router::new();
        router.get("/ok", |_req| Response::text("fine"));
        let handler = http.wrap(router);

        handler(Request::new(Method::Get, "/ok"));
        handler(Request::new(Method::Get, "/ok"));
        handler(Request::new(Method::Get, "/missing"));

        assert_eq!(
            http.requests.with_label_values(&["GET", "2xx"]).get(),
            2.0
        );
        assert_eq!(
            http.requests.with_label_values(&["GET", "4xx"]).get(),
            1.0
        );
        assert_eq!(http.duration.count(), 3);

        let fams = registry.gather();
        assert!(fams
            .iter()
            .any(|f| f.name == "ceems_test_http_requests_total"));
        assert!(fams
            .iter()
            .any(|f| f.name == "ceems_test_http_request_duration_seconds"));
        let _ = Status::OK;
    }
}
