//! HTTP server request instrumentation.
//!
//! Wraps a [`Router`] into a handler for [`ceems_http::HttpServer::serve_fn`]
//! that counts requests by method/status class and observes handling latency,
//! so every component's server exports a uniform
//! `ceems_<component>_http_requests_total` / `..._http_request_duration_seconds`
//! pair from the same registry its `/metrics` endpoint serves.
//!
//! Two clocks matter under the epoll reactor: the latency histogram (and any
//! trace stage clock) starts at **handler dispatch**, while the reactor stamps
//! `Request::received_at` at **parse completion**. On a pipelined keep-alive
//! connection a request can sit parsed-but-queued behind its predecessors;
//! that gap is surfaced separately as `..._http_queue_delay_seconds` instead
//! of being folded into handler time, which keeps `sum(stages) ≤ totalMs` for
//! traces. When a handler stores the request's trace (sampled or slow), it
//! sets [`TRACE_STORED_HEADER`] on the response and the duration histogram
//! records the trace ID as an OpenMetrics exemplar on the landing bucket.

use std::sync::Arc;
use std::time::Instant;

use ceems_http::{Request, Response, Router};
use ceems_metrics::{CounterVec, Histogram, Registry};

use crate::duration_buckets;

/// Response header a handler sets (to the trace ID) when the request's trace
/// was persisted to the trace store — picked up by [`HttpInstruments::wrap`]
/// to attach the ID as a histogram exemplar.
pub const TRACE_STORED_HEADER: &str = "x-ceems-trace-stored";

/// Request counter + latency/queue-delay histograms for one HTTP server.
#[derive(Clone)]
pub struct HttpInstruments {
    requests: CounterVec,
    duration: Histogram,
    queue_delay: Histogram,
}

impl HttpInstruments {
    /// Creates the instruments with `ceems_<component>_http_*` names and
    /// registers them in the registry.
    pub fn new(component: &str, registry: &Registry) -> HttpInstruments {
        let requests = CounterVec::new(
            format!("ceems_{component}_http_requests_total"),
            "HTTP requests handled, by method and status class.",
            &["method", "code"],
        );
        let duration = Histogram::new(duration_buckets());
        let queue_delay = Histogram::new(duration_buckets());
        registry.register(
            format!("ceems_{component}_http_requests_total"),
            Arc::new(requests.clone()),
        );
        let name = format!("ceems_{component}_http_request_duration_seconds");
        let d2 = duration.clone();
        registry.register(name.clone(), {
            let help = "HTTP request handling latency in seconds (from handler dispatch).";
            Arc::new(move || vec![crate::histogram_family(&name, help, &d2)])
        });
        let qname = format!("ceems_{component}_http_queue_delay_seconds");
        let q2 = queue_delay.clone();
        registry.register(qname.clone(), {
            let help = "Seconds between request parse completion and handler dispatch \
                        (pipelined keep-alive queueing).";
            Arc::new(move || vec![crate::histogram_family(&qname, help, &q2)])
        });
        HttpInstruments {
            requests,
            duration,
            queue_delay,
        }
    }

    /// Records one handled request.
    pub fn observe(&self, method: &str, status: u16, seconds: f64) {
        self.observe_with_exemplar(method, status, seconds, None)
    }

    /// Records one handled request, attaching a trace-ID exemplar to the
    /// duration bucket when the request's trace was stored.
    pub fn observe_with_exemplar(
        &self,
        method: &str,
        status: u16,
        seconds: f64,
        trace_id: Option<&str>,
    ) {
        let class = match status {
            100..=199 => "1xx",
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        self.requests.with_label_values(&[method, class]).inc();
        match trace_id {
            Some(id) => self.duration.observe_with_exemplar(seconds, id),
            None => self.duration.observe(seconds),
        }
    }

    /// Wraps a router into an instrumented handler for `serve_fn`.
    pub fn wrap(&self, router: Router) -> Arc<dyn Fn(Request) -> Response + Send + Sync> {
        let me = self.clone();
        Arc::new(move |req: Request| {
            let method = req.method.as_str();
            if let Some(received) = req.received_at {
                me.queue_delay.observe(received.elapsed().as_secs_f64());
            }
            // The duration clock anchors here, at dispatch, NOT at socket
            // readability — queue time on pipelined connections is counted
            // above, never inside handler latency or trace stages.
            let start = Instant::now();
            let resp = router.dispatch(req);
            let stored = resp.headers.get(TRACE_STORED_HEADER).cloned();
            me.observe_with_exemplar(
                method,
                resp.status.0,
                start.elapsed().as_secs_f64(),
                stored.as_deref(),
            );
            resp
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_http::{Method, Status};

    #[test]
    fn wrapped_router_counts_by_status_class() {
        let registry = Registry::new();
        let http = HttpInstruments::new("test", &registry);
        let mut router = Router::new();
        router.get("/ok", |_req| Response::text("fine"));
        let handler = http.wrap(router);

        handler(Request::new(Method::Get, "/ok"));
        handler(Request::new(Method::Get, "/ok"));
        handler(Request::new(Method::Get, "/missing"));

        assert_eq!(
            http.requests.with_label_values(&["GET", "2xx"]).get(),
            2.0
        );
        assert_eq!(
            http.requests.with_label_values(&["GET", "4xx"]).get(),
            1.0
        );
        assert_eq!(http.duration.count(), 3);

        let fams = registry.gather();
        assert!(fams
            .iter()
            .any(|f| f.name == "ceems_test_http_requests_total"));
        assert!(fams
            .iter()
            .any(|f| f.name == "ceems_test_http_request_duration_seconds"));
        assert!(fams
            .iter()
            .any(|f| f.name == "ceems_test_http_queue_delay_seconds"));
        let _ = Status::OK;
    }

    #[test]
    fn queue_delay_observed_from_received_at() {
        let registry = Registry::new();
        let http = HttpInstruments::new("qd", &registry);
        let mut router = Router::new();
        router.get("/ok", |_req| Response::text("fine"));
        let handler = http.wrap(router);

        let mut req = Request::new(Method::Get, "/ok");
        req.received_at = Some(Instant::now() - std::time::Duration::from_millis(5));
        handler(req);
        // Client-built requests without a parse stamp don't observe.
        handler(Request::new(Method::Get, "/ok"));
        assert_eq!(http.queue_delay.count(), 1);
        assert!(http.queue_delay.sum() >= 0.005);
    }

    #[test]
    fn stored_trace_header_becomes_duration_exemplar() {
        let registry = Registry::new();
        let http = HttpInstruments::new("ex", &registry);
        let mut router = Router::new();
        router.get("/traced", |_req| {
            Response::text("ok").with_header(TRACE_STORED_HEADER, "feedc0de")
        });
        let handler = http.wrap(router);
        handler(Request::new(Method::Get, "/traced"));

        let text = ceems_metrics::encode_families(&registry.gather());
        assert!(
            text.contains("# {trace_id=\"feedc0de\"}"),
            "exemplar missing from:\n{text}"
        );
    }
}
