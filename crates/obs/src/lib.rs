#![warn(missing_docs)]
//! CEEMS self-monitoring facility.
//!
//! The stack positions itself as *the* monitoring layer for a platform, so it
//! must be able to watch itself with its own tools ("CEEMS scrapes CEEMS").
//! This crate is the shared substrate every component threads through:
//!
//! - [`Obs`] — a per-process instrument registry built on
//!   [`ceems_metrics::Registry`]: named counters/gauges/histograms that render
//!   through the repo's own text encoder and are served from a `/metrics`
//!   endpoint ([`metrics_handler`]).
//! - [`trace`] — span-based query tracing: a trace ID minted at the LB (or
//!   accepted via the `x-ceems-trace-id` header) propagates proxy → TSDB HTTP
//!   API → PromQL eval; each stage records wall time, and work counts (series
//!   touched, samples decoded, steps fanned out) accumulate on the trace.
//! - [`slowlog`] — a configurable slow-query log emitting one structured
//!   `key=value` line per offending query.
//! - [`http`] — request-handling instruments that wrap any
//!   [`ceems_http::Router`] for [`ceems_http::HttpServer::serve_fn`].

pub mod http;
pub mod slowlog;
pub mod store;
pub mod trace;

use std::sync::Arc;

use ceems_http::{Request, Response, Router};
use ceems_metrics::labels::LabelSet;
use ceems_metrics::{
    encode_families, Collector, Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramVec,
    Metric, MetricFamily, MetricType, Registry, Sample,
};

/// The standard HTTP header carrying a query trace ID across components.
pub const TRACE_HEADER: &str = "x-ceems-trace-id";

/// Default latency bucket bounds in seconds (1µs → ~4s, ×4 per bucket).
pub fn duration_buckets() -> Vec<f64> {
    Histogram::duration_buckets()
}

/// Renders a bare [`Counter`] as a single-sample family.
pub fn counter_family(name: &str, help: &str, c: &Counter) -> MetricFamily {
    MetricFamily::new(name, help, MetricType::Counter).with_metric(LabelSet::empty(), c.get())
}

/// Renders a bare [`Gauge`] as a single-sample family.
pub fn gauge_family(name: &str, help: &str, g: &Gauge) -> MetricFamily {
    MetricFamily::new(name, help, MetricType::Gauge).with_metric(LabelSet::empty(), g.get())
}

/// Renders a value computed at scrape time as a gauge family.
pub fn gauge_value_family(name: &str, help: &str, v: f64) -> MetricFamily {
    MetricFamily::new(name, help, MetricType::Gauge).with_metric(LabelSet::empty(), v)
}

/// Renders a value computed at scrape time as a counter family.
pub fn counter_value_family(name: &str, help: &str, v: f64) -> MetricFamily {
    MetricFamily::new(name, help, MetricType::Counter).with_metric(LabelSet::empty(), v)
}

/// Renders a bare (unlabelled) [`Histogram`] as a `_bucket`/`_sum`/`_count`
/// family.
pub fn histogram_family(name: &str, help: &str, h: &Histogram) -> MetricFamily {
    let mut fam = MetricFamily::new(name, help, MetricType::Histogram);
    fam.metrics = h.render(&LabelSet::empty());
    fam
}

/// A per-process instrument registry: creates named instruments and registers
/// a rendering collector for each, so `registry().gather()` (and therefore
/// `/metrics`) always reflects every instrument handed out.
#[derive(Clone, Default)]
pub struct Obs {
    registry: Registry,
}

impl Obs {
    /// Creates an empty instrument registry.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// The underlying collector registry (for extra hand-written collectors).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Creates and registers a named counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        let (n, h, c2) = (name.to_string(), help.to_string(), c.clone());
        self.registry
            .register(name, Arc::new(move || vec![counter_family(&n, &h, &c2)]));
        c
    }

    /// Creates and registers a named gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        let (n, h, g2) = (name.to_string(), help.to_string(), g.clone());
        self.registry
            .register(name, Arc::new(move || vec![gauge_family(&n, &h, &g2)]));
        g
    }

    /// Creates and registers a named histogram with the given bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<f64>) -> Histogram {
        let hist = Histogram::new(bounds);
        let (n, h, h2) = (name.to_string(), help.to_string(), hist.clone());
        self.registry
            .register(name, Arc::new(move || vec![histogram_family(&n, &h, &h2)]));
        hist
    }

    /// Creates and registers a labelled counter family.
    pub fn counter_vec(&self, name: &str, help: &str, label_names: &[&str]) -> CounterVec {
        let cv = CounterVec::new(name, help, label_names);
        self.registry.register(name, Arc::new(cv.clone()));
        cv
    }

    /// Creates and registers a labelled gauge family.
    pub fn gauge_vec(&self, name: &str, help: &str, label_names: &[&str]) -> GaugeVec {
        let gv = GaugeVec::new(name, help, label_names);
        self.registry.register(name, Arc::new(gv.clone()));
        gv
    }

    /// Creates and registers a labelled histogram family.
    pub fn histogram_vec(
        &self,
        name: &str,
        help: &str,
        label_names: &[&str],
        bounds: Vec<f64>,
    ) -> HistogramVec {
        let hv = HistogramVec::new(name, help, label_names, bounds);
        self.registry.register(name, Arc::new(hv.clone()));
        hv
    }

    /// Registers an arbitrary collector under a unique name.
    pub fn register(&self, name: &str, collector: Arc<dyn Collector>) {
        self.registry.register(name, collector);
    }

    /// Renders the whole registry in the text exposition format.
    pub fn render(&self) -> String {
        encode_families(&self.registry.gather())
    }
}

/// Builds a `/metrics` handler over a registry, using the repo's own encoder.
pub fn metrics_handler(
    registry: Registry,
) -> impl Fn(&Request) -> Response + Send + Sync + 'static {
    move |_req| {
        Response::text(encode_families(&registry.gather()))
            .with_header("content-type", "text/plain; version=0.0.4")
    }
}

/// Adds a `GET /metrics` route serving the registry. Register this **before**
/// any wildcard route (first match wins in [`Router`]).
pub fn add_metrics_route(router: &mut Router, registry: Registry) {
    router.get("/metrics", metrics_handler(registry));
}

// Re-exported so downstream crates can build families without importing
// ceems-metrics model types directly.
pub use ceems_metrics::{Metric as ObsMetric, Sample as ObsSample};
pub use http::HttpInstruments;
pub use store::{TraceSampler, TraceSink, TraceStore, TraceStoreConfig};

/// Registers a `ceems_build_info{component,version} 1` gauge on a registry,
/// the standard "what is running here" identity series that meta-monitoring
/// scrapes from every component.
pub fn register_build_info(registry: &Registry, component: &str) {
    let component = component.to_string();
    registry.register(
        "ceems_build_info",
        Arc::new(move || {
            vec![MetricFamily::new(
                "ceems_build_info",
                "Build identity of this CEEMS component",
                MetricType::Gauge,
            )
            .with_metric(
                LabelSet::from_pairs([
                    ("component".to_string(), component.clone()),
                    ("version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
                ]),
                1.0,
            )]
        }),
    );
}

/// Convenience: a `MetricFamily` for a precomputed histogram-style snapshot
/// (used by collectors that expose another component's internal histogram).
pub fn family_with_metrics(
    name: &str,
    help: &str,
    metric_type: MetricType,
    metrics: Vec<Metric>,
) -> MetricFamily {
    let mut fam = MetricFamily::new(name, help, metric_type);
    fam.metrics = metrics;
    fam
}

/// Builds a plain metric sample (no suffix) for collector implementations.
pub fn metric(labels: LabelSet, value: f64) -> Metric {
    Metric::new(labels, Sample::now(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceems_metrics::parse_text;

    #[test]
    fn obs_registers_and_renders_instruments() {
        let obs = Obs::new();
        let c = obs.counter("ceems_test_ops_total", "ops");
        let g = obs.gauge("ceems_test_depth", "depth");
        let h = obs.histogram("ceems_test_latency_seconds", "lat", vec![0.1, 1.0]);
        c.add(3.0);
        g.set(7.0);
        h.observe(0.05);
        h.observe(2.0);

        let text = obs.render();
        let parsed = parse_text(&text).expect("self-rendered text must parse");
        let get = |n: &str| {
            parsed
                .samples
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.value)
        };
        assert_eq!(get("ceems_test_ops_total"), Some(3.0));
        assert_eq!(get("ceems_test_depth"), Some(7.0));
        assert_eq!(get("ceems_test_latency_seconds_count"), Some(2.0));
        assert_eq!(
            parsed.types.get("ceems_test_latency_seconds"),
            Some(&MetricType::Histogram)
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let obs = Obs::new();
        obs.counter("ceems_dup_total", "a");
        obs.counter("ceems_dup_total", "b");
    }

    #[test]
    fn metrics_handler_serves_text() {
        let obs = Obs::new();
        obs.counter("ceems_x_total", "x").inc();
        let handler = metrics_handler(obs.registry().clone());
        let req = Request::new(ceems_http::Method::Get, "/metrics");
        let resp = handler(&req);
        assert!(resp.status.is_success());
        assert!(resp.body_string().contains("ceems_x_total 1"));
    }
}
