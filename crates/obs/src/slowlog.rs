//! Slow-query log: one structured line per query over a configured threshold.
//!
//! The threshold comes from YAML (`tsdb: slow_query_ms:`); a non-positive or
//! absent threshold disables the log. Lines are `key=value` pairs with the
//! query expression quoted last, so they grep and parse trivially:
//!
//! ```text
//! slow_query component=tsdb endpoint=/api/v1/query_range trace_id=8f... \
//!   total_ms=312.44 series=1200 samples=480000 steps=60 query="sum(power)"
//! ```

use std::sync::Arc;

use crate::trace::TraceReport;
use ceems_metrics::Counter;

/// Everything one slow-query line carries.
pub struct SlowQueryRecord<'a> {
    /// Component emitting the line (`tsdb`, `lb`).
    pub component: &'a str,
    /// The HTTP endpoint path.
    pub endpoint: &'a str,
    /// The PromQL expression (quoted in the output).
    pub query: &'a str,
    /// End-to-end wall time for the request, in milliseconds.
    pub total_ms: f64,
    /// The finished trace, when one was active (adds trace_id and counts).
    pub trace: Option<&'a TraceReport>,
    /// The trace-store key when sampling persisted this query's trace (adds
    /// `trace_stored=true store_key=...` so the log line links straight to
    /// `GET /api/v1/traces/{key}`).
    pub store_key: Option<&'a str>,
}

type Sink = Arc<dyn Fn(&str) + Send + Sync>;

/// The slow-query log: threshold + sink + emission counter.
#[derive(Clone)]
pub struct SlowQueryLog {
    threshold_ms: f64,
    sink: Sink,
    emitted: Counter,
}

impl SlowQueryLog {
    /// Creates a log with the given threshold (milliseconds). A non-positive
    /// threshold disables it. The default sink writes to stderr.
    pub fn new(threshold_ms: f64) -> SlowQueryLog {
        SlowQueryLog {
            threshold_ms,
            sink: Arc::new(|line| eprintln!("{line}")),
            emitted: Counter::new(),
        }
    }

    /// Replaces the sink (tests capture lines this way).
    pub fn with_sink(mut self, sink: impl Fn(&str) + Send + Sync + 'static) -> SlowQueryLog {
        self.sink = Arc::new(sink);
        self
    }

    /// Whether the log is active.
    pub fn enabled(&self) -> bool {
        self.threshold_ms > 0.0
    }

    /// The configured threshold in milliseconds.
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }

    /// A clone of the emission counter, for registering as
    /// `ceems_<component>_slow_queries_total`.
    pub fn emitted_counter(&self) -> Counter {
        self.emitted.clone()
    }

    /// Emits one line if (and only if) the record crosses the threshold;
    /// returns whether it fired.
    pub fn observe(&self, rec: &SlowQueryRecord<'_>) -> bool {
        if !self.enabled() || rec.total_ms < self.threshold_ms {
            return false;
        }
        self.emitted.inc();
        (self.sink)(&format_line(rec));
        true
    }
}

/// Formats the structured line (public so tests can assert the exact shape).
pub fn format_line(rec: &SlowQueryRecord<'_>) -> String {
    let mut line = format!(
        "slow_query component={} endpoint={}",
        rec.component, rec.endpoint
    );
    if let Some(t) = rec.trace {
        line.push_str(&format!(" trace_id={}", t.id));
    }
    line.push_str(&format!(" total_ms={:.3}", rec.total_ms));
    if let Some(t) = rec.trace {
        for (k, v) in &t.counts {
            line.push_str(&format!(" {k}={v}"));
        }
    }
    if let Some(key) = rec.store_key {
        // Kept before the quoted query so the line still ends with query="...".
        line.push_str(&format!(" trace_stored=true store_key={key}"));
    }
    line.push_str(&format!(" query={:?}", rec.query));
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::QueryTrace;
    use parking_lot::Mutex;

    fn capture() -> (SlowQueryLog, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let l2 = lines.clone();
        let log = SlowQueryLog::new(10.0).with_sink(move |l| l2.lock().push(l.to_string()));
        (log, lines)
    }

    #[test]
    fn fires_exactly_over_threshold() {
        let (log, lines) = capture();
        let rec = |ms| SlowQueryRecord {
            component: "tsdb",
            endpoint: "/api/v1/query",
            query: "up",
            total_ms: ms,
            trace: None,
            store_key: None,
        };
        assert!(!log.observe(&rec(9.99)));
        assert!(log.observe(&rec(10.0)));
        assert!(log.observe(&rec(500.0)));
        assert_eq!(lines.lock().len(), 2);
        assert_eq!(log.emitted_counter().get(), 2.0);
    }

    #[test]
    fn disabled_log_never_fires() {
        let log = SlowQueryLog::new(0.0).with_sink(|_| panic!("must not fire"));
        assert!(!log.enabled());
        assert!(!log.observe(&SlowQueryRecord {
            component: "tsdb",
            endpoint: "/q",
            query: "up",
            total_ms: 1e9,
            trace: None,
            store_key: None,
        }));
    }

    #[test]
    fn line_shape_includes_trace_and_counts() {
        let t = QueryTrace::begin(Some("cafe0123cafe0123"));
        t.add_count("series", 3);
        t.add_count("steps", 7);
        let report = t.report();
        let line = format_line(&SlowQueryRecord {
            component: "tsdb",
            endpoint: "/api/v1/query_range",
            query: "sum(power{uuid=\"u1\"})",
            total_ms: 123.456,
            trace: Some(&report),
            store_key: None,
        });
        assert!(line.starts_with("slow_query component=tsdb endpoint=/api/v1/query_range"));
        assert!(line.contains("trace_id=cafe0123cafe0123"));
        assert!(line.contains("total_ms=123.456"));
        assert!(line.contains(" series=3"));
        assert!(line.contains(" steps=7"));
        assert!(!line.contains("trace_stored"));
        assert!(line.ends_with("query=\"sum(power{uuid=\\\"u1\\\"})\""));
    }

    #[test]
    fn stored_trace_links_to_the_store_key() {
        let t = QueryTrace::begin(Some("cafe0123cafe0123"));
        let report = t.report();
        let line = format_line(&SlowQueryRecord {
            component: "tsdb",
            endpoint: "/api/v1/query",
            query: "up",
            total_ms: 50.0,
            trace: Some(&report),
            store_key: Some("cafe0123cafe0123"),
        });
        assert!(line.contains(" trace_stored=true store_key=cafe0123cafe0123 "));
        // The quoted query stays last so existing parsers keep working.
        assert!(line.ends_with("query=\"up\""));
    }
}
