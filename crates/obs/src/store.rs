//! Durable sampled trace store.
//!
//! S17 introduced span-based query traces, but they only ever existed inline
//! in a response body behind `?trace=1` — close the tab and the trace is
//! gone. This module makes tracing always-on and durable:
//!
//! - [`TraceSampler`] decides *which* finished traces to keep: head-based
//!   probabilistic sampling (a deterministic hash of the trace ID against
//!   `obs.trace_sample_rate`) plus tail capture of every slow query.
//! - [`TraceStore`] is a byte-bounded ring buffer of finished
//!   [`TraceReport`]s persisted in a [`ceems_relstore::Db`], so stored traces
//!   survive restarts and are servable from `GET /api/v1/traces/{id}`.
//! - [`TraceSink`] bundles the two behind the single call components make
//!   when a traced request finishes ([`TraceSink::offer`]).
//!
//! A trace ID can produce several stored spans — the LB, the qfe and the
//! TSDB each ship their own `TraceReport` for the same request — so the
//! store keys rows by an internal sequence number and groups by trace ID on
//! read. Head sampling hashes only the ID, which every hop shares via the
//! `x-ceems-trace-id` header, so a request is either sampled at *every* hop
//! or at none: stored traces are always complete.

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::Arc;

use ceems_metrics::{Counter, Gauge, Registry};
use ceems_relstore::{Column, ColumnType, Db, Filter, Order, Query, Schema, Value};
use parking_lot::Mutex;

use crate::trace::TraceReport;

/// Clock used for trace timestamps and age-based GC. The stack passes its
/// simulated clock so stored traces and eviction are deterministic under a
/// fixed seed; standalone servers default to wall time.
pub type TraceNowFn = Arc<dyn Fn() -> i64 + Send + Sync>;

fn wall_now_ms() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

/// Head-sampling + tail-capture policy for finished traces.
#[derive(Clone, Debug)]
pub struct TraceSampler {
    rate: f64,
    slow_ms: f64,
}

impl TraceSampler {
    /// `rate` is the head-sampling probability in `[0, 1]`; `slow_ms` is the
    /// tail-capture threshold (every trace slower than this is kept
    /// regardless of the head decision; `<= 0` disables tail capture).
    pub fn new(rate: f64, slow_ms: f64) -> TraceSampler {
        TraceSampler {
            rate: rate.clamp(0.0, 1.0),
            slow_ms,
        }
    }

    /// The head-sampling probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The tail-capture threshold in milliseconds.
    pub fn slow_ms(&self) -> f64 {
        self.slow_ms
    }

    /// Head decision: a deterministic hash of the trace ID against the rate,
    /// so every component reaches the same verdict for the same request and
    /// reruns with a pinned trace ID reproduce exactly.
    pub fn head_sample(&self, trace_id: &str) -> bool {
        self.head_sample_at(trace_id, self.rate)
    }

    /// Head decision against an explicit rate — the per-tenant override
    /// path (`obs.tenant_sample_rates`). Same hash, so a tenant pinned to
    /// the global rate decides identically to [`TraceSampler::head_sample`].
    pub fn head_sample_at(&self, trace_id: &str, rate: f64) -> bool {
        let rate = rate.clamp(0.0, 1.0);
        if rate >= 1.0 {
            return true;
        }
        if rate <= 0.0 {
            return false;
        }
        let mut h = DefaultHasher::new();
        trace_id.hash(&mut h);
        (h.finish() as f64 / u64::MAX as f64) < rate
    }

    /// Tail decision: keep every slow trace.
    pub fn tail_capture(&self, total_ms: f64) -> bool {
        self.slow_ms > 0.0 && total_ms >= self.slow_ms
    }
}

/// Size/age bounds for the trace ring buffer.
#[derive(Clone, Copy, Debug)]
pub struct TraceStoreConfig {
    /// Total bytes of stored report JSON the ring may hold before evicting
    /// oldest-first.
    pub max_bytes: u64,
    /// Spans older than this (against the store's clock) are evicted by
    /// [`TraceStore::gc`]. `<= 0` disables age eviction.
    pub max_age_ms: i64,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            max_bytes: 4 << 20,
            max_age_ms: 3_600_000,
        }
    }
}

const TRACES_TABLE: &str = "traces";

struct SpanMeta {
    seq: i64,
    ts_ms: i64,
    bytes: u64,
}

struct StoreInner {
    db: Db,
    ring: VecDeque<SpanMeta>,
    next_seq: i64,
    bytes: u64,
}

/// A byte-bounded, age-bounded ring buffer of finished trace spans persisted
/// in `ceems-relstore` (WAL-first writes, so stored traces survive a crash).
pub struct TraceStore {
    cfg: TraceStoreConfig,
    inner: Mutex<StoreInner>,
    bytes_gauge: Gauge,
    spans_gauge: Gauge,
    stored_total: Counter,
    evictions_total: Counter,
}

fn traces_schema() -> Schema {
    Schema::new(
        vec![
            Column::required("seq", ColumnType::Int),
            Column::required("id", ColumnType::Text),
            Column::required("component", ColumnType::Text),
            Column::required("endpoint", ColumnType::Text),
            Column::required("tenant", ColumnType::Text),
            Column::required("ts_ms", ColumnType::Int),
            Column::required("total_ms", ColumnType::Real),
            Column::required("bytes", ColumnType::Int),
            Column::required("report", ColumnType::Text),
        ],
        "seq",
        &["id"],
    )
    .expect("trace store schema is valid")
}

impl TraceStore {
    /// Opens (or creates) the store under `dir`, replaying any spans a
    /// previous process persisted so the ring accounting matches the disk.
    pub fn open(dir: &Path, cfg: TraceStoreConfig) -> Result<TraceStore, String> {
        let mut db = Db::open(dir).map_err(|e| format!("trace store open: {e}"))?;
        db.create_table(TRACES_TABLE, traces_schema())
            .map_err(|e| format!("trace store schema: {e}"))?;
        let mut ring: Vec<SpanMeta> = Vec::new();
        let rows = db
            .query(TRACES_TABLE, &Query::all())
            .map_err(|e| format!("trace store replay: {e}"))?;
        for row in rows {
            ring.push(SpanMeta {
                seq: int_col(&row, 0),
                ts_ms: int_col(&row, 5),
                bytes: int_col(&row, 7) as u64,
            });
        }
        ring.sort_by_key(|m| m.seq);
        let bytes: u64 = ring.iter().map(|m| m.bytes).sum();
        let next_seq = ring.last().map(|m| m.seq + 1).unwrap_or(0);
        let store = TraceStore {
            cfg,
            inner: Mutex::new(StoreInner {
                db,
                ring: ring.into(),
                next_seq,
                bytes,
            }),
            bytes_gauge: Gauge::new(),
            spans_gauge: Gauge::new(),
            stored_total: Counter::new(),
            evictions_total: Counter::new(),
        };
        store.sync_gauges();
        Ok(store)
    }

    fn sync_gauges(&self) {
        let inner = self.inner.lock();
        self.bytes_gauge.set(inner.bytes as f64);
        self.spans_gauge.set(inner.ring.len() as f64);
    }

    /// Persists one finished span and returns the store key (the trace ID —
    /// what `/api/v1/traces/{id}` takes). Evicts oldest-first if the write
    /// pushes the ring past its byte bound.
    pub fn store(
        &self,
        component: &str,
        endpoint: &str,
        tenant: &str,
        report: &TraceReport,
        now_ms: i64,
    ) -> String {
        let json = report.to_json().to_string();
        let bytes = json.len() as u64;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let row: Vec<Value> = vec![
            Value::Int(seq),
            Value::Text(report.id.clone()),
            Value::Text(component.to_string()),
            Value::Text(endpoint.to_string()),
            Value::Text(tenant.to_string()),
            Value::Int(now_ms),
            Value::Real(report.total_ms),
            Value::Int(bytes as i64),
            Value::Text(json),
        ];
        if inner.db.upsert(TRACES_TABLE, row).is_ok() {
            inner.ring.push_back(SpanMeta {
                seq,
                ts_ms: now_ms,
                bytes,
            });
            inner.bytes += bytes;
            self.stored_total.inc();
            self.evict_over_bytes(&mut inner);
        }
        drop(inner);
        self.sync_gauges();
        report.id.clone()
    }

    fn evict_over_bytes(&self, inner: &mut StoreInner) {
        while inner.bytes > self.cfg.max_bytes && inner.ring.len() > 1 {
            let Some(victim) = inner.ring.pop_front() else {
                break;
            };
            inner.bytes = inner.bytes.saturating_sub(victim.bytes);
            let _ = inner.db.delete(TRACES_TABLE, &Value::Int(victim.seq));
            self.evictions_total.inc();
        }
    }

    /// Evicts spans past the age bound and (re-)enforces the byte bound.
    /// Called from `CeemsStack::advance`; returns the number evicted.
    pub fn gc(&self, now_ms: i64) -> u64 {
        let before = self.evictions_total.get();
        let mut inner = self.inner.lock();
        if self.cfg.max_age_ms > 0 {
            while let Some(oldest) = inner.ring.front() {
                if now_ms - oldest.ts_ms <= self.cfg.max_age_ms {
                    break;
                }
                let victim = inner.ring.pop_front().expect("front just checked");
                inner.bytes = inner.bytes.saturating_sub(victim.bytes);
                let _ = inner.db.delete(TRACES_TABLE, &Value::Int(victim.seq));
                self.evictions_total.inc();
            }
        }
        self.evict_over_bytes(&mut inner);
        drop(inner);
        self.sync_gauges();
        (self.evictions_total.get() - before) as u64
    }

    /// All stored spans for a trace ID, grouped as one JSON document, or
    /// `None` if the ID is unknown (sampled out or evicted).
    pub fn get(&self, id: &str) -> Option<serde_json::Value> {
        let inner = self.inner.lock();
        let rows = inner
            .db
            .query(
                TRACES_TABLE,
                &Query::all().filter(Filter::Eq("id".to_string(), Value::Text(id.to_string()))),
            )
            .ok()?;
        if rows.is_empty() {
            return None;
        }
        let mut rows = rows;
        rows.sort_by_key(|r| int_col(r, 0));
        let spans: Vec<serde_json::Value> = rows.iter().map(|r| span_json(r)).collect();
        Some(serde_json::json!({ "traceId": id, "spans": spans }))
    }

    /// Stored span summaries, newest first, optionally filtered by endpoint,
    /// minimum duration and tenant.
    pub fn list(
        &self,
        endpoint: Option<&str>,
        min_ms: Option<f64>,
        tenant: Option<&str>,
        limit: usize,
    ) -> Vec<serde_json::Value> {
        let mut filters = vec![Filter::True];
        if let Some(e) = endpoint {
            filters.push(Filter::Eq("endpoint".to_string(), Value::Text(e.to_string())));
        }
        if let Some(m) = min_ms {
            filters.push(Filter::Ge("total_ms".to_string(), Value::Real(m)));
        }
        if let Some(t) = tenant {
            filters.push(Filter::Eq("tenant".to_string(), Value::Text(t.to_string())));
        }
        let q = Query::all()
            .filter(Filter::And(filters))
            .order_by("seq", Order::Desc)
            .limit(limit);
        let inner = self.inner.lock();
        let rows = inner.db.query(TRACES_TABLE, &q).unwrap_or_default();
        rows.iter().map(|r| summary_json(r)).collect()
    }

    /// Bytes of report JSON currently held.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of stored spans.
    pub fn span_count(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions_total.get() as u64
    }

    /// Checkpoints the backing store (truncates its WAL).
    pub fn snapshot(&self) -> Result<(), String> {
        self.inner
            .lock()
            .db
            .snapshot()
            .map_err(|e| format!("trace store snapshot: {e}"))
    }

    /// Registers the store's health metrics (`ceems_trace_store_bytes`,
    /// `ceems_trace_store_spans`, stored/eviction counters) on a registry.
    pub fn register_metrics(&self, registry: &Registry) {
        let (b, s, st, ev) = (
            self.bytes_gauge.clone(),
            self.spans_gauge.clone(),
            self.stored_total.clone(),
            self.evictions_total.clone(),
        );
        registry.register(
            "ceems_trace_store",
            Arc::new(move || {
                vec![
                    crate::gauge_family(
                        "ceems_trace_store_bytes",
                        "Bytes of trace report JSON currently stored",
                        &b,
                    ),
                    crate::gauge_family(
                        "ceems_trace_store_spans",
                        "Trace spans currently stored",
                        &s,
                    ),
                    crate::counter_family(
                        "ceems_trace_store_stored_total",
                        "Trace spans persisted since process start",
                        &st,
                    ),
                    crate::counter_family(
                        "ceems_trace_store_evictions_total",
                        "Trace spans evicted by the byte/age bounds",
                        &ev,
                    ),
                ]
            }),
        );
    }
}

fn int_col(row: &[Value], idx: usize) -> i64 {
    match row.get(idx) {
        Some(Value::Int(i)) => *i,
        _ => 0,
    }
}

fn text_col(row: &[Value], idx: usize) -> &str {
    match row.get(idx) {
        Some(Value::Text(s)) => s.as_str(),
        _ => "",
    }
}

fn real_col(row: &[Value], idx: usize) -> f64 {
    match row.get(idx) {
        Some(Value::Real(r)) => *r,
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    }
}

fn span_json(row: &[Value]) -> serde_json::Value {
    let report: serde_json::Value =
        serde_json::from_str(text_col(row, 8)).unwrap_or(serde_json::Value::Null);
    serde_json::json!({
        "component": text_col(row, 2),
        "endpoint": text_col(row, 3),
        "tenant": text_col(row, 4),
        "tsMs": int_col(row, 5),
        "report": report,
    })
}

fn summary_json(row: &[Value]) -> serde_json::Value {
    serde_json::json!({
        "traceId": text_col(row, 1),
        "component": text_col(row, 2),
        "endpoint": text_col(row, 3),
        "tenant": text_col(row, 4),
        "tsMs": int_col(row, 5),
        "totalMs": real_col(row, 6),
    })
}

/// The single object components hold: sampling policy + store + clock.
///
/// Components call [`TraceSink::offer`] once per finished traced request;
/// the sink decides (head hash or tail latency) whether the report is
/// persisted and returns the store key when it is.
pub struct TraceSink {
    sampler: TraceSampler,
    store: Arc<TraceStore>,
    now: TraceNowFn,
}

impl TraceSink {
    /// Builds a sink with a wall-clock timestamp source.
    pub fn new(sampler: TraceSampler, store: Arc<TraceStore>) -> TraceSink {
        TraceSink {
            sampler,
            store,
            now: Arc::new(wall_now_ms),
        }
    }

    /// Replaces the timestamp source (the stack injects its simulated clock).
    pub fn with_now(mut self, now: TraceNowFn) -> TraceSink {
        self.now = now;
        self
    }

    /// The sampling policy.
    pub fn sampler(&self) -> &TraceSampler {
        &self.sampler
    }

    /// The backing store (for GC, metrics registration and the trace API).
    pub fn store(&self) -> &Arc<TraceStore> {
        &self.store
    }

    /// Head decision for a trace ID — true when stage recording is worth the
    /// bookkeeping because the finished report will be kept.
    pub fn head_sample(&self, trace_id: &str) -> bool {
        self.sampler.head_sample(trace_id)
    }

    /// Offers a finished report; persists it when head-sampled or slow and
    /// returns the store key (`Some(trace_id)`) when stored.
    pub fn offer(
        &self,
        component: &str,
        endpoint: &str,
        tenant: &str,
        report: &TraceReport,
    ) -> Option<String> {
        self.offer_at_rate(component, endpoint, tenant, report, None)
    }

    /// [`TraceSink::offer`] with an optional per-tenant head-sampling rate
    /// override; `None` uses the sampler's global rate. Tail capture (slow
    /// queries) applies either way.
    pub fn offer_at_rate(
        &self,
        component: &str,
        endpoint: &str,
        tenant: &str,
        report: &TraceReport,
        rate: Option<f64>,
    ) -> Option<String> {
        let head = match rate {
            Some(r) => self.sampler.head_sample_at(&report.id, r),
            None => self.sampler.head_sample(&report.id),
        };
        if head || self.sampler.tail_capture(report.total_ms) {
            let now_ms = (self.now)();
            Some(self.store.store(component, endpoint, tenant, report, now_ms))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::QueryTrace;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ceems-trace-store-{tag}-{}-{}",
            std::process::id(),
            crate::trace::mint_id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn report_with(id: &str, total_ms: f64) -> TraceReport {
        let t = QueryTrace::begin(Some(id));
        t.record_stage_ms("eval", total_ms / 2.0);
        let mut r = t.report();
        r.total_ms = total_ms;
        r
    }

    #[test]
    fn store_get_and_list_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = TraceStore::open(&dir, TraceStoreConfig::default()).unwrap();
        let key = store.store("tsdb", "/api/v1/query", "alice", &report_with("aa11", 12.0), 1000);
        assert_eq!(key, "aa11");
        store.store("lb", "/api/v1/query", "alice", &report_with("aa11", 14.0), 1001);
        store.store("tsdb", "/api/v1/query_range", "bob", &report_with("bb22", 300.0), 1002);

        let doc = store.get("aa11").unwrap();
        assert_eq!(doc["traceId"], "aa11");
        assert_eq!(doc["spans"].as_array().unwrap().len(), 2);
        assert_eq!(doc["spans"][0]["component"], "tsdb");
        assert_eq!(doc["spans"][0]["report"]["stages"][0]["name"], "eval");
        assert!(store.get("unknown").is_none());

        let all = store.list(None, None, None, 10);
        assert_eq!(all.len(), 3);
        // Newest first.
        assert_eq!(all[0]["traceId"], "bb22");
        let slow = store.list(None, Some(100.0), None, 10);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0]["traceId"], "bb22");
        let by_ep = store.list(Some("/api/v1/query"), None, Some("alice"), 10);
        assert_eq!(by_ep.len(), 2);
    }

    #[test]
    fn byte_bound_evicts_oldest_first() {
        let dir = tmpdir("bytes");
        let store = TraceStore::open(
            &dir,
            TraceStoreConfig {
                max_bytes: 600,
                max_age_ms: 0,
            },
        )
        .unwrap();
        for i in 0..10 {
            store.store(
                "tsdb",
                "/api/v1/query",
                "t",
                &report_with(&format!("{i:04x}"), 1.0),
                i,
            );
        }
        assert!(store.bytes() <= 600, "bytes={}", store.bytes());
        assert!(store.evictions() > 0);
        // The newest trace is still there, the oldest is gone.
        assert!(store.get("0009").is_some());
        assert!(store.get("0000").is_none());
    }

    #[test]
    fn age_gc_and_reopen_replay() {
        let dir = tmpdir("age");
        {
            let store = TraceStore::open(
                &dir,
                TraceStoreConfig {
                    max_bytes: 1 << 20,
                    max_age_ms: 1000,
                },
            )
            .unwrap();
            store.store("tsdb", "/q", "t", &report_with("old1", 1.0), 0);
            store.store("tsdb", "/q", "t", &report_with("new1", 1.0), 1500);
            let evicted = store.gc(2000);
            assert_eq!(evicted, 1);
            assert!(store.get("old1").is_none());
            assert!(store.get("new1").is_some());
        }
        // Reopen: ring accounting is rebuilt from disk.
        let store = TraceStore::open(
            &dir,
            TraceStoreConfig {
                max_bytes: 1 << 20,
                max_age_ms: 1000,
            },
        )
        .unwrap();
        assert_eq!(store.span_count(), 1);
        assert!(store.bytes() > 0);
        assert!(store.get("new1").is_some());
        // New writes continue with increasing seq (newest-first list order).
        store.store("tsdb", "/q", "t", &report_with("new2", 1.0), 1600);
        let all = store.list(None, None, None, 10);
        assert_eq!(all[0]["traceId"], "new2");
    }

    #[test]
    fn sampler_is_deterministic_and_tail_captures() {
        let s = TraceSampler::new(0.5, 100.0);
        for id in ["a", "b", "c", "deadbeef"] {
            assert_eq!(s.head_sample(id), s.head_sample(id));
        }
        // Rate extremes short-circuit.
        assert!(TraceSampler::new(1.0, 0.0).head_sample("x"));
        assert!(!TraceSampler::new(0.0, 0.0).head_sample("x"));
        // Tail capture keeps slow traces regardless.
        assert!(s.tail_capture(150.0));
        assert!(!s.tail_capture(50.0));
        assert!(!TraceSampler::new(0.5, 0.0).tail_capture(1e9));
        // At rate 0.5 the hash decision actually splits IDs both ways.
        let sampled = (0..64)
            .filter(|i| s.head_sample(&format!("{i:016x}")))
            .count();
        assert!(sampled > 5 && sampled < 60, "sampled={sampled}");
    }

    #[test]
    fn sink_offers_by_head_or_tail() {
        let dir = tmpdir("sink");
        let store = Arc::new(TraceStore::open(&dir, TraceStoreConfig::default()).unwrap());
        let sink = TraceSink::new(TraceSampler::new(0.0, 100.0), store.clone())
            .with_now(Arc::new(|| 42));
        // Head rate 0: fast traces are dropped, slow ones tail-captured.
        assert_eq!(sink.offer("tsdb", "/q", "t", &report_with("fast", 5.0)), None);
        assert_eq!(
            sink.offer("tsdb", "/q", "t", &report_with("slow", 500.0)),
            Some("slow".to_string())
        );
        let doc = store.get("slow").unwrap();
        assert_eq!(doc["spans"][0]["tsMs"], 42);
    }
}
